//! Row-major design matrix and dataset container.
//!
//! [`Matrix`] stores feature rows contiguously (row-major `Vec<f64>`) so
//! per-row prediction and per-feature column scans are both cache-friendly
//! without pulling in a linear-algebra dependency. [`Dataset`] pairs a
//! matrix with its target vector and provides the splitting/boot-strapping
//! primitives the model-selection pipeline needs.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(data: Vec<f64>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "flat buffer size mismatch");
        Matrix { data, rows, cols }
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            data,
            rows: rows.len(),
            cols,
        }
    }

    /// An empty matrix with a fixed column count, for incremental building.
    pub fn with_cols(cols: usize) -> Self {
        assert!(cols > 0, "matrix needs at least one column");
        Matrix {
            data: Vec::new(),
            rows: 0,
            cols,
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the column count.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element at `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Mutable element at `(i, j)`.
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }

    /// Column `j` gathered into a vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// A new matrix containing the given rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::with_cols(self.cols);
        for &i in indices {
            out.push_row(self.row(i));
        }
        out
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }
}

/// A supervised dataset: features plus scalar targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Design matrix, one row per sample.
    pub x: Matrix,
    /// Targets, one per row of `x`.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Pairs a design matrix with targets.
    ///
    /// # Panics
    /// Panics if the row count and target count differ.
    pub fn new(x: Matrix, y: Vec<f64>) -> Self {
        assert_eq!(x.rows(), y.len(), "x/y length mismatch");
        Dataset { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// The samples at `indices`, in order.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// Deterministic shuffled train/test split. `test_fraction` of the
    /// samples (rounded down, at least one row kept on each side for
    /// non-degenerate fractions) go to the test set.
    ///
    /// # Panics
    /// Panics unless `0 < test_fraction < 1` and the set has ≥ 2 samples.
    pub fn train_test_split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test fraction must be in (0, 1)"
        );
        assert!(self.len() >= 2, "need at least two samples to split");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_test = ((self.len() as f64 * test_fraction) as usize).clamp(1, self.len() - 1);
        let (test_idx, train_idx) = idx.split_at(n_test);
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// A bootstrap resample (with replacement) of the same size.
    pub fn bootstrap(&self, rng: &mut ChaCha8Rng) -> Dataset {
        use rand::Rng;
        let idx: Vec<usize> = (0..self.len())
            .map(|_| rng.gen_range(0..self.len()))
            .collect();
        self.subset(&idx)
    }

    /// Checks every feature and target for NaN/infinity. Returns the first
    /// offender as `(row, column)`, where the column is `None` for a bad
    /// target. Models trained on non-finite samples produce non-finite
    /// predictions silently; call this at ingestion boundaries.
    pub fn validate(&self) -> Result<(), (usize, Option<usize>)> {
        for i in 0..self.len() {
            for (j, v) in self.x.row(i).iter().enumerate() {
                if !v.is_finite() {
                    return Err((i, Some(j)));
                }
            }
            if !self.y[i].is_finite() {
                return Err((i, None));
            }
        }
        Ok(())
    }

    /// A copy with untrustworthy rows removed: any row with a non-finite
    /// feature or target is dropped, and — when `outlier_mads` is set —
    /// so is any row whose target deviates from the median by more than
    /// that many median-absolute-deviations (a robust guard against
    /// degraded measurements that slipped past upstream quarantine). The
    /// report says exactly which rows were dropped and why. Opt-in: the
    /// standard training paths never call this implicitly.
    pub fn sanitized(&self, outlier_mads: Option<f64>) -> (Dataset, SanitizeReport) {
        let mut report = SanitizeReport::default();
        let finite: Vec<usize> = (0..self.len())
            .filter(|&i| {
                let ok = self.x.row(i).iter().all(|v| v.is_finite()) && self.y[i].is_finite();
                if !ok {
                    report.non_finite_rows.push(i);
                }
                ok
            })
            .collect();
        let keep: Vec<usize> = match outlier_mads {
            Some(k) if finite.len() >= 3 => {
                assert!(k > 0.0, "MAD multiple must be positive");
                let targets: Vec<f64> = finite.iter().map(|&i| self.y[i]).collect();
                let med = median(&targets);
                let deviations: Vec<f64> = targets.iter().map(|t| (t - med).abs()).collect();
                let mad = median(&deviations);
                finite
                    .iter()
                    .copied()
                    .filter(|&i| {
                        // A zero MAD means over half the targets are identical;
                        // only exact ties are then "inliers".
                        let ok = if mad > 0.0 {
                            (self.y[i] - med).abs() <= k * mad
                        } else {
                            self.y[i] == med
                        };
                        if !ok {
                            report.outlier_rows.push(i);
                        }
                        ok
                    })
                    .collect()
            }
            _ => finite,
        };
        (self.subset(&keep), report)
    }
}

/// Which rows [`Dataset::sanitized`] dropped, and why.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SanitizeReport {
    /// Rows holding a NaN or infinity (original indices).
    pub non_finite_rows: Vec<usize>,
    /// Rows whose target failed the MAD outlier test (original indices).
    pub outlier_rows: Vec<usize>,
}

impl SanitizeReport {
    /// True when nothing was dropped.
    pub fn is_clean(&self) -> bool {
        self.non_finite_rows.is_empty() && self.outlier_rows.is_empty()
    }

    /// All dropped original row indices — non-finite and outlier rows
    /// merged, sorted, deduplicated. The shape a caller needs to drop the
    /// same rows from a parallel structure (e.g. per-row provenance).
    pub fn dropped_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self
            .non_finite_rows
            .iter()
            .chain(self.outlier_rows.iter())
            .copied()
            .collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// How many distinct rows were dropped.
    pub fn dropped_count(&self) -> usize {
        self.dropped_rows().len()
    }
}

fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 8.0],
        ]);
        Dataset::new(x, vec![10.0, 20.0, 30.0, 40.0])
    }

    #[test]
    fn matrix_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.column(0), vec![1.0, 3.0]);
    }

    #[test]
    fn push_row_grows() {
        let mut m = Matrix::with_cols(3);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(1)[2], 6.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn select_rows_preserves_order() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.y, vec![30.0, 10.0]);
        assert_eq!(s.x.row(0), &[5.0, 6.0]);
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let d = toy();
        let (tr1, te1) = d.train_test_split(0.25, 7);
        let (tr2, te2) = d.train_test_split(0.25, 7);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.len() + te1.len(), d.len());
        assert_eq!(te1.len(), 1);
    }

    #[test]
    fn different_seed_changes_split() {
        let d = toy();
        let (_, te1) = d.train_test_split(0.5, 1);
        let (_, te2) = d.train_test_split(0.5, 99);
        // With 4 samples this could coincide; accept either but ensure both
        // are valid partitions.
        assert_eq!(te1.len(), 2);
        assert_eq!(te2.len(), 2);
    }

    #[test]
    fn bootstrap_same_size_from_original() {
        let d = toy();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let b = d.bootstrap(&mut rng);
        assert_eq!(b.len(), d.len());
        for v in &b.y {
            assert!(d.y.contains(v));
        }
    }

    #[test]
    #[should_panic(expected = "x/y length mismatch")]
    fn mismatched_targets_panic() {
        let x = Matrix::from_rows(&[vec![1.0]]);
        let _ = Dataset::new(x, vec![1.0, 2.0]);
    }

    #[test]
    fn validate_reports_first_non_finite_cell() {
        let mut d = toy();
        assert_eq!(d.validate(), Ok(()));
        *d.x.get_mut(1, 1) = f64::NAN;
        assert_eq!(d.validate(), Err((1, Some(1))));
        *d.x.get_mut(1, 1) = 4.0;
        d.y[2] = f64::INFINITY;
        assert_eq!(d.validate(), Err((2, None)));
    }

    #[test]
    fn sanitized_drops_non_finite_rows() {
        let mut d = toy();
        *d.x.get_mut(0, 0) = f64::NEG_INFINITY;
        d.y[3] = f64::NAN;
        let (clean, report) = d.sanitized(None);
        assert_eq!(clean.y, vec![20.0, 30.0]);
        assert_eq!(report.non_finite_rows, vec![0, 3]);
        assert!(report.outlier_rows.is_empty());
        assert_eq!(clean.validate(), Ok(()));
    }

    #[test]
    fn sanitized_mad_guard_drops_wild_targets() {
        let x = Matrix::from_rows(&vec![vec![1.0]; 6]);
        // Five plausible energies and one corrupted by a counter glitch.
        let d = Dataset::new(x, vec![10.0, 11.0, 9.5, 10.5, 10.2, 4000.0]);
        let (clean, report) = d.sanitized(Some(8.0));
        assert_eq!(clean.len(), 5);
        assert_eq!(report.outlier_rows, vec![5]);
        assert!(report.non_finite_rows.is_empty());
        // Without the guard the glitch row survives.
        let (all, report) = d.sanitized(None);
        assert_eq!(all.len(), 6);
        assert!(report.is_clean());
    }

    #[test]
    fn sanitized_zero_mad_keeps_only_exact_ties() {
        let x = Matrix::from_rows(&vec![vec![1.0]; 5]);
        let d = Dataset::new(x, vec![7.0, 7.0, 7.0, 7.0, 9.0]);
        let (clean, report) = d.sanitized(Some(3.0));
        assert_eq!(clean.len(), 4);
        assert_eq!(report.outlier_rows, vec![4]);
    }
}
