//! Permutation feature importance.
//!
//! Model-agnostic importance, the standard tool behind feature-selection
//! arguments like the paper's §4.2.1: shuffle one feature column and
//! measure how much the model's error grows. A feature whose permutation
//! barely moves the error carries no signal for the model.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dataset::Matrix;
use crate::Regressor;

/// Permutation importance of every feature: the mean *increase* of
/// `metric(y, ŷ)` over `n_repeats` independent shuffles of that feature
/// column (baseline subtracted; can be slightly negative for pure-noise
/// features).
///
/// `metric` must be a loss (lower = better), e.g. [`crate::metrics::mse`].
///
/// # Panics
/// Panics on empty data, mismatched lengths, or `n_repeats == 0`.
pub fn permutation_importance<M, F>(
    model: &M,
    x: &Matrix,
    y: &[f64],
    metric: F,
    n_repeats: usize,
    seed: u64,
) -> Vec<f64>
where
    M: Regressor,
    F: Fn(&[f64], &[f64]) -> f64,
{
    assert!(x.rows() > 1, "need at least two samples");
    assert_eq!(x.rows(), y.len(), "x/y length mismatch");
    assert!(n_repeats > 0, "need at least one repeat");

    let baseline = metric(y, &model.predict(x));
    let n = x.rows();
    let p = x.cols();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut importances = vec![0.0; p];

    for (col, imp) in importances.iter_mut().enumerate() {
        let mut total = 0.0;
        for _ in 0..n_repeats {
            // Shuffle the target column's values across rows.
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let mut shuffled = x.clone();
            for (dst, &src) in perm.iter().enumerate() {
                *shuffled.get_mut(dst, col) = x.get(src, col);
            }
            total += metric(y, &model.predict(&shuffled)) - baseline;
        }
        *imp = total / n_repeats as f64;
    }
    importances
}

/// Importances normalized to fractions of their (non-negative) total.
/// All-zero importances normalize to all-zeros.
pub fn normalized_importance(importances: &[f64]) -> Vec<f64> {
    let clipped: Vec<f64> = importances.iter().map(|v| v.max(0.0)).collect();
    let total: f64 = clipped.iter().sum();
    if total <= 0.0 {
        vec![0.0; importances.len()]
    } else {
        clipped.iter().map(|v| v / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{RandomForest, RandomForestParams};
    use crate::metrics::mse;

    fn fit_forest(x: &Matrix, y: &[f64]) -> RandomForest {
        let mut f = RandomForest::new(
            RandomForestParams {
                n_estimators: 25,
                ..Default::default()
            },
            0,
        );
        f.fit(x, y);
        f
    }

    /// y depends strongly on feature 0, weakly on feature 1, and not at all
    /// on feature 2.
    fn data() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let a = (i % 20) as f64;
                let b = ((i / 20) % 10) as f64; // independent of `a`
                let c = ((i * 13) % 17) as f64; // pure noise
                vec![a, b, c]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 10.0 * r[0] + r[1]).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn ranks_features_by_signal() {
        let (x, y) = data();
        let model = fit_forest(&x, &y);
        let imp = permutation_importance(&model, &x, &y, mse, 3, 7);
        assert!(imp[0] > imp[1], "strong beats weak: {imp:?}");
        assert!(imp[1] > imp[2], "weak beats noise: {imp:?}");
        assert!(imp[0] > 10.0 * imp[2].max(1e-9), "strong dwarfs noise");
    }

    #[test]
    fn noise_feature_importance_near_zero() {
        let (x, y) = data();
        let model = fit_forest(&x, &y);
        let imp = permutation_importance(&model, &x, &y, mse, 3, 7);
        let scale = imp[0];
        assert!(imp[2].abs() < 0.05 * scale);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = data();
        let model = fit_forest(&x, &y);
        let a = permutation_importance(&model, &x, &y, mse, 2, 9);
        let b = permutation_importance(&model, &x, &y, mse, 2, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn normalization_sums_to_one() {
        let n = normalized_importance(&[3.0, 1.0, -0.5]);
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(n[2], 0.0, "negative importances clip to zero");
        assert!((n[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn all_zero_normalizes_to_zero() {
        assert_eq!(normalized_importance(&[0.0, -1.0]), vec![0.0, 0.0]);
    }
}
