//! Ordinary least squares via the normal equations.
//!
//! Solves `(XᵀX + λI) w = Xᵀy` with Gaussian elimination and partial
//! pivoting. A tiny default ridge `λ` keeps rank-deficient designs (e.g.
//! constant features after one-hot workload encodings) solvable, matching
//! scikit-learn's practical robustness without an SVD dependency.

use serde::{Deserialize, Serialize};

use crate::dataset::Matrix;
use crate::Regressor;

/// Linear regression `ŷ = w·x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    /// Ridge stabilizer added to the normal-equation diagonal.
    pub ridge: f64,
    weights: Vec<f64>,
    intercept: f64,
    fitted: bool,
}

impl Default for LinearRegression {
    fn default() -> Self {
        LinearRegression::new()
    }
}

impl LinearRegression {
    /// OLS with the default numerical stabilizer (λ = 1e-8).
    pub fn new() -> Self {
        LinearRegression {
            ridge: 1e-8,
            weights: Vec::new(),
            intercept: 0.0,
            fitted: false,
        }
    }

    /// Ridge regression with an explicit λ.
    ///
    /// # Panics
    /// Panics on negative λ.
    pub fn with_ridge(ridge: f64) -> Self {
        assert!(ridge >= 0.0, "ridge penalty must be ≥ 0");
        LinearRegression {
            ridge,
            ..LinearRegression::new()
        }
    }

    /// Fitted coefficients (empty before `fit`).
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

/// Solves `A x = b` in place with partial pivoting.
///
/// # Panics
/// Panics if the system is numerically singular even after stabilization.
// Indexed loops keep the triangular-elimination math readable.
#[allow(clippy::needless_range_loop)]
pub(crate) fn solve_dense(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot: largest |value| in this column at/under the diagonal.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        assert!(
            a[pivot][col].abs() > 1e-300,
            "singular system in linear solve"
        );
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    x
}

impl Regressor for LinearRegression {
    // Indexed loops mirror the XᵀX accumulation formulas.
    #[allow(clippy::needless_range_loop)]
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows(), y.len(), "x/y length mismatch");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        let n = x.rows();
        let p = x.cols();
        // Augmented design: [X | 1] so the intercept is the last weight.
        let d = p + 1;
        let mut xtx = vec![vec![0.0; d]; d];
        let mut xty = vec![0.0; d];
        for (i, row) in x.iter_rows().enumerate() {
            for a in 0..d {
                let xa = if a < p { row[a] } else { 1.0 };
                xty[a] += xa * y[i];
                for b in a..d {
                    let xb = if b < p { row[b] } else { 1.0 };
                    xtx[a][b] += xa * xb;
                }
            }
        }
        // Mirror the upper triangle and stabilize the diagonal.
        for a in 0..d {
            for b in 0..a {
                xtx[a][b] = xtx[b][a];
            }
            xtx[a][a] += self.ridge * n as f64;
        }
        let w = solve_dense(&mut xtx, &mut xty);
        self.intercept = w[p];
        self.weights = w[..p].to_vec();
        self.fitted = true;
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(self.fitted, "predict before fit");
        assert_eq!(row.len(), self.weights.len(), "feature count mismatch");
        self.intercept
            + self
                .weights
                .iter()
                .zip(row)
                .map(|(w, x)| w * x)
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 3x₀ - 2x₁ + 5
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, 3.0],
            vec![-1.0, 4.0],
        ]);
        let y: Vec<f64> = x
            .iter_rows()
            .map(|r| 3.0 * r[0] - 2.0 * r[1] + 5.0)
            .collect();
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        assert!((m.coefficients()[0] - 3.0).abs() < 1e-6);
        assert!((m.coefficients()[1] + 2.0).abs() < 1e-6);
        assert!((m.intercept() - 5.0).abs() < 1e-6);
        assert!((m.predict_row(&[10.0, 10.0]) - 15.0).abs() < 1e-5);
    }

    #[test]
    fn handles_collinear_features_with_ridge() {
        // Second feature duplicates the first: rank deficient.
        let x = Matrix::from_rows(&[
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
            vec![4.0, 4.0],
        ]);
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let mut m = LinearRegression::with_ridge(1e-6);
        m.fit(&x, &y);
        let pred = m.predict_row(&[5.0, 5.0]);
        assert!((pred - 10.0).abs() < 1e-3, "got {pred}");
    }

    #[test]
    fn fits_intercept_only_on_constant_features() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]);
        let y = vec![4.0, 6.0, 8.0];
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        assert!((m.predict_row(&[1.0]) - 6.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let m = LinearRegression::new();
        let _ = m.predict_row(&[1.0]);
    }

    #[test]
    fn solver_solves_small_system() {
        let mut a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let mut b = vec![5.0, 10.0];
        let x = solve_dense(&mut a, &mut b);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }
}
