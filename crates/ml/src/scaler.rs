//! Feature standardization.
//!
//! Zero-mean / unit-variance scaling, fit on the training split only (the
//! standard leakage-free protocol). The SVR and Lasso models are
//! scale-sensitive; trees and forests are not, but the shared pipeline
//! standardizes uniformly so model comparison is apples-to-apples.

use serde::{Deserialize, Serialize};

use crate::dataset::Matrix;

/// Per-feature standardizer: `x' = (x - mean) / std`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits means and standard deviations on `x`. Constant features get a
    /// standard deviation of 1 so they pass through centered (scikit-learn
    /// behaviour).
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "cannot fit a scaler on an empty matrix");
        let n = x.rows() as f64;
        let p = x.cols();
        let mut means = vec![0.0; p];
        for row in x.iter_rows() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; p];
        for row in x.iter_rows() {
            for ((v, m), x) in vars.iter_mut().zip(&means).zip(row) {
                let d = x - m;
                *v += d * d;
            }
        }
        let stds = vars
            .iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        StandardScaler { means, stds }
    }

    /// Number of features this scaler was fit on.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Transforms a matrix.
    ///
    /// # Panics
    /// Panics on a feature-count mismatch.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.n_features(), "feature count mismatch");
        let mut out = Matrix::with_cols(x.cols());
        let mut buf = vec![0.0; x.cols()];
        for row in x.iter_rows() {
            for (o, ((v, m), s)) in buf
                .iter_mut()
                .zip(row.iter().zip(&self.means).zip(&self.stds))
            {
                *o = (v - m) / s;
            }
            out.push_row(&buf);
        }
        out
    }

    /// Transforms one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.n_features(), "feature count mismatch");
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }

    /// Inverse transform of one row in place.
    pub fn inverse_transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.n_features(), "feature count mismatch");
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = *v * s + m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]);
        let sc = StandardScaler::fit(&x);
        let t = sc.transform(&x);
        for j in 0..2 {
            let col = t.column(j);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 =
                col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_feature_passes_through_centered() {
        let x = Matrix::from_rows(&[vec![5.0], vec![5.0]]);
        let sc = StandardScaler::fit(&x);
        let t = sc.transform(&x);
        assert_eq!(t.column(0), vec![0.0, 0.0]);
    }

    #[test]
    fn round_trip_inverse() {
        let x = Matrix::from_rows(&[vec![1.0, -4.0], vec![7.0, 2.5]]);
        let sc = StandardScaler::fit(&x);
        let mut row = vec![3.0, 0.5];
        let orig = row.clone();
        sc.transform_row(&mut row);
        sc.inverse_transform_row(&mut row);
        for (a, b) in row.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn transform_checks_width() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let sc = StandardScaler::fit(&x);
        let bad = Matrix::from_rows(&[vec![1.0]]);
        let _ = sc.transform(&bad);
    }
}
