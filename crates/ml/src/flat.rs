//! Flattened Random Forest inference.
//!
//! [`FlatForest`] compiles a fitted [`RandomForest`] into a contiguous
//! struct-of-arrays node arena for the governor's online hot path. The
//! pointer-based trees in [`crate::tree`] are ideal for training (recursive
//! construction, cheap structural sharing in tests) but hostile to serving:
//! every descent chases `Box<Node>` pointers scattered across the heap, and
//! every level pays an enum-tag branch.
//!
//! The flat layout stores one node per index across three parallel arrays:
//!
//! * `feature[i]` — split feature as `u16` (unused for leaves);
//! * `threshold[i]` — split threshold, or the **leaf value** for leaves;
//! * `child[i]` — index of the left child, or `0` for a leaf.
//!
//! Nodes are emitted in BFS order per tree and a split's two children always
//! occupy adjacent slots, so `right == left + 1` and descent is
//! near-branchless: `idx = child[idx] + (go_right as u32)`. Index `0` is
//! always the first tree's root — never a child — which makes `child == 0`
//! an unambiguous leaf sentinel without a separate tag array.
//!
//! Predictions are **bit-identical** to the pointer walk: the comparison is
//! the same `row[feature] <= threshold` (negated for the right step, so NaN
//! features fall right exactly as the recursive walk does), per-row tree
//! contributions accumulate in tree order, and the mean divides once by the
//! tree count — the precise float schedule of
//! `RandomForest`'s [`Regressor::predict_row`](crate::Regressor::predict_row).
//!
//! [`FlatForest::predict_batch`] additionally evaluates *feature-major*:
//! the outer loop walks one tree across every row before moving to the next
//! tree, so a tree's ~few-KiB arena stays resident in L1/L2 for the whole
//! batch instead of re-streaming the entire forest per row.

use crate::dataset::Matrix;
use crate::forest::RandomForest;
use crate::tree::Node;

/// `child` sentinel marking a leaf (arena slot 0 is always a root, so no
/// real child can ever be 0).
const LEAF: u32 = 0;

/// A [`RandomForest`] compiled to a contiguous struct-of-arrays layout.
///
/// This is a derived, compile-on-load artifact — it is *not* serialized.
/// Persisted models store the pointer forest; callers re-compile after
/// deserializing (see `DomainSpecificModel::from_json` in `energy_model`).
#[derive(Debug, Clone, PartialEq)]
pub struct FlatForest {
    n_features: usize,
    /// Arena index of each tree's root, in tree order.
    roots: Vec<u32>,
    feature: Vec<u16>,
    threshold: Vec<f64>,
    child: Vec<u32>,
}

impl FlatForest {
    /// Compiles a fitted forest into the flat arena.
    ///
    /// # Panics
    /// Panics if the forest is unfitted, has ≥ `u16::MAX` features, or more
    /// than `u32::MAX - 1` total nodes (far beyond any forest this repo
    /// trains).
    pub fn compile(forest: &RandomForest) -> Self {
        let trees = forest.trees();
        assert!(!trees.is_empty(), "flatten before fit");
        let n_features = trees[0].n_features();
        assert!(
            n_features < usize::from(u16::MAX),
            "feature index must fit u16"
        );

        let mut flat = FlatForest {
            n_features,
            roots: Vec::with_capacity(trees.len()),
            feature: Vec::new(),
            threshold: Vec::new(),
            child: Vec::new(),
        };
        for tree in trees {
            debug_assert_eq!(tree.n_features(), n_features);
            let root = tree.root().expect("flatten before fit");
            let slot = flat.emit_tree(root);
            flat.roots.push(slot);
        }
        flat
    }

    /// Emits one tree in BFS order, returning its root's arena index.
    /// A split's children are pushed together so `right == left + 1`.
    fn emit_tree(&mut self, root: &Node) -> u32 {
        let base = self.push_slot();
        let mut queue: std::collections::VecDeque<(&Node, u32)> = std::collections::VecDeque::new();
        queue.push_back((root, base));
        while let Some((node, slot)) = queue.pop_front() {
            let slot_us = slot as usize;
            match node {
                Node::Leaf { value } => {
                    self.threshold[slot_us] = *value;
                    self.child[slot_us] = LEAF;
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let left_slot = self.push_slot();
                    let right_slot = self.push_slot();
                    debug_assert_eq!(right_slot, left_slot + 1);
                    self.feature[slot_us] = *feature as u16;
                    self.threshold[slot_us] = *threshold;
                    self.child[slot_us] = left_slot;
                    queue.push_back((left, left_slot));
                    queue.push_back((right, right_slot));
                }
            }
        }
        base
    }

    /// Reserves one arena slot, returning its index.
    fn push_slot(&mut self) -> u32 {
        let idx = self.feature.len();
        assert!(idx < u32::MAX as usize, "node count must fit u32");
        self.feature.push(0);
        self.threshold.push(0.0);
        self.child.push(LEAF);
        idx as u32
    }

    /// Number of compiled trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total arena nodes across all trees.
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Feature width expected by `predict_row`/`predict_batch`.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Walks one tree for one row. The right-step predicate is the negation
    /// of the pointer walk's `<=` so NaN features take the right branch in
    /// both layouts — `!(v <= t)` is *not* `v > t` when `v` is NaN, which
    /// is exactly why clippy's rewrite suggestion must be refused here.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline]
    fn descend(&self, root: u32, row: &[f64]) -> f64 {
        let mut idx = root as usize;
        loop {
            let c = self.child[idx];
            if c == LEAF {
                return self.threshold[idx];
            }
            let go_right = !(row[self.feature[idx] as usize] <= self.threshold[idx]);
            idx = (c + u32::from(go_right)) as usize;
        }
    }

    /// Predicts one row — bit-identical to `RandomForest::predict_row` on
    /// the source forest.
    ///
    /// # Panics
    /// Panics on a feature-count mismatch.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "feature count mismatch");
        let s: f64 = self.roots.iter().map(|&r| self.descend(r, row)).sum();
        s / self.roots.len() as f64
    }

    /// Feature-major batched prediction: walks one tree across every row
    /// before advancing to the next tree. Per-row accumulation stays in
    /// tree order, so results are bit-identical to calling
    /// [`FlatForest::predict_row`] per row.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_batch_into(x, &mut out);
        out
    }

    /// [`FlatForest::predict_batch`] into a caller-owned buffer (cleared
    /// and refilled), for allocation-free steady-state serving.
    ///
    /// # Panics
    /// Panics on a feature-count mismatch.
    pub fn predict_batch_into(&self, x: &Matrix, out: &mut Vec<f64>) {
        assert_eq!(x.cols(), self.n_features, "feature count mismatch");
        out.clear();
        out.resize(x.rows(), 0.0);
        for &root in &self.roots {
            for (acc, row) in out.iter_mut().zip(x.iter_rows()) {
                *acc += self.descend(root, row);
            }
        }
        let n = self.roots.len() as f64;
        for acc in out.iter_mut() {
            *acc /= n;
        }
    }

    /// Sweep evaluation: predictions for `values.len()` virtual rows that
    /// are all equal to `template` except column `sweep_col`, which takes
    /// each of `values` in turn. `out` is cleared and refilled with one
    /// prediction per value, in `values` order.
    ///
    /// This is the frequency-curve hot path: instead of materializing the
    /// rows and descending every tree once *per value*, each tree is
    /// descended **once per call** — splits on any column other than
    /// `sweep_col` resolve identically for every value, so they follow a
    /// single child, and splits on `sweep_col` partition the (sorted)
    /// value range between the two children. Every value still lands on
    /// exactly the leaf the plain descent would reach, per-value tree
    /// contributions accumulate in tree order, and the mean divides once —
    /// so results are bit-identical to materializing the rows and calling
    /// [`FlatForest::predict_batch`].
    ///
    /// # Panics
    /// Panics on a feature-count mismatch, `sweep_col` out of range, or a
    /// NaN sweep value (range partitioning needs an ordered sweep axis;
    /// `template` columns may still be NaN and fall right as usual).
    pub fn predict_sweep_into(
        &self,
        template: &[f64],
        sweep_col: usize,
        values: &[f64],
        out: &mut Vec<f64>,
    ) {
        assert_eq!(template.len(), self.n_features, "feature count mismatch");
        assert!(sweep_col < self.n_features, "sweep column out of range");
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "sweep values must not be NaN"
        );
        out.clear();
        out.resize(values.len(), 0.0);
        if values.is_empty() {
            return;
        }

        let plan = SweepPlan::new(values);
        let mut stack = Vec::with_capacity(64);
        for &root in &self.roots {
            self.sweep_tree(root, template, sweep_col, &plan, &mut stack, out);
        }
        let n = self.roots.len() as f64;
        for acc in out.iter_mut() {
            *acc /= n;
        }
    }

    /// Tree-major batched sweep: [`FlatForest::predict_sweep_into`] for
    /// many templates at once, with the **outer loop over trees** — each
    /// tree's few-KiB arena slice stays cache-resident while it serves
    /// every template, instead of re-streaming the whole forest per
    /// template. `out` is refilled template-major: the predictions for
    /// `templates` row `k` occupy `out[k * values.len()..][..values.len()]`,
    /// in `values` order, bit-identical to calling
    /// [`FlatForest::predict_sweep_into`] per row.
    ///
    /// # Panics
    /// Same contract as [`FlatForest::predict_sweep_into`].
    pub fn predict_sweep_batch_into(
        &self,
        templates: &Matrix,
        sweep_col: usize,
        values: &[f64],
        out: &mut Vec<f64>,
    ) {
        assert_eq!(templates.cols(), self.n_features, "feature count mismatch");
        assert!(sweep_col < self.n_features, "sweep column out of range");
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "sweep values must not be NaN"
        );
        out.clear();
        out.resize(templates.rows() * values.len(), 0.0);
        if values.is_empty() || templates.rows() == 0 {
            return;
        }

        let plan = SweepPlan::new(values);
        let mut stack = Vec::with_capacity(64);
        for &root in &self.roots {
            for (row, acc) in templates
                .iter_rows()
                .zip(out.chunks_exact_mut(values.len()))
            {
                self.sweep_tree(root, row, sweep_col, &plan, &mut stack, acc);
            }
        }
        let n = self.roots.len() as f64;
        for acc in out.iter_mut() {
            *acc /= n;
        }
    }

    /// One tree of a sweep evaluation: adds the tree's leaf value for every
    /// swept value into `out` (no mean division). Non-sweep splits follow a
    /// single child; sweep-column splits partition the sorted value range,
    /// deferring the right branch on `stack` (passed in so callers reuse
    /// its allocation; always left empty on return).
    // `!(v <= t)` is NaN-aware (not `v > t`); see `descend`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn sweep_tree(
        &self,
        root: u32,
        template: &[f64],
        sweep_col: usize,
        plan: &SweepPlan,
        stack: &mut Vec<(u32, u32, u32)>,
        out: &mut [f64],
    ) {
        let (mut idx, mut lo, mut hi) = (root as usize, 0u32, plan.sorted.len() as u32);
        loop {
            let c = self.child[idx];
            if c == LEAF {
                let v = self.threshold[idx];
                if plan.identity {
                    for acc in &mut out[lo as usize..hi as usize] {
                        *acc += v;
                    }
                } else {
                    for &o in &plan.order[lo as usize..hi as usize] {
                        out[o as usize] += v;
                    }
                }
                match stack.pop() {
                    Some((i, l, h)) => {
                        idx = i as usize;
                        lo = l;
                        hi = h;
                    }
                    None => break,
                }
                continue;
            }
            let t = self.threshold[idx];
            let f = self.feature[idx] as usize;
            if f == sweep_col {
                // Values `<= t` go left — the same predicate as the plain
                // descent. A branchless linear count beats binary search
                // on the short ranges seen here.
                let left = plan.sorted[lo as usize..hi as usize]
                    .iter()
                    .filter(|&&v| v <= t)
                    .count() as u32;
                let mid = lo + left;
                if mid == hi {
                    idx = c as usize; // every value goes left
                } else if mid == lo {
                    idx = (c + 1) as usize; // every value goes right
                } else {
                    stack.push((c + 1, mid, hi));
                    idx = c as usize;
                    hi = mid;
                }
            } else {
                idx = (c + u32::from(!(template[f] <= t))) as usize;
            }
        }
    }
}

/// Sorted view of a sweep's value list, shared by every (tree, template)
/// walk of one sweep call. Range partitioning needs the sweep axis sorted;
/// callers pass arbitrary value lists, so leaves write through an index
/// permutation — except in the common case (an already-ascending frequency
/// grid), detected here so leaves accumulate into contiguous output ranges
/// with no indirection.
struct SweepPlan {
    sorted: Vec<f64>,
    order: Vec<u32>,
    identity: bool,
}

impl SweepPlan {
    fn new(values: &[f64]) -> Self {
        let mut order: Vec<u32> = (0..values.len() as u32).collect();
        order.sort_by(|&a, &b| values[a as usize].total_cmp(&values[b as usize]));
        let identity = order.iter().enumerate().all(|(i, &o)| o as usize == i);
        let sorted: Vec<f64> = order.iter().map(|&i| values[i as usize]).collect();
        SweepPlan {
            sorted,
            order,
            identity,
        }
    }
}

impl RandomForest {
    /// Compiles this fitted forest into a [`FlatForest`].
    ///
    /// # Panics
    /// Panics before `fit`.
    pub fn flatten(&self) -> FlatForest {
        FlatForest::compile(self)
    }
}

/// The flat arena is a derived compile-on-load cache, never persisted:
/// it serializes as `null`, so an `Option<FlatForest>` field reads back as
/// `None` and holders recompile from the pointer forest after load.
impl serde::Serialize for FlatForest {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for FlatForest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Err(serde::DeError::custom(format!(
            "FlatForest is a compiled cache and is never serialized; \
             recompile from the pointer forest (got {v:?})"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestParams;
    use crate::Regressor;

    fn fitted_forest(n_estimators: usize, seed: u64) -> (RandomForest, Matrix) {
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                vec![
                    ((i * 7919) % 1000) as f64 / 1000.0,
                    ((i * 104729) % 1000) as f64 / 1000.0,
                    ((i * 1299709) % 1000) as f64 / 1000.0,
                ]
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| 10.0 * (std::f64::consts::PI * r[0]).sin() + 5.0 * r[1] * r[1] + 2.0 * r[2])
            .collect();
        let x = Matrix::from_rows(&rows);
        let mut f = RandomForest::new(
            RandomForestParams {
                n_estimators,
                ..Default::default()
            },
            seed,
        );
        f.fit(&x, &y);
        (f, x)
    }

    #[test]
    fn flat_matches_pointer_walk_bitwise() {
        let (forest, x) = fitted_forest(12, 42);
        let flat = forest.flatten();
        assert_eq!(flat.n_trees(), 12);
        assert_eq!(flat.n_features(), 3);
        for row in x.iter_rows() {
            let a = forest.predict_row(row);
            let b = flat.predict_row(row);
            assert_eq!(a.to_bits(), b.to_bits(), "row {row:?}");
        }
    }

    #[test]
    fn batch_matches_scalar_bitwise() {
        let (forest, x) = fitted_forest(9, 7);
        let flat = forest.flatten();
        let batch = flat.predict_batch(&x);
        assert_eq!(batch.len(), x.rows());
        for (i, row) in x.iter_rows().enumerate() {
            assert_eq!(batch[i].to_bits(), flat.predict_row(row).to_bits());
        }
    }

    #[test]
    fn batch_into_reuses_buffer() {
        let (forest, x) = fitted_forest(5, 3);
        let flat = forest.flatten();
        let mut buf = vec![f64::NAN; 999];
        flat.predict_batch_into(&x, &mut buf);
        assert_eq!(buf.len(), x.rows());
        assert_eq!(buf, flat.predict_batch(&x));
    }

    #[test]
    fn sweep_matches_materialized_batch_bitwise() {
        let (forest, x) = fitted_forest(10, 21);
        let flat = forest.flatten();
        // Unsorted values with duplicates, swept over every column.
        let values = [0.7, 0.1, 0.9, 0.1, 0.35, 1.2, -0.2, 0.5];
        let template = [0.3, 0.6, 0.45];
        let _ = x;
        for col in 0..3 {
            let rows: Vec<Vec<f64>> = values
                .iter()
                .map(|&v| {
                    let mut r = template.to_vec();
                    r[col] = v;
                    r
                })
                .collect();
            let materialized = flat.predict_batch(&Matrix::from_rows(&rows));
            let mut swept = Vec::new();
            flat.predict_sweep_into(&template, col, &values, &mut swept);
            assert_eq!(swept.len(), values.len());
            for (a, b) in swept.iter().zip(&materialized) {
                assert_eq!(a.to_bits(), b.to_bits(), "col {col}");
            }
        }
    }

    #[test]
    fn sweep_with_nan_template_matches_batch() {
        let (forest, _) = fitted_forest(6, 5);
        let flat = forest.flatten();
        let template = [f64::NAN, 0.5, f64::NAN];
        let values = [0.2, 0.8, 0.5];
        let rows: Vec<Vec<f64>> = values
            .iter()
            .map(|&v| vec![f64::NAN, v, f64::NAN])
            .collect();
        let materialized = flat.predict_batch(&Matrix::from_rows(&rows));
        let mut swept = Vec::new();
        flat.predict_sweep_into(&template, 1, &values, &mut swept);
        for (a, b) in swept.iter().zip(&materialized) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sweep_with_empty_values_clears_output() {
        let (forest, _) = fitted_forest(3, 2);
        let flat = forest.flatten();
        let mut out = vec![1.0; 7];
        flat.predict_sweep_into(&[0.1, 0.2, 0.3], 0, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "sweep values must not be NaN")]
    fn sweep_nan_values_panic() {
        let (forest, _) = fitted_forest(3, 2);
        let flat = forest.flatten();
        let mut out = Vec::new();
        flat.predict_sweep_into(&[0.1, 0.2, 0.3], 0, &[0.5, f64::NAN], &mut out);
    }

    #[test]
    fn nan_features_fall_right_like_pointer_walk() {
        let (forest, _) = fitted_forest(6, 11);
        let flat = forest.flatten();
        let row = [f64::NAN, 0.5, f64::NAN];
        let a = forest.predict_row(&row);
        let b = flat.predict_row(&row);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn single_leaf_trees_compile() {
        // Constant targets collapse every tree to one leaf.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![3.5; 10];
        let x = Matrix::from_rows(&rows);
        let mut f = RandomForest::new(
            RandomForestParams {
                n_estimators: 4,
                ..Default::default()
            },
            0,
        );
        f.fit(&x, &y);
        let flat = f.flatten();
        assert_eq!(flat.n_nodes(), 4);
        assert_eq!(flat.predict_row(&[2.0]).to_bits(), 3.5f64.to_bits());
    }

    #[test]
    #[should_panic(expected = "flatten before fit")]
    fn flatten_unfitted_panics() {
        let f = RandomForest::with_defaults(0);
        let _ = f.flatten();
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn wrong_width_panics() {
        let (forest, _) = fitted_forest(3, 1);
        let _ = forest.flatten().predict_row(&[1.0]);
    }
}
