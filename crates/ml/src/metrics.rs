//! Regression quality metrics.
//!
//! The paper's accuracy analysis is based on the **mean absolute percentage
//! error** (MAPE, §5.2.1): per-frequency absolute percentage errors averaged
//! over all frequency configurations. MAE/MSE/RMSE/R² are provided for model
//! selection.

/// Mean absolute percentage error: `mean(|ŷ - y| / |y|)`.
///
/// Reported as a fraction (0.01 = 1 %), matching the paper's Figure 13 axis.
///
/// # Panics
/// Panics on length mismatch, empty input, or a zero true value (percentage
/// error is undefined there; the paper's targets — speedups, normalized
/// energies, times, energies — are all strictly positive).
pub fn mape(y_true: &[f64], y_pred: &[f64]) -> f64 {
    check(y_true, y_pred);
    let s: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| {
            assert!(*t != 0.0, "MAPE undefined for zero true value");
            ((p - t) / t).abs()
        })
        .sum();
    s / y_true.len() as f64
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    check(y_true, y_pred);
    let s: f64 = y_true.iter().zip(y_pred).map(|(t, p)| (p - t).abs()).sum();
    s / y_true.len() as f64
}

/// Mean squared error.
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    check(y_true, y_pred);
    let s: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (p - t) * (p - t))
        .sum();
    s / y_true.len() as f64
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    mse(y_true, y_pred).sqrt()
}

/// Coefficient of determination R². A constant-target input yields 1.0 for
/// a perfect prediction and `-inf`-free 0.0 otherwise (scikit-learn returns
/// 0.0 in the degenerate case too).
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    check(y_true, y_pred);
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

fn check(y_true: &[f64], y_pred: &[f64]) {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    assert!(!y_true.is_empty(), "metrics need at least one sample");
    // A NaN or infinite value would otherwise propagate silently through
    // every mean (NaN poisons sums; ±inf turns MAPE/R² into ±inf) and land
    // unnoticed in the Figure-13 accuracy tables.
    for (i, t) in y_true.iter().enumerate() {
        assert!(t.is_finite(), "non-finite true value at index {i}: {t}");
    }
    for (i, p) in y_pred.iter().enumerate() {
        assert!(p.is_finite(), "non-finite prediction at index {i}: {p}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_zero_error() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(mape(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(mse(&y, &y), 0.0);
        assert_eq!(r2(&y, &y), 1.0);
    }

    #[test]
    fn mape_is_relative() {
        // 10% over-prediction everywhere → MAPE = 0.10 exactly.
        let y_true = [1.0, 10.0, 100.0];
        let y_pred = [1.1, 11.0, 110.0];
        assert!((mape(&y_true, &y_pred) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn mae_mse_relationship() {
        let y_true = [0.0, 0.0];
        let y_pred = [1.0, -1.0];
        assert_eq!(mae(&y_true, &y_pred), 1.0);
        assert_eq!(mse(&y_true, &y_pred), 1.0);
        assert_eq!(rmse(&y_true, &y_pred), 1.0);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let y_true = [1.0, 2.0, 3.0];
        let y_pred = [2.0, 2.0, 2.0];
        assert!(r2(&y_true, &y_pred).abs() < 1e-12);
    }

    #[test]
    fn r2_degenerate_constant_target() {
        let y = [5.0, 5.0];
        assert_eq!(r2(&y, &[5.0, 5.0]), 1.0);
        assert_eq!(r2(&y, &[4.0, 6.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero true value")]
    fn mape_rejects_zero_truth() {
        let _ = mape(&[0.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite prediction at index 1")]
    fn nan_prediction_rejected() {
        let _ = mape(&[1.0, 2.0], &[1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "non-finite prediction at index 0")]
    fn infinite_prediction_rejected() {
        let _ = r2(&[1.0, 2.0], &[f64::INFINITY, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite true value at index 0")]
    fn nan_truth_rejected() {
        let _ = mae(&[f64::NAN], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite true value at index 1")]
    fn infinite_truth_rejected() {
        let _ = mse(&[1.0, f64::NEG_INFINITY], &[1.0, 2.0]);
    }
}
