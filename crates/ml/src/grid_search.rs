//! Exhaustive hyper-parameter grid search.
//!
//! The paper tunes its Random Forest "through a grid search method" over
//! `max_depth`, `n_estimators`, and `max_features` (§5.2.1), concluding the
//! defaults win. [`grid_search_forest`] reproduces that protocol: every
//! grid point is scored by K-fold cross-validation and the best
//! configuration (lowest mean score) is returned. A generic
//! [`grid_search`] is provided for other model families.

use crate::cv::{cross_val_scores, kfold_indices};
use crate::dataset::Dataset;
use crate::forest::{RandomForest, RandomForestParams};
use crate::tree::{MaxFeatures, TreeParams};
use crate::Regressor;

/// Result of a grid search: the winning configuration and its score, plus
/// the full scoreboard for reporting.
#[derive(Debug, Clone)]
pub struct GridSearchResult<P> {
    /// The best (lowest mean CV score) parameter set.
    pub best_params: P,
    /// The best mean CV score.
    pub best_score: f64,
    /// Every `(params, mean score)` evaluated, in grid order.
    pub scores: Vec<(P, f64)>,
}

/// Scores every candidate in `grid` by K-fold CV and returns the best.
/// `score` must be a loss (lower = better), e.g. MAPE or MSE.
///
/// # Panics
/// Panics on an empty grid.
pub fn grid_search<P, M, F>(
    grid: Vec<P>,
    build: impl Fn(&P) -> M,
    data: &Dataset,
    k_folds: usize,
    seed: u64,
    score: F,
) -> GridSearchResult<P>
where
    P: Clone,
    M: Regressor,
    F: Fn(&[f64], &[f64]) -> f64 + Copy,
{
    assert!(!grid.is_empty(), "empty parameter grid");
    let folds = kfold_indices(data.len(), k_folds, seed);
    let mut scores = Vec::with_capacity(grid.len());
    for p in &grid {
        let fold_scores = cross_val_scores(|| build(p), data, &folds, score);
        let mean = fold_scores.iter().sum::<f64>() / fold_scores.len() as f64;
        scores.push((p.clone(), mean));
    }
    let (best_params, best_score) = scores
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(p, s)| (p.clone(), *s))
        .expect("non-empty grid");
    GridSearchResult {
        best_params,
        best_score,
        scores,
    }
}

/// The paper's Random Forest grid: `max_depth` ∈ {None, 5, 10, 20},
/// `n_estimators` ∈ {50, 100, 200}, `max_features` ∈ {All, Sqrt, Third}.
pub fn paper_forest_grid() -> Vec<RandomForestParams> {
    let depths = [None, Some(5), Some(10), Some(20)];
    let estimators = [50usize, 100, 200];
    let feats = [MaxFeatures::All, MaxFeatures::Sqrt, MaxFeatures::Third];
    let mut grid = Vec::new();
    for &max_depth in &depths {
        for &n_estimators in &estimators {
            for &max_features in &feats {
                grid.push(RandomForestParams {
                    n_estimators,
                    tree: TreeParams {
                        max_depth,
                        max_features,
                        ..Default::default()
                    },
                    bootstrap: true,
                });
            }
        }
    }
    grid
}

/// Grid search over Random Forest hyper-parameters with a shared seed for
/// both the folds and the forests.
pub fn grid_search_forest(
    grid: Vec<RandomForestParams>,
    data: &Dataset,
    k_folds: usize,
    seed: u64,
    score: impl Fn(&[f64], &[f64]) -> f64 + Copy,
) -> GridSearchResult<RandomForestParams> {
    grid_search(
        grid,
        |p| RandomForest::new(*p, seed),
        data,
        k_folds,
        seed,
        score,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Matrix;
    use crate::metrics::mse;

    fn quadratic_data() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 10.0]).collect();
        let y = rows.iter().map(|r| r[0] * r[0]).collect();
        Dataset::new(Matrix::from_rows(&rows), y)
    }

    #[test]
    fn paper_grid_has_36_points() {
        assert_eq!(paper_forest_grid().len(), 36);
    }

    #[test]
    fn picks_deeper_forest_over_stump_forest() {
        let data = quadratic_data();
        let grid = vec![
            RandomForestParams {
                n_estimators: 10,
                tree: TreeParams {
                    max_depth: Some(1),
                    ..Default::default()
                },
                bootstrap: true,
            },
            RandomForestParams {
                n_estimators: 10,
                tree: TreeParams {
                    max_depth: None,
                    ..Default::default()
                },
                bootstrap: true,
            },
        ];
        let res = grid_search_forest(grid, &data, 3, 0, mse);
        assert_eq!(res.best_params.tree.max_depth, None);
        assert_eq!(res.scores.len(), 2);
        assert!(res.best_score <= res.scores[0].1);
    }

    #[test]
    fn deterministic_result() {
        let data = quadratic_data();
        let a = grid_search_forest(paper_forest_grid()[..4].to_vec(), &data, 3, 5, mse);
        let b = grid_search_forest(paper_forest_grid()[..4].to_vec(), &data, 3, 5, mse);
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.best_params, b.best_params);
    }

    #[test]
    #[should_panic(expected = "empty parameter grid")]
    fn empty_grid_rejected() {
        let data = quadratic_data();
        let _ = grid_search_forest(vec![], &data, 3, 0, mse);
    }
}
