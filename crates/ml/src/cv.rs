//! Cross-validation.
//!
//! Two protocols:
//!
//! * [`kfold_indices`] — classic shuffled K-fold, used by the grid search;
//! * [`leave_one_group_out`] — the paper's validation protocol (§5.2): for
//!   each distinct *input configuration* (feature vector), hold out every
//!   sample of that configuration (all its frequency points) and train on
//!   the rest. This is "leave-one-out cross-validation over the
//!   domain-specific features dataset": `D_v = {s ∈ D : s has input
//!   features f}`, `D_t = D \ D_v`.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dataset::{Dataset, Matrix};
use crate::Regressor;

/// Shuffled K-fold index sets: returns `k` `(train, validation)` pairs
/// partitioning `0..n`.
///
/// # Panics
/// Panics unless `2 ≤ k ≤ n`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k ≥ 2");
    assert!(k <= n, "more folds than samples");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let val: Vec<usize> = idx[start..start + size].to_vec();
        let train: Vec<usize> = idx[..start]
            .iter()
            .chain(&idx[start + size..])
            .copied()
            .collect();
        folds.push((train, val));
        start += size;
    }
    folds
}

/// Group labels → leave-one-group-out `(train, validation)` index pairs,
/// one per distinct group, in first-appearance order.
///
/// # Panics
/// Panics if `groups` is empty or contains a single group (nothing to train
/// on when it is held out).
pub fn leave_one_group_out(groups: &[u64]) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(!groups.is_empty(), "no samples");
    let mut ordered: Vec<u64> = Vec::new();
    for g in groups {
        if !ordered.contains(g) {
            ordered.push(*g);
        }
    }
    assert!(
        ordered.len() >= 2,
        "leave-one-group-out needs at least two groups"
    );
    ordered
        .iter()
        .map(|g| {
            let mut train = Vec::new();
            let mut val = Vec::new();
            for (i, gi) in groups.iter().enumerate() {
                if gi == g {
                    val.push(i);
                } else {
                    train.push(i);
                }
            }
            (train, val)
        })
        .collect()
}

/// Fits a fresh model per fold and returns the per-fold validation scores
/// computed by `score(y_true, y_pred)` (e.g. [`crate::metrics::mape`]).
pub fn cross_val_scores<M, F>(
    make_model: impl Fn() -> M,
    data: &Dataset,
    folds: &[(Vec<usize>, Vec<usize>)],
    score: F,
) -> Vec<f64>
where
    M: Regressor,
    F: Fn(&[f64], &[f64]) -> f64,
{
    folds
        .iter()
        .map(|(train_idx, val_idx)| {
            let train = data.subset(train_idx);
            let val = data.subset(val_idx);
            let mut model = make_model();
            model.fit(&train.x, &train.y);
            let pred = model.predict(&val.x);
            score(&val.y, &pred)
        })
        .collect()
}

/// Derives group labels from the feature rows themselves: samples with
/// bit-identical values in `group_cols` share a group. This is exactly the
/// paper's grouping ("each different input feature f"): for the energy
/// datasets, the group columns are the domain-specific input features and
/// the remaining column is the frequency.
pub fn groups_from_columns(x: &Matrix, group_cols: &[usize]) -> Vec<u64> {
    use std::collections::HashMap;
    let mut ids: HashMap<Vec<u64>, u64> = HashMap::new();
    let mut out = Vec::with_capacity(x.rows());
    for row in x.iter_rows() {
        let key: Vec<u64> = group_cols.iter().map(|&c| row[c].to_bits()).collect();
        let next = ids.len() as u64;
        let id = *ids.entry(key).or_insert(next);
        out.push(id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearRegression;

    #[test]
    fn kfold_partitions_everything_once() {
        let folds = kfold_indices(10, 3, 0);
        assert_eq!(folds.len(), 3);
        let mut seen = [0usize; 10];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 10);
            for &i in val {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each sample in exactly one val fold"
        );
    }

    #[test]
    fn kfold_deterministic() {
        assert_eq!(kfold_indices(20, 4, 9), kfold_indices(20, 4, 9));
    }

    #[test]
    fn logo_holds_out_whole_groups() {
        let groups = vec![1, 1, 2, 2, 2, 3];
        let folds = leave_one_group_out(&groups);
        assert_eq!(folds.len(), 3);
        assert_eq!(folds[0].1, vec![0, 1]);
        assert_eq!(folds[1].1, vec![2, 3, 4]);
        assert_eq!(folds[2].1, vec![5]);
        for (train, val) in &folds {
            for i in val {
                assert!(!train.contains(i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two groups")]
    fn logo_rejects_single_group() {
        let _ = leave_one_group_out(&[7, 7, 7]);
    }

    #[test]
    fn groups_from_columns_match_identical_rows() {
        let x = Matrix::from_rows(&[
            vec![1.0, 100.0],
            vec![1.0, 200.0],
            vec![2.0, 100.0],
            vec![1.0, 300.0],
        ]);
        let g = groups_from_columns(&x, &[0]);
        assert_eq!(g[0], g[1]);
        assert_eq!(g[1], g[3]);
        assert_ne!(g[0], g[2]);
    }

    #[test]
    fn cross_val_perfect_on_linear_data() {
        let x = Matrix::from_rows(&(0..12).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let y: Vec<f64> = (0..12).map(|i| 2.0 * i as f64 + 1.0).collect();
        let data = Dataset::new(x, y);
        let folds = kfold_indices(12, 3, 0);
        let scores = cross_val_scores(LinearRegression::new, &data, &folds, crate::metrics::mae);
        assert_eq!(scores.len(), 3);
        for s in scores {
            assert!(s < 1e-6, "linear model should nail linear data, MAE={s}");
        }
    }
}
