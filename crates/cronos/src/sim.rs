//! The Algorithm-1 simulation drivers.
//!
//! [`Simulation`] runs the actual numerics on the CPU (rayon-parallel) —
//! this is what the physics tests validate. [`GpuCronos`] drives the same
//! loop structure through a [`synergy::SynergyQueue`], submitting the
//! kernel profiles from [`crate::kernelize`] exactly where the SYCL port
//! submits its kernels; this is what the energy experiments measure.

use synergy::energy::Measurement;
use synergy::{KernelTrace, SynergyQueue, TraceSegment};

use crate::boundary::{apply_boundary, BoundaryKind};
use crate::grid::Grid;
use crate::integrate::{integrate_substep, N_SUBSTEPS};
use crate::kernelize::substep_kernels;
use crate::problems::Problem;
use crate::reduce::max_reduce;
use crate::state::State;
use crate::stencil::compute_changes;

/// A running CPU simulation of one problem.
#[derive(Debug, Clone)]
pub struct Simulation {
    /// Current conserved state.
    pub state: State,
    /// Adiabatic index.
    pub gamma: f64,
    /// CFL safety factor (fraction of the stability limit).
    pub cfl_number: f64,
    /// Boundary condition.
    pub boundary: BoundaryKind,
    /// Current simulation time.
    pub time: f64,
    /// Current timestep (adjusted from the CFL reduction each step).
    pub dt: f64,
    /// Completed timesteps.
    pub step_count: u64,
}

impl Simulation {
    /// Sets up a simulation: applies the initial boundary fill and derives
    /// the first timestep from the initial CFL field (Algorithm 1 lines
    /// 2–3 plus the first `adjustTimestepDelta`).
    pub fn new(problem: Problem, gamma: f64, cfl_number: f64) -> Self {
        assert!(
            cfl_number > 0.0 && cfl_number < 1.0,
            "CFL number must be in (0, 1)"
        );
        let mut state = problem.state;
        apply_boundary(&mut state, problem.boundary);
        let changes = compute_changes(&state, gamma);
        let cfl_max = max_reduce(&changes.cfl);
        let dt = cfl_number / cfl_max;
        Simulation {
            state,
            gamma,
            cfl_number,
            boundary: problem.boundary,
            time: 0.0,
            dt,
            step_count: 0,
        }
    }

    /// Advances one full timestep (three SSP-RK substeps), then adjusts the
    /// timestep from the CFL reduction — the body of Algorithm 1's while
    /// loop. Returns the `dt` that was applied.
    pub fn step(&mut self) -> f64 {
        let dt = self.dt;
        let u_old = self.state.clone();
        let mut cfl_max = 0.0f64;
        for substep in 0..N_SUBSTEPS {
            let changes = compute_changes(&self.state, self.gamma);
            cfl_max = cfl_max.max(max_reduce(&changes.cfl));
            integrate_substep(&mut self.state, &u_old, &changes, dt, substep);
            apply_boundary(&mut self.state, self.boundary);
        }
        // adjustTimestepDelta: next dt from the stiffest signal seen.
        self.dt = self.cfl_number / cfl_max;
        self.time += dt;
        self.step_count += 1;
        dt
    }

    /// Runs until `end_time` (Algorithm 1's outer loop), bounded by
    /// `max_steps` as a runaway guard. Returns the number of steps taken.
    pub fn run_until(&mut self, end_time: f64, max_steps: u64) -> u64 {
        let mut steps = 0;
        while self.time < end_time && steps < max_steps {
            // Clip the final step onto the end time.
            if self.time + self.dt > end_time {
                self.dt = end_time - self.time;
            }
            self.step();
            steps += 1;
        }
        steps
    }

    /// Runs exactly `n` timesteps.
    pub fn run_steps(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

/// The GPU-side workload driver: submits the Algorithm-1 kernel sequence
/// for a grid to a SYnergy queue, without carrying the CPU state (the
/// energy behaviour depends on the kernel shapes, which depend only on the
/// grid — this is precisely the paper's domain-specific observation).
#[derive(Debug, Clone, Copy)]
pub struct GpuCronos {
    /// Grid the kernels are sized for.
    pub grid: Grid,
    /// Timesteps per measured run.
    pub steps: u64,
}

impl GpuCronos {
    /// A GPU workload of `steps` timesteps on `grid`.
    ///
    /// # Panics
    /// Panics if `steps == 0`.
    pub fn new(grid: Grid, steps: u64) -> Self {
        assert!(steps > 0, "need at least one timestep");
        GpuCronos { grid, steps }
    }

    /// Submits the full run to `queue` under its active frequency policy
    /// and returns the aggregate time/energy of the submitted kernels.
    pub fn run(&self, queue: &mut SynergyQueue) -> Measurement {
        let kernels = substep_kernels(&self.grid);
        let t0 = queue.total_time_s();
        let e0 = queue.total_energy_j();
        for _step in 0..self.steps {
            for _substep in 0..N_SUBSTEPS {
                for k in &kernels {
                    queue.submit(k);
                }
            }
        }
        Measurement {
            time_s: queue.total_time_s() - t0,
            energy_j: queue.total_energy_j() - e0,
        }
    }

    /// Number of kernel submissions one run performs.
    pub fn kernel_count(&self) -> u64 {
        self.steps * N_SUBSTEPS as u64 * 4
    }

    /// The workload's kernel trace, built directly from its known
    /// structure: the four substep kernels submitted in order, repeated
    /// `steps × N_SUBSTEPS` times. Replaying it is submission-for-
    /// submission identical to [`GpuCronos::run`], at recording cost O(1)
    /// in the step count.
    pub fn record_trace(&self) -> KernelTrace {
        let kernels = substep_kernels(&self.grid).to_vec();
        let period = (0..kernels.len())
            .map(|i| TraceSegment {
                kernel_index: i,
                count: 1,
            })
            .collect();
        KernelTrace::new(kernels, period, self.steps * N_SUBSTEPS as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::GAMMA;
    use crate::problems;
    use crate::state::comp;
    use gpu_sim::{Device, DeviceSpec};
    use synergy::FrequencyPolicy;

    #[test]
    fn uniform_state_is_a_fixed_point() {
        let mut sim = Simulation::new(problems::uniform(Grid::cubic(6, 6, 6)), GAMMA, 0.4);
        let before = sim.state.clone();
        sim.run_steps(3);
        for (a, b) in sim.state.cells.iter().zip(&before.cells) {
            for c in 0..8 {
                assert!((a[c] - b[c]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn blast_conserves_mass_with_periodic_bc() {
        // Use the Orszag–Tang problem (periodic) for a conservation check.
        let mut sim = Simulation::new(problems::orszag_tang(Grid::cubic(16, 16, 4)), GAMMA, 0.4);
        let mass0 = sim.state.total(comp::RHO);
        let energy0 = sim.state.total(comp::EN);
        sim.run_steps(5);
        let mass1 = sim.state.total(comp::RHO);
        let energy1 = sim.state.total(comp::EN);
        assert!(((mass1 - mass0) / mass0).abs() < 1e-12, "mass drift");
        assert!(
            ((energy1 - energy0) / energy0).abs() < 1e-12,
            "energy drift"
        );
    }

    #[test]
    fn brio_wu_stays_physical_and_develops_structure() {
        let g = Grid::new(64, 4, 4, 1.0, 0.0625, 0.0625);
        let mut sim = Simulation::new(problems::brio_wu(g), 2.0, 0.4);
        sim.run_until(0.1, 10_000);
        assert!(sim.state.is_physical(2.0), "Brio–Wu went unphysical");
        // The initial two-state profile must have developed intermediate
        // densities (rarefaction/compound structures).
        let mut mid_values = 0;
        for i in 0..g.nx {
            let rho = sim.state.interior(i, 0, 0)[comp::RHO];
            if rho > 0.2 && rho < 0.9 {
                mid_values += 1;
            }
        }
        assert!(mid_values > 3, "no wave structure formed");
    }

    #[test]
    fn sound_wave_advances_at_unit_speed() {
        // With unit sound speed and a unit domain, after t = 1 the wave has
        // crossed the box exactly once and must match the initial profile
        // (up to the scheme's dissipation).
        let g = Grid::new(64, 4, 4, 1.0, 0.0625, 0.0625);
        let problem = problems::sound_wave(g, 1e-3);
        let initial: Vec<f64> = (0..g.nx)
            .map(|i| problem.state.interior(i, 0, 0)[comp::RHO])
            .collect();
        let mut sim = Simulation::new(problem, GAMMA, 0.4);
        sim.run_until(1.0, 100_000);
        assert!((sim.time - 1.0).abs() < 1e-9);
        let max_amp = 1e-3;
        #[allow(clippy::needless_range_loop)]
        for i in 0..g.nx {
            let rho = sim.state.interior(i, 0, 0)[comp::RHO];
            // Profile must stay within the linear band and track the
            // initial wave within 40 % of its amplitude (Rusanov is
            // dissipative but phase-accurate).
            assert!((rho - initial[i]).abs() < 0.4 * max_amp, "cell {i}");
        }
    }

    #[test]
    fn timestep_adapts_to_evolving_cfl_limit() {
        let mut sim = Simulation::new(problems::mhd_blast(Grid::cubic(16, 16, 16)), GAMMA, 0.4);
        let dt0 = sim.dt;
        sim.run_steps(20);
        assert!(sim.dt.is_finite() && sim.dt > 0.0);
        assert!(
            (sim.dt - dt0).abs() > 1e-6 * dt0,
            "adjustTimestepDelta must track the evolving signal speeds"
        );
    }

    #[test]
    fn run_until_respects_end_time() {
        let mut sim = Simulation::new(problems::uniform(Grid::cubic(4, 4, 4)), GAMMA, 0.4);
        sim.run_until(0.05, 1000);
        assert!((sim.time - 0.05).abs() < 1e-12);
    }

    #[test]
    fn gpu_driver_submits_expected_kernel_count() {
        let mut q = SynergyQueue::nvidia(Device::new(DeviceSpec::v100()));
        let run = GpuCronos::new(Grid::cubic(20, 8, 8), 5);
        let m = run.run(&mut q);
        assert_eq!(q.submission_count(), run.kernel_count());
        assert!(m.time_s > 0.0 && m.energy_j > 0.0);
    }

    #[test]
    fn native_trace_matches_generic_recording() {
        let run = GpuCronos::new(Grid::cubic(20, 8, 8), 5);
        let native = run.record_trace();
        let recorded = KernelTrace::record(&DeviceSpec::v100(), |q| {
            run.run(q);
        });
        assert_eq!(native, recorded);
        assert_eq!(native.total_launches(), run.kernel_count());
    }

    #[test]
    fn trace_replay_matches_direct_run_bitwise() {
        let run = GpuCronos::new(Grid::cubic(20, 8, 8), 3);
        let mut direct = SynergyQueue::nvidia(Device::new(DeviceSpec::v100()));
        let m_direct = run.run(&mut direct);
        let mut replayed = SynergyQueue::nvidia(Device::new(DeviceSpec::v100()));
        let m_replay = run.record_trace().replay_on(&mut replayed);
        assert_eq!(m_replay, m_direct);
        assert_eq!(replayed.submission_count(), direct.submission_count());
    }

    #[test]
    fn gpu_large_grid_downclock_saves_energy() {
        // The paper's headline Cronos observation: on a 160×64×64 grid,
        // lowering the core clock saves substantial energy at near-zero
        // slowdown (Figure 4b).
        let run = GpuCronos::new(Grid::cubic(160, 64, 64), 2);

        let mut q_def = SynergyQueue::nvidia(Device::new(DeviceSpec::v100()));
        let m_def = run.run(&mut q_def);

        let mut q_low = SynergyQueue::nvidia(Device::new(DeviceSpec::v100()));
        q_low.set_policy(FrequencyPolicy::Fixed(900.0));
        let m_low = run.run(&mut q_low);

        let slowdown = m_low.time_s / m_def.time_s;
        let energy_ratio = m_low.energy_j / m_def.energy_j;
        assert!(slowdown < 1.06, "slowdown {slowdown} too large");
        assert!(energy_ratio < 0.92, "energy ratio {energy_ratio} too high");
    }
}
