//! Parallel reductions (the `reduce(cfl, cflBuf, max)` of Algorithm 1).

use rayon::prelude::*;

/// Parallel maximum of a slice.
///
/// # Panics
/// Panics on an empty slice or non-finite values — the CFL buffer is never
/// empty and non-finite signal speeds mean the solver has already blown up,
/// which should fail loudly.
pub fn max_reduce(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "cannot reduce an empty buffer");
    // `f64::max` would silently drop NaN operands; propagate them instead so
    // the finite check below actually fires on a diverged solve.
    let m = values.par_iter().copied().reduce(
        || f64::NEG_INFINITY,
        |a, b| {
            if a.is_nan() || b.is_nan() {
                f64::NAN
            } else {
                a.max(b)
            }
        },
    );
    assert!(
        m.is_finite(),
        "non-finite value in reduction: solver diverged"
    );
    m
}

/// Parallel sum (used by conservation diagnostics on large grids).
pub fn sum_reduce(values: &[f64]) -> f64 {
    values.par_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_of_known_values() {
        assert_eq!(max_reduce(&[1.0, 5.0, 3.0]), 5.0);
        assert_eq!(max_reduce(&[-2.0, -7.0]), -2.0);
        assert_eq!(max_reduce(&[4.0]), 4.0);
    }

    #[test]
    fn max_matches_sequential_on_large_input() {
        let v: Vec<f64> = (0..100_000)
            .map(|i| ((i * 2654435761u64 as usize) % 9973) as f64)
            .collect();
        let seq = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(max_reduce(&v), seq);
    }

    #[test]
    fn sum_matches_sequential() {
        let v: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let expect = (9_999.0 * 10_000.0) / 2.0;
        assert!((sum_reduce(&v) - expect).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn empty_reduce_panics() {
        let _ = max_reduce(&[]);
    }

    #[test]
    #[should_panic(expected = "solver diverged")]
    fn nan_reduce_panics() {
        let _ = max_reduce(&[1.0, f64::NAN]);
    }
}
