//! # cronos — a finite-volume magnetohydrodynamics solver
//!
//! Stand-in for the CRONOS astrophysical MHD code (Kissmann et al. 2018)
//! used as the magnetohydrodynamics case study in the paper. The solver
//! implements Algorithm 1 of the paper literally:
//!
//! ```text
//! grid ← initialise(); grid ← applyBoundary(grid)
//! while currentTime ≤ endTime:
//!     for substep ← 0 to 2:
//!         cflBuf, changeBuf ← computeChanges(grid)   // 13-point stencil
//!         cfl ← reduce(cfl, cflBuf, max)             // parallel reduction
//!         grid ← integrateTime(grid, changeBuf, substep)
//!         grid ← applyBoundary(grid)
//!     timeDelta ← adjustTimestepDelta(timeDelta, cfl)
//!     currentTime += timeDelta
//! ```
//!
//! The numerics are a real second-order finite-volume scheme for ideal MHD:
//! minmod-limited linear reconstruction + Rusanov (local Lax–Friedrichs)
//! fluxes (the 2-cells-per-direction neighbourhood gives exactly the
//! paper's 13-point stencil), SSP-RK3 time integration (the three
//! substeps), and periodic or outflow boundaries. Standard test problems —
//! Brio–Wu, Orszag–Tang, MHD blast, smooth waves — live in [`problems`].
//!
//! For the energy experiments, [`kernelize`] maps each solver phase to a
//! [`gpu_sim::KernelProfile`] whose work-item count and op mix are derived
//! from the discretization formulas, and [`sim::GpuCronos`] drives them
//! through a [`synergy::SynergyQueue`] exactly where the SYCL port of
//! CRONOS submits its kernels.

pub mod boundary;
pub mod decomp;
pub mod diagnostics;
pub mod eos;
pub mod flux;
pub mod grid;
pub mod integrate;
pub mod kernelize;
pub mod problems;
pub mod reduce;
pub mod sim;
pub mod state;
pub mod stencil;

pub use decomp::{
    Decomposition, DistributedGpuCronos, DistributedRunReport, DistributedSimulation,
};
pub use grid::Grid;
pub use sim::{GpuCronos, Simulation};
pub use state::{Cons, State};
