//! Slab domain decomposition with bit-identical halo exchange.
//!
//! The real CRONOS runs domain-decomposed: the 3D grid is cut into
//! per-device subdomains that exchange two-cell halos (`NGHOST = 2`) every
//! substep. This module provides the decomposition geometry
//! ([`Decomposition`]), a CPU reference path ([`DistributedSimulation`])
//! whose evolved state is **bit-identical** to the monolithic
//! [`crate::sim::Simulation`], and the multi-queue GPU driver
//! ([`DistributedGpuCronos`]) that prices the same loop — compute kernels
//! per slab, a per-substep barrier at the CFL all-reduce, and
//! `pack_halo` / link transfer / `unpack_halo` phases on every interior
//! cut.
//!
//! # Why the exchange is bit-identical
//!
//! The monolithic x-boundary sweep copies *full* `(j, k)` storage planes
//! (ghost rows included) from interior columns into the ghost columns; the
//! y and z sweeps then run over every x column. A slab cut along x
//! therefore stays exact if, per substep, each slab
//!
//! 1. receives its x ghost *planes* (all rows) from its neighbours'
//!    interior columns — low ghost layer `s` from the left slab's column
//!    `nx_left + s`, high ghost layer `m` (column `nx + NGHOST + m`) from
//!    the right slab's column `NGHOST + m` — or applies the monolithic
//!    one-sided formula at a physical (non-periodic) face, then
//! 2. runs the unchanged local y and z sweeps.
//!
//! For periodic problems the ring wraps (the first slab's left neighbour
//! is the last slab), which reproduces the monolithic periodic fill
//! exactly, including the one-slab self-wrap. Every copied value equals
//! the value the monolithic sweep would have placed, by induction over
//! substeps, so `compute_changes`, the CFL reduction (max is exact), and
//! `integrate_substep` see bitwise-equal inputs. The slab grids carry the
//! parent's exact cell spacing ([`Grid::subgrid_x`]), closing the loop.

use synergy::energy::Measurement;
use synergy::{SubmitError, SynergyQueue};

use crate::boundary::{sweep_y, sweep_z, BoundaryKind};
use crate::grid::{Grid, NGHOST};
use crate::integrate::{integrate_substep, N_SUBSTEPS};
use crate::kernelize::{halo_kernels, substep_kernels};
use crate::problems::Problem;
use crate::reduce::max_reduce;
use crate::sim::Simulation;
use crate::state::{comp, Cons, State, NCOMP};
use crate::stencil::compute_changes;

/// A slab decomposition of a grid along x: `num_slabs` contiguous
/// subdomains, each at least `NGHOST` cells wide so halo sources are
/// always interior cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    nx: usize,
    /// Global interior x offset of each slab.
    starts: Vec<usize>,
    /// Interior x extent of each slab.
    widths: Vec<usize>,
}

impl Decomposition {
    /// Cuts `grid` into `num_slabs` x-slabs, as evenly as possible (the
    /// first `nx mod num_slabs` slabs get one extra column).
    ///
    /// # Panics
    /// Panics if `num_slabs` is zero or exceeds
    /// [`Decomposition::max_slabs`] for the grid.
    pub fn slabs(grid: &Grid, num_slabs: usize) -> Self {
        assert!(num_slabs > 0, "need at least one slab");
        assert!(
            num_slabs <= Self::max_slabs(grid),
            "{} slabs over nx = {} leaves a slab thinner than NGHOST = {}",
            num_slabs,
            grid.nx,
            NGHOST
        );
        let base = grid.nx / num_slabs;
        let extra = grid.nx % num_slabs;
        let mut starts = Vec::with_capacity(num_slabs);
        let mut widths = Vec::with_capacity(num_slabs);
        let mut at = 0;
        for i in 0..num_slabs {
            let w = base + usize::from(i < extra);
            starts.push(at);
            widths.push(w);
            at += w;
        }
        debug_assert_eq!(at, grid.nx);
        Decomposition {
            nx: grid.nx,
            starts,
            widths,
        }
    }

    /// The largest slab count this grid supports: every slab must span at
    /// least `NGHOST` interior cells, or a halo source would itself be a
    /// ghost cell.
    pub fn max_slabs(grid: &Grid) -> usize {
        (grid.nx / NGHOST).max(1)
    }

    /// Number of slabs.
    pub fn num_slabs(&self) -> usize {
        self.starts.len()
    }

    /// Global interior x offset of slab `i`.
    pub fn start(&self, i: usize) -> usize {
        self.starts[i]
    }

    /// Interior x extent of slab `i`.
    pub fn width(&self, i: usize) -> usize {
        self.widths[i]
    }

    /// The subgrid of slab `i`, carrying the parent's exact spacing.
    pub fn slab_grid(&self, parent: &Grid, i: usize) -> Grid {
        parent.subgrid_x(self.widths[i])
    }

    /// Number of interior cuts that cross a device boundary under `kind`:
    /// the `num_slabs − 1` interior cuts, plus the periodic wrap when more
    /// than one slab shares the ring. A single slab has no remote cut —
    /// its periodic wrap is a local copy.
    pub fn remote_cuts(&self, kind: BoundaryKind) -> usize {
        let n = self.num_slabs();
        if n == 1 {
            0
        } else if kind == BoundaryKind::Periodic {
            n
        } else {
            n - 1
        }
    }

    /// Bytes crossing device links per exchange (one boundary phase): each
    /// remote cut carries `NGHOST` full `(j, k)` storage planes in both
    /// directions, 8 components × 8 bytes per cell.
    pub fn halo_bytes_per_exchange(&self, parent: &Grid, kind: BoundaryKind) -> u64 {
        self.remote_cuts(kind) as u64 * 2 * Self::plane_bytes(parent)
    }

    /// Bytes of one directed halo message: `NGHOST` full storage planes.
    pub fn plane_bytes(parent: &Grid) -> u64 {
        (NGHOST * parent.sy() * parent.sz() * NCOMP * 8) as u64
    }
}

/// Packs the planes a slab sends to its *right* neighbour (which become
/// that neighbour's low ghost columns): columns `nx + s` for
/// `s ∈ [0, NGHOST)`, full `(j, k)` rows, s-major.
fn pack_for_right(state: &State) -> Vec<Cons> {
    pack_columns(state, |s| state.grid.nx + s)
}

/// Packs the planes a slab sends to its *left* neighbour (which become
/// that neighbour's high ghost columns): columns `NGHOST + m`.
fn pack_for_left(state: &State) -> Vec<Cons> {
    pack_columns(state, |m| NGHOST + m)
}

fn pack_columns(state: &State, col: impl Fn(usize) -> usize) -> Vec<Cons> {
    let g = state.grid;
    let mut buf = Vec::with_capacity(NGHOST * g.sy() * g.sz());
    for s in 0..NGHOST {
        let i = col(s);
        for k in 0..g.sz() {
            for j in 0..g.sy() {
                buf.push(state.cells[g.idx(i, j, k)]);
            }
        }
    }
    buf
}

/// Unpacks a received halo into the low ghost columns `s ∈ [0, NGHOST)`.
fn unpack_low(state: &mut State, buf: &[Cons]) {
    unpack_columns(state, buf, |s| s);
}

/// Unpacks a received halo into the high ghost columns `nx + NGHOST + m`.
fn unpack_high(state: &mut State, buf: &[Cons]) {
    let nx = state.grid.nx;
    unpack_columns(state, buf, |m| nx + NGHOST + m);
}

fn unpack_columns(state: &mut State, buf: &[Cons], col: impl Fn(usize) -> usize) {
    let g = state.grid;
    assert_eq!(buf.len(), NGHOST * g.sy() * g.sz(), "halo buffer size");
    let mut at = 0;
    for s in 0..NGHOST {
        let i = col(s);
        for k in 0..g.sz() {
            for j in 0..g.sy() {
                state.cells[g.idx(i, j, k)] = buf[at];
                at += 1;
            }
        }
    }
}

/// One-sided physical x fill at a low domain face — the low half of the
/// monolithic x sweep, applied with the slab's local extent.
fn fill_physical_x_low(state: &mut State, kind: BoundaryKind) {
    let g = state.grid;
    for k in 0..g.sz() {
        for j in 0..g.sy() {
            for layer in 0..NGHOST {
                let src = match kind {
                    BoundaryKind::Periodic => unreachable!("periodic faces use the ring"),
                    BoundaryKind::Outflow => NGHOST,
                    BoundaryKind::Reflecting => 2 * NGHOST - 1 - layer,
                };
                let mut c = state.cells[g.idx(src, j, k)];
                if kind == BoundaryKind::Reflecting {
                    c[comp::MX] = -c[comp::MX];
                    c[comp::BX] = -c[comp::BX];
                }
                state.cells[g.idx(layer, j, k)] = c;
            }
        }
    }
}

/// One-sided physical x fill at a high domain face.
fn fill_physical_x_high(state: &mut State, kind: BoundaryKind) {
    let g = state.grid;
    let sx = g.sx();
    for k in 0..g.sz() {
        for j in 0..g.sy() {
            for layer in 0..NGHOST {
                let src = match kind {
                    BoundaryKind::Periodic => unreachable!("periodic faces use the ring"),
                    BoundaryKind::Outflow => NGHOST + g.nx - 1,
                    BoundaryKind::Reflecting => NGHOST + g.nx - NGHOST + layer,
                };
                let mut c = state.cells[g.idx(src, j, k)];
                if kind == BoundaryKind::Reflecting {
                    c[comp::MX] = -c[comp::MX];
                    c[comp::BX] = -c[comp::BX];
                }
                state.cells[g.idx(sx - 1 - layer, j, k)] = c;
            }
        }
    }
}

/// The domain-decomposed CPU simulation: one [`State`] per slab, advanced
/// in lockstep. Its evolved state ([`DistributedSimulation::gather`]),
/// timestep, time, and step count are bit-identical to the monolithic
/// [`Simulation`] on every supported boundary kind.
#[derive(Debug, Clone)]
pub struct DistributedSimulation {
    /// Parent grid geometry.
    pub grid: Grid,
    /// Decomposition geometry.
    pub decomp: Decomposition,
    /// Per-slab states (full local storage, ghosts included).
    pub slabs: Vec<State>,
    /// Adiabatic index.
    pub gamma: f64,
    /// CFL safety factor.
    pub cfl_number: f64,
    /// Boundary condition.
    pub boundary: BoundaryKind,
    /// Current simulation time.
    pub time: f64,
    /// Current timestep.
    pub dt: f64,
    /// Completed timesteps.
    pub step_count: u64,
    /// Cumulative bytes exchanged across device cuts (remote copies only;
    /// a one-slab ring exchanges nothing).
    pub halo_bytes_exchanged: u64,
}

impl DistributedSimulation {
    /// Sets up the decomposed simulation by scattering the monolithic
    /// initial state (boundary-filled, first `dt` derived) onto
    /// `num_slabs` slabs.
    ///
    /// # Panics
    /// Panics like [`Simulation::new`] and [`Decomposition::slabs`].
    pub fn new(problem: Problem, gamma: f64, cfl_number: f64, num_slabs: usize) -> Self {
        let grid = problem.state.grid;
        let decomp = Decomposition::slabs(&grid, num_slabs);
        let mono = Simulation::new(problem, gamma, cfl_number);
        let slabs = (0..decomp.num_slabs())
            .map(|i| {
                let lg = decomp.slab_grid(&grid, i);
                let start = decomp.start(i);
                let mut s = State {
                    grid: lg,
                    cells: vec![[0.0; NCOMP]; lg.n_storage()],
                };
                // Local storage column t maps to global storage column
                // start + t (both offsets include the ghost origin).
                for t in 0..lg.sx() {
                    for k in 0..lg.sz() {
                        for j in 0..lg.sy() {
                            s.cells[lg.idx(t, j, k)] = mono.state.cells[grid.idx(start + t, j, k)];
                        }
                    }
                }
                s
            })
            .collect();
        DistributedSimulation {
            grid,
            decomp,
            slabs,
            gamma,
            cfl_number,
            boundary: mono.boundary,
            time: mono.time,
            dt: mono.dt,
            step_count: mono.step_count,
            halo_bytes_exchanged: 0,
        }
    }

    /// Advances one full timestep (three SSP-RK substeps) in lockstep,
    /// mirroring [`Simulation::step`] phase for phase. Returns the applied
    /// `dt`.
    pub fn step(&mut self) -> f64 {
        let dt = self.dt;
        let u_olds: Vec<State> = self.slabs.clone();
        let mut cfl_max = 0.0f64;
        for substep in 0..N_SUBSTEPS {
            // computeChanges per slab, then the CFL all-reduce: the global
            // maximum equals the monolithic reduction bitwise (max is
            // exact and order-free over the same multiset).
            let changes: Vec<_> = self
                .slabs
                .iter()
                .map(|s| compute_changes(s, self.gamma))
                .collect();
            let substep_cfl = changes
                .iter()
                .map(|c| max_reduce(&c.cfl))
                .fold(f64::NEG_INFINITY, f64::max);
            cfl_max = cfl_max.max(substep_cfl);
            for ((slab, u_old), ch) in self.slabs.iter_mut().zip(&u_olds).zip(&changes) {
                integrate_substep(slab, u_old, ch, dt, substep);
            }
            // applyBoundary: halo exchange replaces the x sweep on cuts,
            // then the unchanged local y/z sweeps run per slab.
            self.exchange_halos();
            for slab in &mut self.slabs {
                sweep_y(slab, self.boundary);
            }
            for slab in &mut self.slabs {
                sweep_z(slab, self.boundary);
            }
        }
        self.dt = self.cfl_number / cfl_max;
        self.time += dt;
        self.step_count += 1;
        dt
    }

    /// Runs exactly `n` timesteps.
    pub fn run_steps(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// The x-boundary phase: fills every slab's x ghost columns, either
    /// from a neighbour (full storage planes, the bit-identity invariant)
    /// or the one-sided physical formula at a non-periodic domain face.
    /// Returns the bytes that crossed device cuts.
    pub fn exchange_halos(&mut self) -> u64 {
        let n = self.slabs.len();
        let periodic = self.boundary == BoundaryKind::Periodic;
        let plane_bytes = Decomposition::plane_bytes(&self.grid);

        // Pack phase: snapshot every outgoing halo before any ghost is
        // written, so all copies read pre-exchange values (sources are
        // interior columns, but snapshotting keeps the phases explicit).
        let left_of = |i: usize| {
            if i > 0 {
                Some(i - 1)
            } else if periodic {
                Some(n - 1)
            } else {
                None
            }
        };
        let right_of = |i: usize| {
            if i + 1 < n {
                Some(i + 1)
            } else if periodic {
                Some(0)
            } else {
                None
            }
        };
        let low_in: Vec<Option<(usize, Vec<Cons>)>> = (0..n)
            .map(|i| left_of(i).map(|l| (l, pack_for_right(&self.slabs[l]))))
            .collect();
        let high_in: Vec<Option<(usize, Vec<Cons>)>> = (0..n)
            .map(|i| right_of(i).map(|r| (r, pack_for_left(&self.slabs[r]))))
            .collect();

        let mut bytes = 0u64;
        for (i, (low, high)) in low_in.into_iter().zip(high_in).enumerate() {
            match low {
                Some((src, buf)) => {
                    if src != i {
                        bytes += plane_bytes;
                    }
                    unpack_low(&mut self.slabs[i], &buf);
                }
                None => fill_physical_x_low(&mut self.slabs[i], self.boundary),
            }
            match high {
                Some((src, buf)) => {
                    if src != i {
                        bytes += plane_bytes;
                    }
                    unpack_high(&mut self.slabs[i], &buf);
                }
                None => fill_physical_x_high(&mut self.slabs[i], self.boundary),
            }
        }
        self.halo_bytes_exchanged += bytes;
        bytes
    }

    /// Reassembles the monolithic state: every slab writes its full local
    /// columns into the parent storage (overlapping ghost columns hold
    /// identical values by the exchange invariant).
    pub fn gather(&self) -> State {
        let g = self.grid;
        let mut out = State {
            grid: g,
            cells: vec![[0.0; NCOMP]; g.n_storage()],
        };
        for (i, slab) in self.slabs.iter().enumerate() {
            let lg = slab.grid;
            let start = self.decomp.start(i);
            for t in 0..lg.sx() {
                for k in 0..lg.sz() {
                    for j in 0..lg.sy() {
                        out.cells[g.idx(start + t, j, k)] = slab.cells[lg.idx(t, j, k)];
                    }
                }
            }
        }
        out
    }
}

/// A report of one distributed GPU run: the aggregate measurement plus the
/// share of it spent moving halos (pack/unpack kernels, link transfers,
/// and barrier waits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedRunReport {
    /// Makespan and total energy across all device queues.
    pub total: Measurement,
    /// Time/energy of the exchange machinery: halo pack/unpack kernels,
    /// link transfers, and barrier idle waits, summed over devices.
    pub exchange: Measurement,
    /// Simulated seconds devices spent waiting at lockstep barriers.
    pub barrier_wait_s: f64,
    /// Bytes that crossed device links.
    pub halo_bytes: u64,
    /// Devices the run actually used (fewer than requested after a link
    /// fallback).
    pub devices_used: usize,
    /// Link-fallback events: a lost link forced the run to degrade to the
    /// single-device stream.
    pub link_fallbacks: u64,
}

/// The multi-device GPU workload driver: prices the decomposed Algorithm-1
/// loop on N [`SynergyQueue`]s in lockstep. With one device the submitted
/// stream is identical to [`crate::sim::GpuCronos::run`] — no barriers, no
/// transfers — so the measurement is bit-identical.
#[derive(Debug, Clone, Copy)]
pub struct DistributedGpuCronos {
    /// Parent grid the slabs are cut from.
    pub grid: Grid,
    /// Timesteps per measured run.
    pub steps: u64,
    /// Boundary kind (decides whether the ring wraps).
    pub boundary: BoundaryKind,
}

impl DistributedGpuCronos {
    /// A distributed GPU workload of `steps` timesteps on `grid` with
    /// periodic boundaries (the Orszag–Tang-style default).
    ///
    /// # Panics
    /// Panics if `steps == 0`.
    pub fn new(grid: Grid, steps: u64) -> Self {
        assert!(steps > 0, "need at least one timestep");
        DistributedGpuCronos {
            grid,
            steps,
            boundary: BoundaryKind::Periodic,
        }
    }

    /// Same workload under a different boundary kind.
    pub fn with_boundary(mut self, boundary: BoundaryKind) -> Self {
        self.boundary = boundary;
        self
    }

    /// The largest device count this grid supports.
    pub fn max_devices(&self) -> usize {
        Decomposition::max_slabs(&self.grid)
    }

    /// Runs the decomposed loop over `queues` (one device per queue) and
    /// returns the aggregate report.
    ///
    /// # Panics
    /// Panics if `queues` is empty, oversubscribes the grid, or a
    /// submission fails permanently — use
    /// [`DistributedGpuCronos::try_run`] or
    /// [`DistributedGpuCronos::run_resilient`] to handle link loss.
    pub fn run(&self, queues: &mut [SynergyQueue]) -> DistributedRunReport {
        self.try_run(queues)
            .unwrap_or_else(|e| panic!("{e} (use try_run or run_resilient to handle this)"))
    }

    /// Fallible [`DistributedGpuCronos::run`].
    pub fn try_run(
        &self,
        queues: &mut [SynergyQueue],
    ) -> Result<DistributedRunReport, SubmitError> {
        assert!(!queues.is_empty(), "need at least one device queue");
        let n = queues.len();
        assert!(
            n <= self.max_devices(),
            "{n} devices oversubscribe nx = {}",
            self.grid.nx
        );
        let decomp = Decomposition::slabs(&self.grid, n);
        let plane_bytes = Decomposition::plane_bytes(&self.grid);
        let periodic = self.boundary == BoundaryKind::Periodic;

        // Per-device kernel sets: the four substep kernels for the slab,
        // plus halo pack/unpack sized by the device's remote sends.
        let mut sub_kernels = Vec::with_capacity(n);
        let mut halo = Vec::with_capacity(n);
        let mut send_bytes = Vec::with_capacity(n);
        for i in 0..n {
            let lg = decomp.slab_grid(&self.grid, i);
            sub_kernels.push(substep_kernels(&lg));
            // Remote neighbours: in a ring of one, none; otherwise the
            // interior cuts always, the wrap only when periodic.
            let remote_low = n > 1 && (i > 0 || periodic);
            let remote_high = n > 1 && (i + 1 < n || periodic);
            let sends = usize::from(remote_low) + usize::from(remote_high);
            halo.push(if sends > 0 {
                Some(halo_kernels(&lg, sends))
            } else {
                None
            });
            send_bytes.push(sends as u64 * plane_bytes);
        }

        let t0: Vec<f64> = queues.iter().map(|q| q.total_time_s()).collect();
        let e0: Vec<f64> = queues.iter().map(|q| q.total_energy_j()).collect();
        let mut exchange_time_s = 0.0;
        let mut exchange_energy_j = 0.0;
        let mut barrier_wait_s = 0.0;
        let mut halo_bytes = 0u64;

        // Lockstep barrier: pad every laggard up to the slowest device's
        // cumulative run time with priced idle waits.
        let barrier = |queues: &mut [SynergyQueue],
                       exchange_time_s: &mut f64,
                       exchange_energy_j: &mut f64,
                       barrier_wait_s: &mut f64| {
            if queues.len() < 2 {
                return;
            }
            let now: Vec<f64> = queues
                .iter()
                .zip(&t0)
                .map(|(q, t)| q.total_time_s() - t)
                .collect();
            let t_max = now.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            for (q, t) in queues.iter_mut().zip(&now) {
                let wait = t_max - t;
                if wait > 0.0 {
                    let e_before = q.total_energy_j();
                    q.idle_wait(wait);
                    *exchange_time_s += wait;
                    *exchange_energy_j += q.total_energy_j() - e_before;
                    *barrier_wait_s += wait;
                }
            }
        };

        for _step in 0..self.steps {
            for _substep in 0..N_SUBSTEPS {
                // computeChanges + CFL reduction per device, then the
                // all-reduce barrier.
                for (q, ks) in queues.iter_mut().zip(&sub_kernels) {
                    q.try_submit(&ks[0]).map(drop)?;
                    q.try_submit(&ks[1]).map(drop)?;
                }
                barrier(
                    queues,
                    &mut exchange_time_s,
                    &mut exchange_energy_j,
                    &mut barrier_wait_s,
                );
                // integrateTime, then the halo exchange on devices with
                // remote cuts, then the local boundary kernel.
                for i in 0..n {
                    let q = &mut queues[i];
                    q.try_submit(&sub_kernels[i][2]).map(drop)?;
                    if let Some((pack, unpack)) = &halo[i] {
                        let te0 = q.total_time_s();
                        let ee0 = q.total_energy_j();
                        q.try_submit(pack).map(drop)?;
                        q.try_submit_transfer(send_bytes[i])?;
                        q.try_submit(unpack).map(drop)?;
                        exchange_time_s += q.total_time_s() - te0;
                        exchange_energy_j += q.total_energy_j() - ee0;
                        halo_bytes += send_bytes[i];
                    }
                    q.try_submit(&sub_kernels[i][3]).map(drop)?;
                }
            }
        }
        // End-of-run barrier: the job finishes when the slowest device
        // does; the others burn idle power until then.
        barrier(
            queues,
            &mut exchange_time_s,
            &mut exchange_energy_j,
            &mut barrier_wait_s,
        );

        let time_s = queues
            .iter()
            .zip(&t0)
            .map(|(q, t)| q.total_time_s() - t)
            .fold(f64::NEG_INFINITY, f64::max);
        let energy_j = queues
            .iter()
            .zip(&e0)
            .map(|(q, e)| q.total_energy_j() - e)
            .sum();
        Ok(DistributedRunReport {
            total: Measurement { time_s, energy_j },
            exchange: Measurement {
                time_s: exchange_time_s,
                energy_j: exchange_energy_j,
            },
            barrier_wait_s,
            halo_bytes,
            devices_used: n,
            link_fallbacks: 0,
        })
    }

    /// Runs the decomposed loop, degrading to the single-device stream on
    /// queue 0 if a link is lost mid-run: the partial distributed work is
    /// kept on the books (it was really spent), the whole job re-runs
    /// monolithically, and the fallback is audited in the report — never a
    /// panic, never a silently wrong measurement.
    ///
    /// # Panics
    /// Panics only if the single-device fallback itself fails permanently.
    pub fn run_resilient(&self, queues: &mut [SynergyQueue]) -> DistributedRunReport {
        let t0: Vec<f64> = queues.iter().map(|q| q.total_time_s()).collect();
        let e0: Vec<f64> = queues.iter().map(|q| q.total_energy_j()).collect();
        match self.try_run(queues) {
            Ok(report) => report,
            Err(_lost) => {
                // Degrade: the remaining devices idle while queue 0 redoes
                // the whole job monolithically. The fallback is audited on
                // the absorbing queue's degradation counters.
                queues[0].note_link_fallback();
                let mono = crate::sim::GpuCronos::new(self.grid, self.steps);
                mono.run(&mut queues[0]);
                let t_max = queues
                    .iter()
                    .zip(&t0)
                    .map(|(q, t)| q.total_time_s() - t)
                    .fold(f64::NEG_INFINITY, f64::max);
                for (q, t) in queues.iter_mut().zip(&t0) {
                    let wait = t_max - (q.total_time_s() - t);
                    if wait > 0.0 {
                        q.idle_wait(wait);
                    }
                }
                let energy_j = queues
                    .iter()
                    .zip(&e0)
                    .map(|(q, e)| q.total_energy_j() - e)
                    .sum();
                DistributedRunReport {
                    total: Measurement {
                        time_s: t_max,
                        energy_j,
                    },
                    exchange: Measurement {
                        time_s: 0.0,
                        energy_j: 0.0,
                    },
                    barrier_wait_s: 0.0,
                    halo_bytes: 0,
                    devices_used: 1,
                    link_fallbacks: 1,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::GAMMA;
    use crate::problems;
    use gpu_sim::{Device, DeviceSpec};

    fn assert_states_bitwise(a: &State, b: &State) {
        assert_eq!(a.grid.nx, b.grid.nx);
        assert_eq!(a.cells.len(), b.cells.len());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            for c in 0..NCOMP {
                assert_eq!(ca[c].to_bits(), cb[c].to_bits());
            }
        }
    }

    #[test]
    fn slab_widths_sum_to_nx_and_respect_nghost() {
        let g = Grid::cubic(17, 4, 4);
        for n in 1..=Decomposition::max_slabs(&g) {
            let d = Decomposition::slabs(&g, n);
            let total: usize = (0..d.num_slabs()).map(|i| d.width(i)).sum();
            assert_eq!(total, g.nx);
            for i in 0..d.num_slabs() {
                assert!(d.width(i) >= NGHOST);
            }
            // Starts are the prefix sums of the widths.
            for i in 1..d.num_slabs() {
                assert_eq!(d.start(i), d.start(i - 1) + d.width(i - 1));
            }
        }
    }

    #[test]
    #[should_panic(expected = "thinner than NGHOST")]
    fn oversubscription_is_rejected() {
        let g = Grid::cubic(8, 4, 4);
        let _ = Decomposition::slabs(&g, 5);
    }

    #[test]
    fn decomposed_periodic_step_is_bit_identical() {
        let g = Grid::cubic(12, 6, 6);
        for n in [1, 2, 3, 4] {
            let mut mono = Simulation::new(problems::orszag_tang(g), GAMMA, 0.4);
            let mut dist = DistributedSimulation::new(problems::orszag_tang(g), GAMMA, 0.4, n);
            assert_eq!(dist.dt.to_bits(), mono.dt.to_bits());
            mono.run_steps(4);
            dist.run_steps(4);
            assert_eq!(dist.dt.to_bits(), mono.dt.to_bits(), "n = {n}");
            assert_eq!(dist.time.to_bits(), mono.time.to_bits());
            assert_eq!(dist.step_count, mono.step_count);
            assert_states_bitwise(&dist.gather(), &mono.state);
        }
    }

    #[test]
    fn decomposed_outflow_step_is_bit_identical() {
        let g = Grid::cubic(14, 6, 6);
        for n in [2, 3, 5] {
            let mut mono = Simulation::new(problems::mhd_blast(g), GAMMA, 0.4);
            let mut dist = DistributedSimulation::new(problems::mhd_blast(g), GAMMA, 0.4, n);
            mono.run_steps(4);
            dist.run_steps(4);
            assert_eq!(dist.dt.to_bits(), mono.dt.to_bits(), "n = {n}");
            assert_states_bitwise(&dist.gather(), &mono.state);
        }
    }

    #[test]
    fn decomposed_reflecting_step_is_bit_identical() {
        let g = Grid::cubic(12, 6, 6);
        let mut problem = problems::mhd_blast(g);
        problem.boundary = BoundaryKind::Reflecting;
        let mut mono = Simulation::new(problem.clone(), GAMMA, 0.4);
        let mut dist = DistributedSimulation::new(problem, GAMMA, 0.4, 3);
        mono.run_steps(3);
        dist.run_steps(3);
        assert_states_bitwise(&dist.gather(), &mono.state);
    }

    #[test]
    fn uneven_slab_split_stays_bit_identical() {
        // 13 over 3 slabs: widths 5, 4, 4.
        let g = Grid::cubic(13, 4, 4);
        let mut mono = Simulation::new(problems::orszag_tang(g), GAMMA, 0.3);
        let mut dist = DistributedSimulation::new(problems::orszag_tang(g), GAMMA, 0.3, 3);
        mono.run_steps(3);
        dist.run_steps(3);
        assert_states_bitwise(&dist.gather(), &mono.state);
    }

    #[test]
    fn halo_byte_accounting_matches_geometry() {
        let g = Grid::cubic(12, 6, 6);
        let plane = Decomposition::plane_bytes(&g);
        assert_eq!(plane as usize, NGHOST * g.sy() * g.sz() * NCOMP * 8);

        // One periodic slab: the wrap is local, nothing crosses a link.
        let mut solo = DistributedSimulation::new(problems::orszag_tang(g), GAMMA, 0.4, 1);
        solo.step();
        assert_eq!(solo.halo_bytes_exchanged, 0);

        // Three periodic slabs: 3 cuts × 2 directions, per substep.
        let mut trio = DistributedSimulation::new(problems::orszag_tang(g), GAMMA, 0.4, 3);
        trio.step();
        assert_eq!(trio.halo_bytes_exchanged, N_SUBSTEPS as u64 * 3 * 2 * plane);

        // Outflow drops the wrap cut.
        let mut blast = DistributedSimulation::new(problems::mhd_blast(g), GAMMA, 0.4, 3);
        blast.step();
        assert_eq!(
            blast.halo_bytes_exchanged,
            N_SUBSTEPS as u64 * 2 * 2 * plane
        );
    }

    #[test]
    fn single_device_gpu_run_matches_gpu_cronos_bitwise() {
        let g = Grid::cubic(20, 8, 8);
        let mono = crate::sim::GpuCronos::new(g, 4);
        let mut q_mono = SynergyQueue::nvidia(Device::new(DeviceSpec::v100()));
        let m_mono = mono.run(&mut q_mono);

        let dist = DistributedGpuCronos::new(g, 4);
        let mut qs = vec![SynergyQueue::nvidia(Device::new(DeviceSpec::v100()))];
        let report = dist.run(&mut qs);
        assert_eq!(report.total.time_s.to_bits(), m_mono.time_s.to_bits());
        assert_eq!(report.total.energy_j.to_bits(), m_mono.energy_j.to_bits());
        assert_eq!(qs[0].submission_count(), q_mono.submission_count());
        assert_eq!(report.halo_bytes, 0);
        assert_eq!(report.exchange.energy_j, 0.0);
        assert_eq!(report.barrier_wait_s, 0.0);
    }

    #[test]
    fn multi_device_run_prices_exchange_and_shrinks_makespan() {
        let g = Grid::cubic(64, 32, 32);
        let dist = DistributedGpuCronos::new(g, 2);
        let mut q1 = vec![SynergyQueue::nvidia(Device::new(DeviceSpec::v100()))];
        let r1 = dist.run(&mut q1);
        let mut q4: Vec<_> = (0..4)
            .map(|_| SynergyQueue::nvidia(Device::new(DeviceSpec::v100())))
            .collect();
        let r4 = dist.run(&mut q4);
        assert!(
            r4.total.time_s < r1.total.time_s,
            "4 devices must be faster"
        );
        assert!(r4.halo_bytes > 0);
        assert!(r4.exchange.energy_j > 0.0);
        assert_eq!(
            r4.halo_bytes,
            dist.steps * N_SUBSTEPS as u64 * 4 * 2 * Decomposition::plane_bytes(&g)
        );
    }

    #[test]
    fn halo_energy_share_grows_as_subdomains_shrink() {
        let g = Grid::cubic(48, 16, 16);
        let dist = DistributedGpuCronos::new(g, 2);
        let mut prev_share = -1.0;
        for n in [1usize, 2, 4, 8] {
            let mut qs: Vec<_> = (0..n)
                .map(|_| SynergyQueue::nvidia(Device::new(DeviceSpec::v100())))
                .collect();
            let r = dist.run(&mut qs);
            let share = r.exchange.energy_j / r.total.energy_j;
            assert!(
                share > prev_share,
                "halo share must grow with device count: {share} at n = {n}"
            );
            prev_share = share;
        }
    }
}
