//! The `computeChanges` stencil.
//!
//! Second-order finite-volume update: per cell, minmod-limited linear
//! reconstruction to each face and Rusanov interface fluxes, accumulated as
//! `dU/dt = −ΣΔF/Δx`. The reconstruction needs the two neighbours on each
//! side in every direction, so each cell reads 4 cells per dimension plus
//! itself — the paper's **13-point stencil** (§3.1).
//!
//! Alongside the change buffer, the stencil produces the per-cell CFL rate
//! `max_d (|u_d| + c_f,d) / Δx_d` that the subsequent max-reduction turns
//! into the next time step — exactly the `cflBuf` of Algorithm 1.
//!
//! Cells are processed in parallel with rayon. Each cell evaluates both of
//! its faces per direction; a face shared by two cells is computed twice
//! from identical inputs, so the scheme stays exactly conservative
//! (telescoping flux sums) while remaining embarrassingly parallel — the
//! same trade GPU stencil codes make.

use rayon::prelude::*;

use crate::flux::{max_signal_speed, rusanov_flux};
use crate::grid::NGHOST;
use crate::state::{Cons, State, NCOMP};

/// Output of one `computeChanges` sweep: per-interior-cell time derivative
/// and CFL rate, in interior (x-fastest) order.
#[derive(Debug, Clone, PartialEq)]
pub struct Changes {
    /// `dU/dt` per interior cell.
    pub dudt: Vec<Cons>,
    /// CFL rate (1/s) per interior cell.
    pub cfl: Vec<f64>,
}

#[inline]
fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

/// Limited slope of every component at a cell given its two neighbours.
#[inline]
fn slopes(um: &Cons, u0: &Cons, up: &Cons) -> Cons {
    let mut s: Cons = [0.0; NCOMP];
    for c in 0..NCOMP {
        s[c] = minmod(u0[c] - um[c], up[c] - u0[c]);
    }
    s
}

/// Reconstructed face states `(left-of-face, right-of-face)` for the face
/// between `u0` and `up`, using the 4-cell neighbourhood `(um, u0, up, upp)`.
#[inline]
fn face_states(um: &Cons, u0: &Cons, up: &Cons, upp: &Cons) -> (Cons, Cons) {
    let s0 = slopes(um, u0, up);
    let s1 = slopes(u0, up, upp);
    let mut l: Cons = [0.0; NCOMP];
    let mut r: Cons = [0.0; NCOMP];
    for c in 0..NCOMP {
        l[c] = u0[c] + 0.5 * s0[c];
        r[c] = up[c] - 0.5 * s1[c];
    }
    (l, r)
}

/// Runs one `computeChanges` sweep over the interior. Ghost cells must have
/// been filled (two layers) by a boundary pass first.
pub fn compute_changes(state: &State, gamma: f64) -> Changes {
    let g = state.grid;
    let (nx, ny) = (g.nx, g.ny);
    let inv_d = [1.0 / g.dx(), 1.0 / g.dy(), 1.0 / g.dz()];
    // Storage strides per direction (x fastest).
    let strides = [1usize, g.sx(), g.sx() * g.sy()];
    let cells = &state.cells;

    let n_int = g.n_cells();
    let results: Vec<(Cons, f64)> = (0..n_int)
        .into_par_iter()
        .map(|flat| {
            let i = flat % nx;
            let j = (flat / nx) % ny;
            let k = flat / (nx * ny);
            let c0 = g.idx(i + NGHOST, j + NGHOST, k + NGHOST);

            let mut dudt: Cons = [0.0; NCOMP];
            let mut cfl_rate = 0.0f64;
            let u0 = &cells[c0];

            for dir in 0..3 {
                let st = strides[dir];
                let umm = &cells[c0 - 2 * st];
                let um = &cells[c0 - st];
                let up = &cells[c0 + st];
                let upp = &cells[c0 + 2 * st];

                // Face i+1/2: reconstruct from (um, u0, up, upp).
                let (lp, rp) = face_states(um, u0, up, upp);
                let f_plus = rusanov_flux(&lp, &rp, gamma, dir);
                // Face i−1/2: reconstruct from (umm, um, u0, up).
                let (lm, rm) = face_states(umm, um, u0, up);
                let f_minus = rusanov_flux(&lm, &rm, gamma, dir);

                for c in 0..NCOMP {
                    dudt[c] -= (f_plus[c] - f_minus[c]) * inv_d[dir];
                }
                cfl_rate = cfl_rate.max(max_signal_speed(u0, gamma, dir) * inv_d[dir]);
            }
            (dudt, cfl_rate)
        })
        .collect();

    let mut dudt = Vec::with_capacity(n_int);
    let mut cfl = Vec::with_capacity(n_int);
    for (d, c) in results {
        dudt.push(d);
        cfl.push(c);
    }
    Changes { dudt, cfl }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{apply_boundary, BoundaryKind};
    use crate::eos::{cons_from_primitive, GAMMA};
    use crate::grid::Grid;
    use crate::state::comp;

    #[test]
    fn minmod_properties() {
        assert_eq!(minmod(1.0, 2.0), 1.0);
        assert_eq!(minmod(2.0, 1.0), 1.0);
        assert_eq!(minmod(-1.0, -3.0), -1.0);
        assert_eq!(minmod(1.0, -1.0), 0.0);
        assert_eq!(minmod(0.0, 5.0), 0.0);
    }

    #[test]
    fn uniform_state_has_zero_changes() {
        let g = Grid::cubic(6, 6, 6);
        let mut s = State::from_fn(g, |_, _, _| {
            cons_from_primitive(1.0, 0.3, -0.2, 0.1, 1.0, 0.2, 0.1, -0.3, GAMMA)
        });
        apply_boundary(&mut s, BoundaryKind::Periodic);
        let ch = compute_changes(&s, GAMMA);
        for d in &ch.dudt {
            for (c, v) in d.iter().enumerate() {
                assert!(
                    v.abs() < 1e-12,
                    "uniform flow must be an equilibrium, got {v} (component {c})"
                );
            }
        }
    }

    #[test]
    fn cfl_rate_matches_signal_over_dx() {
        let g = Grid::cubic(4, 4, 4);
        let mut s = State::from_fn(g, |_, _, _| {
            cons_from_primitive(1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, GAMMA)
        });
        apply_boundary(&mut s, BoundaryKind::Periodic);
        let ch = compute_changes(&s, GAMMA);
        let expect = GAMMA.sqrt() / g.dx();
        for r in &ch.cfl {
            assert!((r - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn changes_sum_to_zero_with_periodic_boundaries() {
        // Conservation: the flux-difference form telescopes, so the sum of
        // dU/dt over the domain vanishes for every component.
        let g = Grid::cubic(8, 4, 4);
        let mut s = State::from_fn(g, |x, y, z| {
            let rho = 1.0 + 0.3 * (2.0 * std::f64::consts::PI * x).sin();
            cons_from_primitive(
                rho,
                0.2 * (2.0 * std::f64::consts::PI * y).cos(),
                0.1,
                -0.05 * (2.0 * std::f64::consts::PI * z).sin(),
                1.0 + 0.1 * x,
                0.1,
                0.2,
                0.05,
                GAMMA,
            )
        });
        apply_boundary(&mut s, BoundaryKind::Periodic);
        let ch = compute_changes(&s, GAMMA);
        for c in 0..NCOMP {
            let total: f64 = ch.dudt.iter().map(|d| d[c]).sum();
            let scale: f64 = ch.dudt.iter().map(|d| d[c].abs()).sum::<f64>().max(1.0);
            assert!(
                (total / scale).abs() < 1e-12,
                "component {c} not conservative: {total}"
            );
        }
    }

    #[test]
    fn density_gradient_drives_mass_toward_low_side() {
        // A pressure-balanced density step: dissipation should move mass
        // from the dense half toward the light half.
        let g = Grid::cubic(8, 4, 4);
        let mut s = State::from_fn(g, |x, _, _| {
            let rho = if x < 0.5 { 2.0 } else { 1.0 };
            cons_from_primitive(rho, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, GAMMA)
        });
        apply_boundary(&mut s, BoundaryKind::Outflow);
        let ch = compute_changes(&s, GAMMA);
        // The cell just right of the step must gain mass.
        let idx_right = 4; // first light cell on the x-axis row (j=k=0)
        assert!(ch.dudt[idx_right][comp::RHO] > 0.0);
    }

    #[test]
    fn deterministic_under_parallelism() {
        let g = Grid::cubic(10, 6, 6);
        let mut s = State::from_fn(g, |x, y, z| {
            cons_from_primitive(
                1.0 + 0.2 * (x * 7.0).sin() * (y * 3.0).cos(),
                0.1 * z,
                -0.2 * x,
                0.05,
                1.0 + 0.05 * y,
                0.1 * (z * 2.0).sin(),
                0.2,
                0.0,
                GAMMA,
            )
        });
        apply_boundary(&mut s, BoundaryKind::Periodic);
        let a = compute_changes(&s, GAMMA);
        let b = compute_changes(&s, GAMMA);
        assert_eq!(a, b, "parallel sweep must be bit-deterministic");
    }
}
