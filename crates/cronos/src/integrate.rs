//! SSP Runge–Kutta time integration (the `integrateTime` of Algorithm 1).
//!
//! The paper's main loop runs three substeps per timestep; that is the
//! classic third-order strong-stability-preserving Runge–Kutta scheme
//! (Shu–Osher):
//!
//! ```text
//! substep 0:  u¹   = uⁿ + Δt·L(uⁿ)
//! substep 1:  u²   = ¾uⁿ + ¼(u¹ + Δt·L(u¹))
//! substep 2:  uⁿ⁺¹ = ⅓uⁿ + ⅔(u² + Δt·L(u²))
//! ```
//!
//! Each substep is a per-cell parallel update (rayon), which is exactly the
//! "parallelized for every cell in the grid" kernel of the paper.

use rayon::prelude::*;

use crate::grid::NGHOST;
use crate::state::{State, NCOMP};
use crate::stencil::Changes;

/// Number of SSP-RK substeps per timestep (the paper's `for substep ← 0 to 2`).
pub const N_SUBSTEPS: usize = 3;

/// Applies one SSP-RK3 substep in place.
///
/// `u_old` is the state at the *start of the timestep* (uⁿ); `state` holds
/// the current stage value and is advanced to the next stage. `changes` is
/// the stencil output evaluated on `state`.
///
/// # Panics
/// Panics if `substep ≥ 3`, if the change buffer size mismatches the grid,
/// or if the two states have different grids.
pub fn integrate_substep(
    state: &mut State,
    u_old: &State,
    changes: &Changes,
    dt: f64,
    substep: usize,
) {
    assert!(substep < N_SUBSTEPS, "substep out of range");
    assert_eq!(state.grid, u_old.grid, "grid mismatch");
    assert_eq!(
        changes.dudt.len(),
        state.grid.n_cells(),
        "change buffer size mismatch"
    );
    assert!(dt > 0.0 && dt.is_finite(), "invalid timestep");

    // Convex coefficients: u_next = a·uⁿ + b·(u_stage + dt·L(u_stage)).
    let (a, b) = match substep {
        0 => (0.0, 1.0),
        1 => (0.75, 0.25),
        _ => (1.0 / 3.0, 2.0 / 3.0),
    };

    let g = state.grid;
    let (nx, ny) = (g.nx, g.ny);
    let sx = g.sx();
    let sxy = g.sx() * g.sy();
    let old_cells = &u_old.cells;
    let dudt = &changes.dudt;

    state
        .cells
        .par_iter_mut()
        .enumerate()
        .for_each(|(storage_idx, cell)| {
            // Map the storage index back to interior coordinates; skip ghosts.
            let i = storage_idx % sx;
            let j = (storage_idx / sx) % g.sy();
            let k = storage_idx / sxy;
            if i < NGHOST
                || i >= NGHOST + nx
                || j < NGHOST
                || j >= NGHOST + ny
                || k < NGHOST
                || k >= NGHOST + g.nz
            {
                return;
            }
            let int_flat = ((k - NGHOST) * ny + (j - NGHOST)) * nx + (i - NGHOST);
            let d = &dudt[int_flat];
            let old = &old_cells[storage_idx];
            for c in 0..NCOMP {
                let stage = cell[c] + dt * d[c];
                cell[c] = a * old[c] + b * stage;
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{apply_boundary, BoundaryKind};
    use crate::eos::{cons_from_primitive, GAMMA};
    use crate::grid::Grid;
    use crate::state::{comp, Cons};
    use crate::stencil::compute_changes;

    fn zero_changes(g: Grid) -> Changes {
        Changes {
            dudt: vec![[0.0; NCOMP]; g.n_cells()],
            cfl: vec![1.0; g.n_cells()],
        }
    }

    #[test]
    fn zero_rhs_leaves_state_unchanged() {
        let g = Grid::cubic(4, 4, 4);
        let mut s = State::quiescent(g);
        let u0 = s.clone();
        let ch = zero_changes(g);
        for sub in 0..N_SUBSTEPS {
            integrate_substep(&mut s, &u0, &ch, 0.1, sub);
        }
        for (a, b) in s.cells.iter().zip(&u0.cells) {
            for c in 0..NCOMP {
                assert!((a[c] - b[c]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn substep0_is_forward_euler() {
        let g = Grid::cubic(2, 2, 2);
        let mut s = State::quiescent(g);
        let u0 = s.clone();
        let mut ch = zero_changes(g);
        for d in &mut ch.dudt {
            d[comp::RHO] = 2.0;
        }
        integrate_substep(&mut s, &u0, &ch, 0.25, 0);
        for (i, j, k) in g.interior_coords() {
            assert!((s.interior(i, j, k)[comp::RHO] - 1.5).abs() < 1e-15);
        }
    }

    #[test]
    fn ghosts_are_not_integrated() {
        let g = Grid::cubic(3, 3, 3);
        let mut s = State::quiescent(g);
        let u0 = s.clone();
        let mut ch = zero_changes(g);
        for d in &mut ch.dudt {
            d[comp::RHO] = 1.0;
        }
        integrate_substep(&mut s, &u0, &ch, 1.0, 0);
        // Ghost corner keeps its quiescent value.
        assert_eq!(s.cells[g.idx(0, 0, 0)][comp::RHO], 1.0);
        assert_eq!(s.interior(0, 0, 0)[comp::RHO], 2.0);
    }

    #[test]
    fn rk3_exact_for_linear_ode() {
        // dU/dt = constant: all three substeps must land exactly on
        // uⁿ + Δt·c (SSP-RK3 is exact for constant RHS).
        let g = Grid::cubic(2, 2, 2);
        let mut s = State::quiescent(g);
        let u0 = s.clone();
        let mut ch = zero_changes(g);
        for d in &mut ch.dudt {
            d[comp::EN] = -0.5;
        }
        let dt = 0.2;
        for sub in 0..N_SUBSTEPS {
            integrate_substep(&mut s, &u0, &ch, dt, sub);
        }
        let expect = u0.interior(0, 0, 0)[comp::EN] + dt * (-0.5);
        assert!((s.interior(0, 0, 0)[comp::EN] - expect).abs() < 1e-14);
    }

    #[test]
    fn full_step_conserves_totals_with_periodic_bc() {
        let g = Grid::cubic(8, 4, 4);
        let mut s = State::from_fn(g, |x, y, _| {
            cons_from_primitive(
                1.0 + 0.2 * (2.0 * std::f64::consts::PI * x).sin(),
                0.1 * (2.0 * std::f64::consts::PI * y).cos(),
                0.0,
                0.0,
                1.0,
                0.1,
                0.0,
                0.0,
                GAMMA,
            )
        });
        apply_boundary(&mut s, BoundaryKind::Periodic);
        let mass0 = s.total(comp::RHO);
        let energy0 = s.total(comp::EN);

        let u0 = s.clone();
        let dt = 1e-3;
        for sub in 0..N_SUBSTEPS {
            let ch = compute_changes(&s, GAMMA);
            integrate_substep(&mut s, &u0, &ch, dt, sub);
            apply_boundary(&mut s, BoundaryKind::Periodic);
        }
        assert!((s.total(comp::RHO) - mass0).abs() < 1e-11);
        assert!((s.total(comp::EN) - energy0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "substep out of range")]
    fn substep_bound_checked() {
        let g = Grid::cubic(2, 2, 2);
        let mut s = State::quiescent(g);
        let u0 = s.clone();
        let ch = zero_changes(g);
        integrate_substep(&mut s, &u0, &ch, 0.1, 3);
    }

    #[test]
    fn second_substep_averages_toward_old_state() {
        let g = Grid::cubic(2, 2, 2);
        let mut s = State::quiescent(g);
        // Make the stage state differ from uⁿ.
        for (i, j, k) in g.interior_coords() {
            s.interior_mut(i, j, k)[comp::RHO] = 3.0;
        }
        let mut u0 = State::quiescent(g);
        for (i, j, k) in g.interior_coords() {
            u0.interior_mut(i, j, k)[comp::RHO] = 1.0;
        }
        let ch = zero_changes(g);
        integrate_substep(&mut s, &u0, &ch, 0.1, 1);
        // ¾·1 + ¼·3 = 1.5
        let v: Cons = *s.interior(0, 0, 0);
        assert!((v[comp::RHO] - 1.5).abs() < 1e-15);
    }
}
