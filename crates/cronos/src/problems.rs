//! Standard MHD test problems.
//!
//! The plasma-physics setups CRONOS-class codes validate against:
//!
//! * [`brio_wu`] — the canonical 1D MHD shock tube;
//! * [`orszag_tang`] — the 2D vortex that stresses nonlinear MHD coupling;
//! * [`mhd_blast`] — a 3D over-pressured sphere in a magnetized medium;
//! * [`sound_wave`] — a smooth small-amplitude acoustic wave (convergence
//!   and dispersion checks);
//! * [`uniform`] — quiescent magnetized gas (equilibrium preservation).

use std::f64::consts::PI;

use crate::boundary::BoundaryKind;
use crate::eos::{cons_from_primitive, GAMMA};
use crate::grid::Grid;
use crate::state::State;

/// A ready-to-run problem: initial state plus its boundary treatment.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Human-readable name.
    pub name: &'static str,
    /// Initial condition (interior filled; ghosts unfilled).
    pub state: State,
    /// Boundary condition the problem needs.
    pub boundary: BoundaryKind,
}

/// Brio–Wu shock tube along x: left state (ρ=1, p=1, By=1), right state
/// (ρ=0.125, p=0.1, By=−1), Bx=0.75 everywhere.
pub fn brio_wu(grid: Grid) -> Problem {
    let state = State::from_fn(grid, |x, _, _| {
        if x < 0.5 * grid.lx {
            cons_from_primitive(1.0, 0.0, 0.0, 0.0, 1.0, 0.75, 1.0, 0.0, GAMMA)
        } else {
            cons_from_primitive(0.125, 0.0, 0.0, 0.0, 0.1, 0.75, -1.0, 0.0, GAMMA)
        }
    });
    Problem {
        name: "brio-wu",
        state,
        boundary: BoundaryKind::Outflow,
    }
}

/// Orszag–Tang vortex in the x–y plane (uniform along z):
/// ρ = γ², p = γ, u = (−sin 2πy, sin 2πx, 0), B = (−sin 2πy, sin 4πx, 0).
pub fn orszag_tang(grid: Grid) -> Problem {
    let rho = GAMMA * GAMMA;
    let p = GAMMA;
    let state = State::from_fn(grid, |x, y, _| {
        let u = -(2.0 * PI * y / grid.ly).sin();
        let v = (2.0 * PI * x / grid.lx).sin();
        let bx = -(2.0 * PI * y / grid.ly).sin();
        let by = (4.0 * PI * x / grid.lx).sin();
        cons_from_primitive(rho, u, v, 0.0, p, bx, by, 0.0, GAMMA)
    });
    Problem {
        name: "orszag-tang",
        state,
        boundary: BoundaryKind::Periodic,
    }
}

/// 3D MHD blast: ambient (ρ=1, p=0.1) with a high-pressure sphere (p=10)
/// of radius `0.1·lx` at the domain centre, uniform diagonal field.
pub fn mhd_blast(grid: Grid) -> Problem {
    let r0 = 0.1 * grid.lx;
    let (cx, cy, cz) = (0.5 * grid.lx, 0.5 * grid.ly, 0.5 * grid.lz);
    let b0 = 1.0 / 2.0f64.sqrt();
    let state = State::from_fn(grid, |x, y, z| {
        let r2 = (x - cx).powi(2) + (y - cy).powi(2) + (z - cz).powi(2);
        let p = if r2 < r0 * r0 { 10.0 } else { 0.1 };
        cons_from_primitive(1.0, 0.0, 0.0, 0.0, p, b0, b0, 0.0, GAMMA)
    });
    Problem {
        name: "mhd-blast",
        state,
        boundary: BoundaryKind::Outflow,
    }
}

/// Smooth acoustic wave along x: density/pressure/velocity perturbed with
/// relative amplitude `amp` over a uniform background with unit sound speed
/// crossing time, no magnetic field.
pub fn sound_wave(grid: Grid, amp: f64) -> Problem {
    assert!(amp.abs() < 0.1, "amplitude must stay in the linear regime");
    let rho0 = 1.0;
    let p0 = 1.0 / GAMMA; // unit sound speed: a² = γ p / ρ = 1
    let a0 = 1.0;
    let state = State::from_fn(grid, |x, _, _| {
        let phase = (2.0 * PI * x / grid.lx).sin();
        let drho = amp * phase;
        // Linear acoustics: δu = a·δρ/ρ, δp = a²·δρ.
        cons_from_primitive(
            rho0 + drho,
            a0 * drho / rho0,
            0.0,
            0.0,
            p0 + a0 * a0 * drho,
            0.0,
            0.0,
            0.0,
            GAMMA,
        )
    });
    Problem {
        name: "sound-wave",
        state,
        boundary: BoundaryKind::Periodic,
    }
}

/// MHD rotor: a dense disc spinning inside a light ambient medium with a
/// uniform x-field — torsional Alfvén waves spin down the rotor.
/// Standard parameters (Balsara & Spicer): disc ρ=10, ω=2/r₀ inside
/// r₀=0.1·lx, ambient ρ=1, p=1 everywhere, Bx=5/√(4π).
pub fn mhd_rotor(grid: Grid) -> Problem {
    let r0 = 0.1 * grid.lx;
    let (cx, cy) = (0.5 * grid.lx, 0.5 * grid.ly);
    let omega = 2.0 / r0;
    let bx = 5.0 / (4.0 * PI).sqrt();
    let state = State::from_fn(grid, |x, y, _| {
        let r = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
        // Smooth taper between disc and ambient over one disc radius.
        let taper = ((2.0 * r0 - r) / r0).clamp(0.0, 1.0);
        let rho = 1.0 + 9.0 * taper;
        let (u, v) = if r < 2.0 * r0 && r > 1e-12 {
            let w = omega * taper * r0 / r.max(0.5 * r0 / 10.0);
            (-w * (y - cy), w * (x - cx))
        } else {
            (0.0, 0.0)
        };
        cons_from_primitive(rho, u, v, 0.0, 1.0, bx, 0.0, 0.0, GAMMA)
    });
    Problem {
        name: "mhd-rotor",
        state,
        boundary: BoundaryKind::Outflow,
    }
}

/// Kelvin–Helmholtz shear layer: two counter-streaming slabs with a small
/// transverse velocity seed; a weak parallel field delays the roll-up.
pub fn kelvin_helmholtz(grid: Grid, seed_amp: f64) -> Problem {
    assert!(
        seed_amp.abs() < 0.1,
        "seed amplitude must stay perturbative"
    );
    let state = State::from_fn(grid, |x, y, _| {
        let inner = (y / grid.ly - 0.25).abs() < 0.25; // middle band streams +x
        let (rho, u) = if inner { (2.0, 0.5) } else { (1.0, -0.5) };
        let v = seed_amp * (2.0 * PI * x / grid.lx).sin();
        cons_from_primitive(rho, u, v, 0.0, 2.5, 0.1, 0.0, 0.0, GAMMA)
    });
    Problem {
        name: "kelvin-helmholtz",
        state,
        boundary: BoundaryKind::Periodic,
    }
}

/// Quiescent magnetized gas — any solver must hold it exactly.
pub fn uniform(grid: Grid) -> Problem {
    let state = State::from_fn(grid, |_, _, _| {
        cons_from_primitive(1.0, 0.0, 0.0, 0.0, 1.0, 0.1, 0.2, 0.3, GAMMA)
    });
    Problem {
        name: "uniform",
        state,
        boundary: BoundaryKind::Periodic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::comp;

    #[test]
    fn all_problems_start_physical() {
        let g = Grid::cubic(8, 8, 8);
        for p in [
            brio_wu(g),
            orszag_tang(g),
            mhd_blast(g),
            sound_wave(g, 1e-3),
            mhd_rotor(g),
            kelvin_helmholtz(g, 0.01),
            uniform(g),
        ] {
            assert!(p.state.is_physical(GAMMA), "{} unphysical at t=0", p.name);
        }
    }

    #[test]
    fn rotor_spins_and_is_dense() {
        let g = Grid::cubic(32, 32, 4);
        let p = mhd_rotor(g);
        let center = p.state.interior(16, 16, 2);
        assert!(center[comp::RHO] > 5.0, "disc must be dense");
        // A cell off-centre inside the disc carries angular momentum.
        let off = p.state.interior(18, 16, 2);
        assert!(off[comp::MY].abs() > 0.1, "disc must rotate");
        let far = p.state.interior(1, 1, 2);
        assert!((far[comp::RHO] - 1.0).abs() < 1e-12);
        assert_eq!(far[comp::MX], 0.0);
    }

    #[test]
    fn kelvin_helmholtz_has_counter_streams() {
        let g = Grid::cubic(16, 16, 4);
        let p = kelvin_helmholtz(g, 0.01);
        let mid = p.state.interior(4, 6, 1); // y/ly = 0.406 → inner band
        let outer = p.state.interior(4, 14, 1);
        assert!(mid[comp::MX] > 0.0);
        assert!(outer[comp::MX] < 0.0);
    }

    #[test]
    fn kelvin_helmholtz_grows_transverse_motion() {
        // Fine enough that the fundamental mode's growth (k·Δv/2 ≈ π)
        // outruns the Rusanov diffusion's damping.
        let g = Grid::new(64, 64, 4, 1.0, 1.0, 0.0625);
        let mut sim = crate::sim::Simulation::new(kelvin_helmholtz(g, 0.01), GAMMA, 0.4);
        let ke_y = |s: &State| -> f64 {
            g.interior_coords()
                .map(|(i, j, k)| {
                    let u = s.interior(i, j, k);
                    u[comp::MY] * u[comp::MY] / u[comp::RHO]
                })
                .sum()
        };
        let before = ke_y(&sim.state);
        sim.run_until(0.8, 10_000);
        let after = ke_y(&sim.state);
        assert!(
            after > 2.0 * before,
            "shear instability must amplify transverse motion: {before} -> {after}"
        );
        assert!(sim.state.is_physical(GAMMA));
    }

    #[test]
    fn brio_wu_has_density_jump() {
        let g = Grid::cubic(16, 4, 4);
        let p = brio_wu(g);
        let left = p.state.interior(0, 0, 0)[comp::RHO];
        let right = p.state.interior(15, 0, 0)[comp::RHO];
        assert!((left - 1.0).abs() < 1e-12);
        assert!((right - 0.125).abs() < 1e-12);
    }

    #[test]
    fn orszag_tang_has_zero_mean_velocity() {
        let g = Grid::cubic(16, 16, 4);
        let p = orszag_tang(g);
        let mx = p.state.total(comp::MX);
        let my = p.state.total(comp::MY);
        assert!(mx.abs() < 1e-9, "sinusoidal momenta integrate to zero");
        assert!(my.abs() < 1e-9);
    }

    #[test]
    fn blast_center_is_hot() {
        let g = Grid::cubic(16, 16, 16);
        let p = mhd_blast(g);
        let center = p.state.interior(8, 8, 8);
        let corner = p.state.interior(0, 0, 0);
        assert!(crate::eos::pressure(center, GAMMA) > 50.0 * crate::eos::pressure(corner, GAMMA));
    }

    #[test]
    fn sound_wave_amplitude_bounded() {
        let g = Grid::cubic(32, 4, 4);
        let p = sound_wave(g, 0.01);
        for (i, j, k) in g.interior_coords() {
            let rho = p.state.interior(i, j, k)[comp::RHO];
            assert!((rho - 1.0).abs() <= 0.01 + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "linear regime")]
    fn sound_wave_rejects_large_amplitude() {
        let _ = sound_wave(Grid::cubic(8, 4, 4), 0.5);
    }
}
