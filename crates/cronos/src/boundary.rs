//! Ghost-cell boundary handling (the `applyBoundary` of Algorithm 1).
//!
//! Fills the two ghost layers on every face. The paper notes this kernel
//! "only touches the outermost surfaces of the entire grid in parallel,
//! rather than every cell" — its work scales with the surface area, which
//! is also how [`crate::kernelize`] sizes the corresponding GPU kernel.

use serde::{Deserialize, Serialize};

use crate::grid::NGHOST;
use crate::state::{comp, Cons, State};

/// Mirrors a cell across a wall normal to axis `axis` (0 = x, 1 = y,
/// 2 = z): the normal momentum and normal field flip sign.
fn reflect(mut c: Cons, axis: usize) -> Cons {
    c[comp::MX + axis] = -c[comp::MX + axis];
    c[comp::BX + axis] = -c[comp::BX + axis];
    c
}

/// Supported boundary conditions (applied to all six faces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundaryKind {
    /// Wrap-around: ghost cells copy the opposite interior edge.
    Periodic,
    /// Zero-gradient outflow: ghost cells copy the nearest interior cell.
    Outflow,
    /// Reflecting wall: ghost cells mirror the interior with the
    /// face-normal momentum and magnetic-field components negated.
    Reflecting,
}

/// Fills all ghost layers of `state` according to `kind`.
///
/// The sweep order is x, then y, then z; later sweeps read the ghosts the
/// earlier sweeps wrote, which fills edges and corners correctly. The
/// per-axis sweeps are exposed separately ([`sweep_x`], [`sweep_y`],
/// [`sweep_z`]) because the slab decomposition in [`crate::decomp`]
/// replaces the x sweep with a halo exchange on interior cuts while
/// running the y/z sweeps locally, unchanged.
pub fn apply_boundary(state: &mut State, kind: BoundaryKind) {
    sweep_x(state, kind);
    sweep_y(state, kind);
    sweep_z(state, kind);
}

/// The x-face sweep of [`apply_boundary`]: fills the two ghost columns on
/// each x side of every `(j, k)` storage row (ghost rows included) from
/// this state's own interior columns, per `kind`.
pub fn sweep_x(state: &mut State, kind: BoundaryKind) {
    let g = state.grid;
    let (sx, sy, sz) = (g.sx(), g.sy(), g.sz());
    for k in 0..sz {
        for j in 0..sy {
            for layer in 0..NGHOST {
                let (src_lo, src_hi) = match kind {
                    // Interior runs [NGHOST, NGHOST + nx).
                    BoundaryKind::Periodic => (g.nx + layer, NGHOST + (NGHOST - 1 - layer)),
                    BoundaryKind::Outflow => (NGHOST, NGHOST + g.nx - 1),
                    // Mirror: ghost layer L reflects interior layer L.
                    BoundaryKind::Reflecting => {
                        (2 * NGHOST - 1 - layer, NGHOST + g.nx - NGHOST + layer)
                    }
                };
                let lo = state.cells[g.idx(src_lo, j, k)];
                let hi = state.cells[g.idx(src_hi, j, k)];
                let (lo, hi) = if kind == BoundaryKind::Reflecting {
                    (reflect(lo, 0), reflect(hi, 0))
                } else {
                    (lo, hi)
                };
                state.cells[g.idx(layer, j, k)] = lo;
                state.cells[g.idx(sx - 1 - layer, j, k)] = hi;
            }
        }
    }
}

/// The y-face sweep of [`apply_boundary`] (covers every x column,
/// including the x ghosts the x phase just filled).
pub fn sweep_y(state: &mut State, kind: BoundaryKind) {
    let g = state.grid;
    let (sx, sy, sz) = (g.sx(), g.sy(), g.sz());
    for k in 0..sz {
        for i in 0..sx {
            for layer in 0..NGHOST {
                let (src_lo, src_hi) = match kind {
                    BoundaryKind::Periodic => (g.ny + layer, NGHOST + (NGHOST - 1 - layer)),
                    BoundaryKind::Outflow => (NGHOST, NGHOST + g.ny - 1),
                    BoundaryKind::Reflecting => {
                        (2 * NGHOST - 1 - layer, NGHOST + g.ny - NGHOST + layer)
                    }
                };
                let lo = state.cells[g.idx(i, src_lo, k)];
                let hi = state.cells[g.idx(i, src_hi, k)];
                let (lo, hi) = if kind == BoundaryKind::Reflecting {
                    (reflect(lo, 1), reflect(hi, 1))
                } else {
                    (lo, hi)
                };
                state.cells[g.idx(i, layer, k)] = lo;
                state.cells[g.idx(i, sy - 1 - layer, k)] = hi;
            }
        }
    }
}

/// The z-face sweep of [`apply_boundary`].
pub fn sweep_z(state: &mut State, kind: BoundaryKind) {
    let g = state.grid;
    let (sx, sy, sz) = (g.sx(), g.sy(), g.sz());
    for j in 0..sy {
        for i in 0..sx {
            for layer in 0..NGHOST {
                let (src_lo, src_hi) = match kind {
                    BoundaryKind::Periodic => (g.nz + layer, NGHOST + (NGHOST - 1 - layer)),
                    BoundaryKind::Outflow => (NGHOST, NGHOST + g.nz - 1),
                    BoundaryKind::Reflecting => {
                        (2 * NGHOST - 1 - layer, NGHOST + g.nz - NGHOST + layer)
                    }
                };
                let lo = state.cells[g.idx(i, j, src_lo)];
                let hi = state.cells[g.idx(i, j, src_hi)];
                let (lo, hi) = if kind == BoundaryKind::Reflecting {
                    (reflect(lo, 2), reflect(hi, 2))
                } else {
                    (lo, hi)
                };
                state.cells[g.idx(i, j, layer)] = lo;
                state.cells[g.idx(i, j, sz - 1 - layer)] = hi;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::state::comp;

    /// Interior cell (i,0,0) tagged with its x index for tracing copies.
    fn tagged_state(g: Grid) -> State {
        let mut s = State::quiescent(g);
        for (i, j, k) in g.interior_coords() {
            s.interior_mut(i, j, k)[comp::RHO] = (i + 10 * j + 100 * k) as f64 + 1.0;
        }
        s
    }

    #[test]
    fn periodic_wraps_x() {
        let g = Grid::cubic(4, 4, 4);
        let mut s = tagged_state(g);
        apply_boundary(&mut s, BoundaryKind::Periodic);
        // Ghost layer just left of the interior mirrors the rightmost cell.
        let ghost = s.cells[g.idx(NGHOST - 1, NGHOST, NGHOST)];
        let wrap = *s.interior(g.nx - 1, 0, 0);
        assert_eq!(ghost[comp::RHO], wrap[comp::RHO]);
        // Outer ghost layer mirrors the second-from-right cell.
        let ghost2 = s.cells[g.idx(0, NGHOST, NGHOST)];
        let wrap2 = *s.interior(g.nx - 2, 0, 0);
        assert_eq!(ghost2[comp::RHO], wrap2[comp::RHO]);
    }

    #[test]
    fn periodic_right_ghosts_wrap_to_left_interior() {
        let g = Grid::cubic(4, 4, 4);
        let mut s = tagged_state(g);
        apply_boundary(&mut s, BoundaryKind::Periodic);
        let ghost = s.cells[g.idx(g.sx() - NGHOST, NGHOST, NGHOST)];
        assert_eq!(ghost[comp::RHO], s.interior(0, 0, 0)[comp::RHO]);
    }

    #[test]
    fn outflow_extends_edge_values() {
        let g = Grid::cubic(4, 4, 4);
        let mut s = tagged_state(g);
        apply_boundary(&mut s, BoundaryKind::Outflow);
        let ghost = s.cells[g.idx(0, NGHOST, NGHOST)];
        assert_eq!(ghost[comp::RHO], s.interior(0, 0, 0)[comp::RHO]);
        let ghost_hi = s.cells[g.idx(g.sx() - 1, NGHOST, NGHOST)];
        assert_eq!(ghost_hi[comp::RHO], s.interior(g.nx - 1, 0, 0)[comp::RHO]);
    }

    #[test]
    fn corners_are_filled() {
        let g = Grid::cubic(4, 4, 4);
        let mut s = tagged_state(g);
        apply_boundary(&mut s, BoundaryKind::Periodic);
        // Corner ghost (0,0,0) must hold a copy of some interior value
        // (non-zero tag), proving the sweep cascade fills corners.
        assert!(s.cells[g.idx(0, 0, 0)][comp::RHO] >= 1.0);
    }

    #[test]
    fn interior_is_untouched() {
        let g = Grid::cubic(5, 3, 3);
        let mut s = tagged_state(g);
        let before: Vec<f64> = g
            .interior_coords()
            .map(|(i, j, k)| s.interior(i, j, k)[comp::RHO])
            .collect();
        apply_boundary(&mut s, BoundaryKind::Periodic);
        let after: Vec<f64> = g
            .interior_coords()
            .map(|(i, j, k)| s.interior(i, j, k)[comp::RHO])
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn reflecting_mirrors_and_flips_normal_components() {
        let g = Grid::cubic(4, 4, 4);
        let mut s = State::quiescent(g);
        for (i, j, k) in g.interior_coords() {
            let c = s.interior_mut(i, j, k);
            c[comp::MX] = 1.0 + i as f64;
            c[comp::BX] = 0.5;
            c[comp::MY] = 7.0;
        }
        apply_boundary(&mut s, BoundaryKind::Reflecting);
        // Ghost layer adjacent to the low-x wall mirrors interior cell 0
        // with flipped x-momentum and x-field.
        let ghost = s.cells[g.idx(NGHOST - 1, NGHOST, NGHOST)];
        let mirror = *s.interior(0, 0, 0);
        assert_eq!(ghost[comp::MX], -mirror[comp::MX]);
        assert_eq!(ghost[comp::BX], -mirror[comp::BX]);
        assert_eq!(ghost[comp::RHO], mirror[comp::RHO]);
        // Tangential momentum is preserved.
        assert_eq!(ghost[comp::MY], mirror[comp::MY]);
        // Outer ghost layer mirrors interior cell 1.
        let ghost2 = s.cells[g.idx(0, NGHOST, NGHOST)];
        let mirror2 = *s.interior(1, 0, 0);
        assert_eq!(ghost2[comp::MX], -mirror2[comp::MX]);
    }

    #[test]
    fn reflecting_wall_conserves_mass_in_simulation() {
        // A blast in a closed box: nothing leaves, mass is exactly conserved.
        let g = Grid::cubic(12, 12, 12);
        let mut problem = crate::problems::mhd_blast(g);
        problem.boundary = BoundaryKind::Reflecting;
        let mut sim = crate::sim::Simulation::new(problem, crate::eos::GAMMA, 0.4);
        let mass0 = sim.state.total(comp::RHO);
        sim.run_steps(10);
        let mass1 = sim.state.total(comp::RHO);
        assert!(
            ((mass1 - mass0) / mass0).abs() < 1e-11,
            "closed box must conserve mass: {mass0} -> {mass1}"
        );
        assert!(sim.state.is_physical(crate::eos::GAMMA));
    }

    #[test]
    fn periodic_uniform_stays_uniform() {
        let g = Grid::cubic(3, 3, 3);
        let mut s = State::quiescent(g);
        apply_boundary(&mut s, BoundaryKind::Periodic);
        for cell in &s.cells {
            assert_eq!(cell[comp::RHO], 1.0);
        }
    }
}
