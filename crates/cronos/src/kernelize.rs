//! GPU kernel profiles for the solver phases.
//!
//! The SYCL port of CRONOS submits four kernels per substep; this module
//! derives a [`KernelProfile`] for each from the grid geometry and the
//! discretization formulas, so the simulated GPU sees the same *shape* of
//! work the real device would:
//!
//! | kernel            | work items            | character                |
//! |-------------------|-----------------------|--------------------------|
//! | `compute_changes` | `nx·ny·nz`            | 13-pt stencil, memory-bound at stock clocks (≈5 issue-cycles/DRAM byte) |
//! | `reduce_cfl`      | `nx·ny·nz`            | streaming max-reduction  |
//! | `integrate_time`  | `nx·ny·nz`            | pure streaming update    |
//! | `apply_boundary`  | surface cells only    | tiny copy kernel         |
//!
//! Per-cell operation counts are derived by counting the arithmetic in
//! [`crate::stencil`]/[`crate::flux`] (reconstruction + 6 Rusanov faces ≈
//! 1.5 kflop) and the DRAM traffic from the array accesses with a 13-point
//! stencil's imperfect cache reuse (≈4 of the 13 neighbour reads miss, plus
//! the change/CFL writes). These constants make the stencil's arithmetic
//! intensity land where measured MHD stencils land on V100-class parts —
//! memory-bound at the default clock with a compute crossover near 500 MHz
//! — which is the behaviour the paper's Cronos characterization shows.

use gpu_sim::kernel::{KernelProfile, OpMix};

use crate::grid::{Grid, NGHOST};

/// Kernel name constants (used by per-kernel frequency policies).
pub mod names {
    /// The 13-point stencil kernel.
    pub const COMPUTE_CHANGES: &str = "cronos::compute_changes";
    /// The CFL max-reduction kernel.
    pub const REDUCE_CFL: &str = "cronos::reduce_cfl";
    /// The per-cell integration kernel.
    pub const INTEGRATE_TIME: &str = "cronos::integrate_time";
    /// The ghost-layer boundary kernel.
    pub const APPLY_BOUNDARY: &str = "cronos::apply_boundary";
    /// The halo pack kernel (stages outgoing x-face planes).
    pub const PACK_HALO: &str = "cronos::pack_halo";
    /// The halo exchange transfer (the link-transfer label, not a kernel).
    pub const EXCHANGE_HALO: &str = "cronos::exchange_halo";
    /// The halo unpack kernel (scatters received planes into ghosts).
    pub const UNPACK_HALO: &str = "cronos::unpack_halo";
}

/// Profile of the `computeChanges` stencil kernel for a grid.
pub fn compute_changes_kernel(grid: &Grid) -> KernelProfile {
    let mix = OpMix {
        // 6 faces × (2 physical fluxes + dissipation) + reconstruction.
        float_add: 760.0,
        float_mul: 700.0,
        float_div: 14.0, // 1/ρ per flux evaluation
        special: 26.0,   // sqrt in sound/fast speeds, 2 per face + CFL
        int_add: 40.0,   // index arithmetic
        int_mul: 12.0,
        // DRAM traffic: 8 comps × 8 B × ~4 effective cell reads (cache
        // captures the rest of the 13-point neighbourhood) + 64 B dU/dt
        // write + 8 B CFL write ≈ 328 B → 82 words.
        global_access: 82.0,
        local_access: 96.0, // stencil tiles staged through shared memory
        ..OpMix::default()
    };
    KernelProfile::new(names::COMPUTE_CHANGES, grid.n_cells() as u64, mix).with_ilp_efficiency(0.78)
}

/// Profile of the CFL max-reduction kernel.
pub fn reduce_cfl_kernel(grid: &Grid) -> KernelProfile {
    let mix = OpMix {
        float_add: 1.0, // max compare
        int_add: 2.0,
        global_access: 2.0, // one 8 B read per cell
        local_access: 4.0,  // tree reduction in shared memory
        ..OpMix::default()
    };
    KernelProfile::new(names::REDUCE_CFL, grid.n_cells() as u64, mix)
}

/// Profile of the `integrateTime` per-cell update kernel.
pub fn integrate_time_kernel(grid: &Grid) -> KernelProfile {
    let mix = OpMix {
        float_add: 16.0, // 8 comps × (axpy + convex blend)
        float_mul: 24.0,
        int_add: 10.0,
        // read state (64 B) + old state (64 B) + dU/dt (64 B) + write (64 B)
        global_access: 64.0,
        ..OpMix::default()
    };
    KernelProfile::new(names::INTEGRATE_TIME, grid.n_cells() as u64, mix).with_ilp_efficiency(0.85)
}

/// Profile of the boundary kernel (touches only the ghost surfaces).
pub fn apply_boundary_kernel(grid: &Grid) -> KernelProfile {
    let (nx, ny, nz) = (grid.nx as u64, grid.ny as u64, grid.nz as u64);
    let g = NGHOST as u64;
    let surface = 2 * g * (nx * ny + ny * nz + nx * nz);
    let mix = OpMix {
        int_add: 12.0, // index wrap arithmetic
        int_bw: 2.0,
        global_access: 32.0, // copy 64 B in + 64 B out
        ..OpMix::default()
    };
    KernelProfile::new(names::APPLY_BOUNDARY, surface.max(1), mix)
}

/// Cells in one directed x-halo message: `NGHOST` full `(j, k)` storage
/// planes (the decomposition exchanges ghost rows too — that is what keeps
/// it bit-identical to the monolithic sweep).
fn halo_cells(grid: &Grid, sends: usize) -> u64 {
    (sends * NGHOST * grid.sy() * grid.sz()).max(1) as u64
}

/// Profile of the halo *pack* kernel: gathers the outgoing x-face planes
/// into a contiguous send buffer. Pure streaming — one 64 B cell read from
/// the strided grid layout, one 64 B write to the dense buffer — so its
/// cost comes from the face area and the memory path, exactly how the
/// decomposition's exchange bytes are priced.
pub fn pack_halo_kernel(grid: &Grid, sends: usize) -> KernelProfile {
    let mix = OpMix {
        int_add: 8.0, // gather index arithmetic
        global_access: 16.0,
        ..OpMix::default()
    };
    KernelProfile::new(names::PACK_HALO, halo_cells(grid, sends), mix)
}

/// Profile of the halo *unpack* kernel: scatters received planes into the
/// ghost columns. Same streaming shape as [`pack_halo_kernel`].
pub fn unpack_halo_kernel(grid: &Grid, sends: usize) -> KernelProfile {
    let mix = OpMix {
        int_add: 8.0, // scatter index arithmetic
        global_access: 16.0,
        ..OpMix::default()
    };
    KernelProfile::new(names::UNPACK_HALO, halo_cells(grid, sends), mix)
}

/// The pack/unpack kernel pair for a slab that sends (and receives) on
/// `sends` remote cuts.
pub fn halo_kernels(grid: &Grid, sends: usize) -> (KernelProfile, KernelProfile) {
    (
        pack_halo_kernel(grid, sends),
        unpack_halo_kernel(grid, sends),
    )
}

/// The *source-level* (static-analysis) view of the four kernels.
///
/// A static analyzer counts load/store instructions in the source; it
/// cannot know that caches capture most of the 13-point neighbourhood or
/// that tiles are staged through shared memory. The stencil therefore
/// appears far more memory-heavy statically (13 cells × 8 components read
/// plus changes/CFL written, ≈ 226 words) than it is dynamically (≈ 82
/// DRAM words). This gap is precisely why the general-purpose model — which
/// consumes these static features — mispredicts the application (§4.1:
/// "the static code features have more weight on computing ability, which
/// leads to … lower prediction accuracy of memory-bound applications").
pub fn static_analysis_kernels(grid: &Grid) -> [KernelProfile; 4] {
    let mut ks = substep_kernels(grid);
    // Stencil: raw neighbourhood loads + writes, no cache, no shared mem.
    ks[0].mix.global_access = 226.0;
    ks[0].mix.local_access = 0.0;
    // Reduce: source reads one value and writes partials.
    ks[1].mix.global_access = 3.0;
    ks[1].mix.local_access = 0.0;
    // Integrate and boundary are streaming copies either way.
    ks[3].mix.local_access = 0.0;
    ks
}

/// The four kernels of one solver substep, in submission order.
pub fn substep_kernels(grid: &Grid) -> [KernelProfile; 4] {
    [
        compute_changes_kernel(grid),
        reduce_cfl_kernel(grid),
        integrate_time_kernel(grid),
        apply_boundary_kernel(grid),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_items_match_grid() {
        let g = Grid::cubic(160, 64, 64);
        assert_eq!(compute_changes_kernel(&g).work_items, 160 * 64 * 64);
        assert_eq!(integrate_time_kernel(&g).work_items, 160 * 64 * 64);
        let b = apply_boundary_kernel(&g);
        assert!(b.work_items < compute_changes_kernel(&g).work_items / 4);
    }

    #[test]
    fn stencil_is_memory_bound_at_default_clock() {
        let g = Grid::cubic(160, 64, 64);
        let k = compute_changes_kernel(&g);
        let spec = gpu_sim::DeviceSpec::v100();
        let dev = gpu_sim::Device::new(spec.clone());
        let (t, _) = dev.peek(&k, spec.default_core_mhz);
        assert!(
            t.mem_s > t.comp_s,
            "large-grid stencil must be memory-bound at the stock clock"
        );
    }

    #[test]
    fn stencil_becomes_compute_bound_at_low_clock() {
        let g = Grid::cubic(160, 64, 64);
        let k = compute_changes_kernel(&g);
        let spec = gpu_sim::DeviceSpec::v100();
        let dev = gpu_sim::Device::new(spec.clone());
        let (t, _) = dev.peek(&k, spec.min_core_mhz());
        assert!(t.comp_s > t.mem_s, "at 135 MHz compute must dominate");
    }

    #[test]
    fn integrate_kernel_is_streaming() {
        let g = Grid::cubic(160, 64, 64);
        let k = integrate_time_kernel(&g);
        // Arithmetic intensity well below 1 issue-cycle per byte.
        let cyc = k.mix.issue_cycles();
        let bytes = k.mix.global_bytes();
        assert!(cyc / bytes < 0.5, "integration must be bandwidth-limited");
    }

    #[test]
    fn boundary_work_scales_with_surface() {
        let small = apply_boundary_kernel(&Grid::cubic(10, 4, 4));
        let big = apply_boundary_kernel(&Grid::cubic(20, 8, 8));
        // Surface grows ×4 when linear dims double.
        assert_eq!(big.work_items, small.work_items * 4);
    }

    #[test]
    fn halo_kernels_scale_with_face_area_and_stream() {
        let g = Grid::cubic(64, 16, 16);
        let (pack, unpack) = halo_kernels(&g, 2);
        assert_eq!(pack.work_items, (2 * NGHOST * g.sy() * g.sz()) as u64);
        assert_eq!(pack.work_items, unpack.work_items);
        assert_eq!(halo_kernels(&g, 1).0.work_items * 2, pack.work_items);
        // Halo work is independent of the slab's x extent — it is a face
        // quantity.
        let thin = g.subgrid_x(4);
        assert_eq!(pack_halo_kernel(&thin, 2).work_items, pack.work_items);
        // Streaming: far below one issue-cycle per DRAM byte.
        let cyc = pack.mix.issue_cycles();
        let bytes = pack.mix.global_bytes();
        assert!(cyc / bytes < 0.5, "halo copies must be bandwidth-limited");
    }

    #[test]
    fn substep_order_is_algorithmic() {
        let ks = substep_kernels(&Grid::cubic(8, 8, 8));
        assert_eq!(ks[0].name, names::COMPUTE_CHANGES);
        assert_eq!(ks[1].name, names::REDUCE_CFL);
        assert_eq!(ks[2].name, names::INTEGRATE_TIME);
        assert_eq!(ks[3].name, names::APPLY_BOUNDARY);
    }
}
