//! Ideal-MHD physical fluxes and the Rusanov Riemann solver.
//!
//! The physical flux along direction `d` (with velocity `u_d` and field
//! `B_d` the components along `d`) is
//!
//! ```text
//! F(U) = [ ρ u_d,
//!          ρ u u_d − B B_d + p* ê_d,
//!          (E + p*) u_d − B_d (u·B),
//!          u_d B − u B_d ]            (B_d flux component is 0)
//! ```
//!
//! Interface fluxes use the Rusanov (local Lax–Friedrichs) approximation
//! `F = ½(F_L + F_R) − ½ s_max (U_R − U_L)` with `s_max` the largest fast
//! magnetosonic signal speed of the two states — robust, positive, and the
//! standard baseline scheme for finite-volume MHD.

use crate::eos::{fast_speed, total_pressure};
use crate::state::{comp, Cons, NCOMP};

/// Physical flux of state `u` along direction `dir` (0 = x, 1 = y, 2 = z).
pub fn physical_flux(u: &Cons, gamma: f64, dir: usize) -> Cons {
    debug_assert!(dir < 3);
    let rho = u[comp::RHO];
    let inv_rho = 1.0 / rho;
    let vel = [
        u[comp::MX] * inv_rho,
        u[comp::MY] * inv_rho,
        u[comp::MZ] * inv_rho,
    ];
    let b = [u[comp::BX], u[comp::BY], u[comp::BZ]];
    let vd = vel[dir];
    let bd = b[dir];
    let ptot = total_pressure(u, gamma);
    let udotb = vel[0] * b[0] + vel[1] * b[1] + vel[2] * b[2];

    let mut f: Cons = [0.0; NCOMP];
    f[comp::RHO] = rho * vd;
    for ax in 0..3 {
        f[comp::MX + ax] = u[comp::MX + ax] * vd - b[ax] * bd;
        // Induction: ∂B_ax/∂t + ∂_d (u_d B_ax − B_d u_ax) = 0.
        f[comp::BX + ax] = vd * b[ax] - vel[ax] * bd;
    }
    f[comp::MX + dir] += ptot;
    f[comp::EN] = (u[comp::EN] + ptot) * vd - bd * udotb;
    // Flux of B_d along d is identically zero (set again for clarity).
    f[comp::BX + dir] = 0.0;
    f
}

/// Largest signal speed of a state along `dir`: `|u_d| + c_fast`.
pub fn max_signal_speed(u: &Cons, gamma: f64, dir: usize) -> f64 {
    let vd = (u[comp::MX + dir] / u[comp::RHO]).abs();
    vd + fast_speed(u, gamma, dir)
}

/// Rusanov interface flux between a left and right state along `dir`.
pub fn rusanov_flux(left: &Cons, right: &Cons, gamma: f64, dir: usize) -> Cons {
    let fl = physical_flux(left, gamma, dir);
    let fr = physical_flux(right, gamma, dir);
    let s = max_signal_speed(left, gamma, dir).max(max_signal_speed(right, gamma, dir));
    let mut f: Cons = [0.0; NCOMP];
    for c in 0..NCOMP {
        f[c] = 0.5 * (fl[c] + fr[c]) - 0.5 * s * (right[c] - left[c]);
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::{cons_from_primitive, GAMMA};

    #[allow(clippy::too_many_arguments)]
    fn state(rho: f64, u: f64, v: f64, w: f64, p: f64, bx: f64, by: f64, bz: f64) -> Cons {
        cons_from_primitive(rho, u, v, w, p, bx, by, bz, GAMMA)
    }

    #[test]
    fn static_gas_flux_is_pure_pressure() {
        let u = state(1.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0);
        let f = physical_flux(&u, GAMMA, 0);
        assert_eq!(f[comp::RHO], 0.0);
        assert!((f[comp::MX] - 2.0).abs() < 1e-12);
        assert_eq!(f[comp::MY], 0.0);
        assert_eq!(f[comp::EN], 0.0);
    }

    #[test]
    fn advection_flux_carries_mass() {
        let u = state(2.0, 3.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0);
        let f = physical_flux(&u, GAMMA, 0);
        assert!((f[comp::RHO] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn flux_of_parallel_field_component_is_zero() {
        let u = state(1.0, 1.0, 2.0, 3.0, 1.0, 0.5, -0.3, 0.8);
        for dir in 0..3 {
            let f = physical_flux(&u, GAMMA, dir);
            assert_eq!(f[comp::BX + dir], 0.0, "B_d flux along d must vanish");
        }
    }

    #[test]
    fn rusanov_consistent_with_physical_flux() {
        // F(u, u) must equal the physical flux (consistency of the solver).
        let u = state(1.3, 0.4, -0.2, 0.1, 1.7, 0.3, 0.6, -0.4);
        for dir in 0..3 {
            let fr = rusanov_flux(&u, &u, GAMMA, dir);
            let fp = physical_flux(&u, GAMMA, dir);
            for c in 0..NCOMP {
                assert!((fr[c] - fp[c]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rusanov_adds_dissipation_proportional_to_jump() {
        let l = state(1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0);
        let r = state(2.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0);
        let f = rusanov_flux(&l, &r, GAMMA, 0);
        // Density flux = −½ s (ρ_R − ρ_L) < 0: dissipation pushes mass from
        // the dense side toward the light side.
        assert!(f[comp::RHO] < 0.0);
    }

    #[test]
    fn rusanov_is_rotationally_consistent() {
        // A state symmetric under x↔y must give symmetric fluxes.
        let u = state(1.0, 0.7, 0.7, 0.0, 1.0, 0.2, 0.2, 0.0);
        let fx = physical_flux(&u, GAMMA, 0);
        let fy = physical_flux(&u, GAMMA, 1);
        assert!((fx[comp::RHO] - fy[comp::RHO]).abs() < 1e-12);
        assert!((fx[comp::MX] - fy[comp::MY]).abs() < 1e-12);
        assert!((fx[comp::EN] - fy[comp::EN]).abs() < 1e-12);
    }

    #[test]
    fn transverse_field_advects_with_flow() {
        // u = (1,0,0), B = (0,1,0): the flux of By along x is u·By = 1.
        let u = state(1.0, 1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0);
        let f = physical_flux(&u, GAMMA, 0);
        assert!((f[comp::BY] - 1.0).abs() < 1e-12, "induction flux sign");
    }

    #[test]
    fn signal_speed_positive() {
        let u = state(1.0, -5.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0);
        assert!(max_signal_speed(&u, GAMMA, 0) > 5.0);
    }
}
