//! Ideal-gas equation of state and MHD wave speeds.

use crate::state::{comp, Cons};

/// Default adiabatic index (monatomic ideal gas).
pub const GAMMA: f64 = 5.0 / 3.0;

/// Gas pressure from conserved variables:
/// `p = (γ−1)(E − ρ|u|²/2 − |B|²/2)`.
pub fn pressure(u: &Cons, gamma: f64) -> f64 {
    let rho = u[comp::RHO];
    debug_assert!(rho > 0.0, "non-positive density");
    let kin = 0.5
        * (u[comp::MX] * u[comp::MX] + u[comp::MY] * u[comp::MY] + u[comp::MZ] * u[comp::MZ])
        / rho;
    let mag =
        0.5 * (u[comp::BX] * u[comp::BX] + u[comp::BY] * u[comp::BY] + u[comp::BZ] * u[comp::BZ]);
    (gamma - 1.0) * (u[comp::EN] - kin - mag)
}

/// Total (gas + magnetic) pressure `p* = p + |B|²/2`.
pub fn total_pressure(u: &Cons, gamma: f64) -> f64 {
    let mag =
        0.5 * (u[comp::BX] * u[comp::BX] + u[comp::BY] * u[comp::BY] + u[comp::BZ] * u[comp::BZ]);
    pressure(u, gamma) + mag
}

/// Total energy from primitive variables `(ρ, u, v, w, p, B)`.
#[allow(clippy::too_many_arguments)]
pub fn energy_from_primitive(
    rho: f64,
    u: f64,
    v: f64,
    w: f64,
    p: f64,
    bx: f64,
    by: f64,
    bz: f64,
    gamma: f64,
) -> f64 {
    p / (gamma - 1.0) + 0.5 * rho * (u * u + v * v + w * w) + 0.5 * (bx * bx + by * by + bz * bz)
}

/// Builds a conserved vector from primitives.
#[allow(clippy::too_many_arguments)]
pub fn cons_from_primitive(
    rho: f64,
    u: f64,
    v: f64,
    w: f64,
    p: f64,
    bx: f64,
    by: f64,
    bz: f64,
    gamma: f64,
) -> Cons {
    [
        rho,
        rho * u,
        rho * v,
        rho * w,
        energy_from_primitive(rho, u, v, w, p, bx, by, bz, gamma),
        bx,
        by,
        bz,
    ]
}

/// Adiabatic sound speed `a = √(γp/ρ)`. Pressure is floored at zero to keep
/// the speed real in marginally unphysical transients.
pub fn sound_speed(u: &Cons, gamma: f64) -> f64 {
    let p = pressure(u, gamma).max(0.0);
    (gamma * p / u[comp::RHO]).sqrt()
}

/// Fast magnetosonic speed along direction `dir` (0 = x, 1 = y, 2 = z):
///
/// `c_f² = ½ (a² + b² + √((a² + b²)² − 4 a² b_d²))`
///
/// with `a` the sound speed, `b² = |B|²/ρ`, and `b_d` the Alfvén speed
/// component along `dir`.
pub fn fast_speed(u: &Cons, gamma: f64, dir: usize) -> f64 {
    debug_assert!(dir < 3);
    let rho = u[comp::RHO];
    let a2 = {
        let a = sound_speed(u, gamma);
        a * a
    };
    let b2 =
        (u[comp::BX] * u[comp::BX] + u[comp::BY] * u[comp::BY] + u[comp::BZ] * u[comp::BZ]) / rho;
    let bd = u[comp::BX + dir];
    let bd2 = bd * bd / rho;
    let sum = a2 + b2;
    let disc = (sum * sum - 4.0 * a2 * bd2).max(0.0);
    (0.5 * (sum + disc.sqrt())).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gas(rho: f64, p: f64) -> Cons {
        cons_from_primitive(rho, 0.0, 0.0, 0.0, p, 0.0, 0.0, 0.0, GAMMA)
    }

    #[test]
    fn pressure_round_trips_through_energy() {
        let u = cons_from_primitive(1.2, 0.3, -0.1, 0.7, 2.5, 0.4, -0.2, 0.9, GAMMA);
        assert!((pressure(&u, GAMMA) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn sound_speed_of_unit_gas() {
        let u = gas(1.0, 1.0);
        assert!((sound_speed(&u, GAMMA) - GAMMA.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn fast_speed_reduces_to_sound_without_field() {
        let u = gas(1.0, 1.0);
        for dir in 0..3 {
            assert!((fast_speed(&u, GAMMA, dir) - sound_speed(&u, GAMMA)).abs() < 1e-12);
        }
    }

    #[test]
    fn fast_speed_exceeds_sound_with_transverse_field() {
        let u = cons_from_primitive(1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 2.0, 0.0, GAMMA);
        // Field along y: fast speed in x must exceed the sound speed.
        assert!(fast_speed(&u, GAMMA, 0) > sound_speed(&u, GAMMA) + 0.1);
    }

    #[test]
    fn fast_speed_along_field_is_max_of_sound_and_alfven() {
        // For B aligned with the propagation direction the fast speed is
        // max(a, b_x); with b_x > a it equals the Alfvén speed.
        let bx: f64 = 3.0;
        let u = cons_from_primitive(1.0, 0.0, 0.0, 0.0, 1.0, bx, 0.0, 0.0, GAMMA);
        let alfven = bx / 1.0_f64.sqrt();
        assert!((fast_speed(&u, GAMMA, 0) - alfven).abs() < 1e-9);
    }

    #[test]
    fn total_pressure_adds_magnetic_part() {
        let u = cons_from_primitive(1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, GAMMA);
        assert!((total_pressure(&u, GAMMA) - 1.5).abs() < 1e-12);
    }
}
