//! Conserved-variable state.
//!
//! Ideal MHD evolves eight conserved quantities per cell: mass density,
//! three momentum components, total energy density, and three magnetic
//! field components. Cells are stored as arrays-of-structures (`[f64; 8]`)
//! because the stencil touches all eight components of each neighbour
//! together — one cache line per cell visit.

use serde::{Deserialize, Serialize};

use crate::grid::Grid;

/// Number of conserved components.
pub const NCOMP: usize = 8;

/// Component indices into a [`Cons`] vector.
pub mod comp {
    /// Mass density ρ.
    pub const RHO: usize = 0;
    /// x-momentum ρu.
    pub const MX: usize = 1;
    /// y-momentum ρv.
    pub const MY: usize = 2;
    /// z-momentum ρw.
    pub const MZ: usize = 3;
    /// Total energy density E.
    pub const EN: usize = 4;
    /// Magnetic field Bx.
    pub const BX: usize = 5;
    /// Magnetic field By.
    pub const BY: usize = 6;
    /// Magnetic field Bz.
    pub const BZ: usize = 7;
}

/// One cell's conserved variables.
pub type Cons = [f64; NCOMP];

/// The full grid state: one [`Cons`] per storage cell (ghosts included).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct State {
    /// Grid geometry.
    pub grid: Grid,
    /// Cell data in storage order (x fastest), ghosts included.
    pub cells: Vec<Cons>,
}

impl State {
    /// A state of quiescent gas: uniform density 1, pressure-consistent
    /// energy for γ = 5/3 with p = 1, zero velocity and field.
    pub fn quiescent(grid: Grid) -> Self {
        let e = 1.0 / (5.0 / 3.0 - 1.0); // p/(γ−1)
        let cell: Cons = [1.0, 0.0, 0.0, 0.0, e, 0.0, 0.0, 0.0];
        State {
            grid,
            cells: vec![cell; grid.n_storage()],
        }
    }

    /// Builds a state by evaluating `f(x, y, z) -> Cons` at every interior
    /// cell centre (ghosts start zeroed; call a boundary fill before use).
    pub fn from_fn(grid: Grid, f: impl Fn(f64, f64, f64) -> Cons) -> Self {
        let mut s = State {
            grid,
            cells: vec![[0.0; NCOMP]; grid.n_storage()],
        };
        for (i, j, k) in grid.interior_coords() {
            let (x, y, z) = grid.cell_center(i, j, k);
            s.cells[grid.interior_idx(i, j, k)] = f(x, y, z);
        }
        s
    }

    /// Interior cell accessor.
    #[inline]
    pub fn interior(&self, i: usize, j: usize, k: usize) -> &Cons {
        &self.cells[self.grid.interior_idx(i, j, k)]
    }

    /// Mutable interior cell accessor.
    #[inline]
    pub fn interior_mut(&mut self, i: usize, j: usize, k: usize) -> &mut Cons {
        let idx = self.grid.interior_idx(i, j, k);
        &mut self.cells[idx]
    }

    /// Sum of one conserved component over the interior (a conservation
    /// diagnostic: with periodic boundaries these sums are time-invariant).
    pub fn total(&self, component: usize) -> f64 {
        assert!(component < NCOMP, "component out of range");
        self.grid
            .interior_coords()
            .map(|(i, j, k)| self.interior(i, j, k)[component])
            .sum()
    }

    /// True when every interior cell has positive density and a physical
    /// (non-negative-pressure) energy for the given γ.
    pub fn is_physical(&self, gamma: f64) -> bool {
        self.grid.interior_coords().all(|(i, j, k)| {
            let u = self.interior(i, j, k);
            u[comp::RHO] > 0.0 && crate::eos::pressure(u, gamma) >= -1e-12
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_is_physical() {
        let s = State::quiescent(Grid::cubic(4, 4, 4));
        assert!(s.is_physical(5.0 / 3.0));
        assert!((s.total(comp::RHO) - 64.0).abs() < 1e-12);
        assert_eq!(s.total(comp::MX), 0.0);
    }

    #[test]
    fn from_fn_fills_interior_only() {
        let g = Grid::cubic(2, 2, 2);
        let s = State::from_fn(g, |_, _, _| [2.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0]);
        assert!((s.total(comp::RHO) - 16.0).abs() < 1e-12);
        // A ghost cell stays zeroed.
        assert_eq!(s.cells[g.idx(0, 0, 0)][comp::RHO], 0.0);
    }

    #[test]
    fn from_fn_sees_cell_centers() {
        let g = Grid::cubic(4, 1, 1);
        let s = State::from_fn(g, |x, _, _| [x, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0]);
        assert!((s.interior(0, 0, 0)[comp::RHO] - 0.125).abs() < 1e-15);
        assert!((s.interior(3, 0, 0)[comp::RHO] - 0.875).abs() < 1e-15);
    }

    #[test]
    fn interior_mut_round_trips() {
        let mut s = State::quiescent(Grid::cubic(3, 3, 3));
        s.interior_mut(1, 2, 0)[comp::RHO] = 9.0;
        assert_eq!(s.interior(1, 2, 0)[comp::RHO], 9.0);
    }
}
