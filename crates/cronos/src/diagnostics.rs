//! Solver diagnostics: the global quantities astrophysics runs monitor,
//! plus a plain-text slice writer for inspecting fields.

use std::fmt::Write as _;

use crate::eos::pressure;
use crate::state::{comp, State};

/// Volume-integrated diagnostics of a state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalDiagnostics {
    /// Total mass ∫ρ dV (cell-sum × cell volume).
    pub mass: f64,
    /// Total energy ∫E dV.
    pub total_energy: f64,
    /// Kinetic energy ∫ ρ|u|²/2 dV.
    pub kinetic_energy: f64,
    /// Magnetic energy ∫ |B|²/2 dV.
    pub magnetic_energy: f64,
    /// Momentum components ∫ρu dV.
    pub momentum: [f64; 3],
    /// Maximum Mach number over the grid.
    pub max_mach: f64,
    /// Minimum gas pressure over the grid.
    pub min_pressure: f64,
}

/// Computes the global diagnostics for `state` with adiabatic index `gamma`.
pub fn global_diagnostics(state: &State, gamma: f64) -> GlobalDiagnostics {
    let g = state.grid;
    let dv = g.dx() * g.dy() * g.dz();
    let mut mass = 0.0;
    let mut total_energy = 0.0;
    let mut kinetic = 0.0;
    let mut magnetic = 0.0;
    let mut momentum = [0.0; 3];
    let mut max_mach = 0.0f64;
    let mut min_p = f64::INFINITY;

    for (i, j, k) in g.interior_coords() {
        let u = state.interior(i, j, k);
        let rho = u[comp::RHO];
        mass += rho;
        total_energy += u[comp::EN];
        let m2 = u[comp::MX] * u[comp::MX] + u[comp::MY] * u[comp::MY] + u[comp::MZ] * u[comp::MZ];
        kinetic += 0.5 * m2 / rho;
        magnetic += 0.5
            * (u[comp::BX] * u[comp::BX] + u[comp::BY] * u[comp::BY] + u[comp::BZ] * u[comp::BZ]);
        for ax in 0..3 {
            momentum[ax] += u[comp::MX + ax];
        }
        let p = pressure(u, gamma);
        min_p = min_p.min(p);
        let speed = (m2 / (rho * rho)).sqrt();
        let a = crate::eos::sound_speed(u, gamma);
        if a > 0.0 {
            max_mach = max_mach.max(speed / a);
        }
    }

    GlobalDiagnostics {
        mass: mass * dv,
        total_energy: total_energy * dv,
        kinetic_energy: kinetic * dv,
        magnetic_energy: magnetic * dv,
        momentum: [momentum[0] * dv, momentum[1] * dv, momentum[2] * dv],
        max_mach,
        min_pressure: min_p,
    }
}

/// Renders a z-slice of one conserved component as CSV (`x fastest`, one
/// row per y), for quick plotting or inspection.
///
/// # Panics
/// Panics on out-of-range `component` or `k` slice index.
pub fn slice_csv(state: &State, component: usize, k: usize) -> String {
    let g = state.grid;
    assert!(component < crate::state::NCOMP, "component out of range");
    assert!(k < g.nz, "slice index out of range");
    let mut out = String::with_capacity(g.nx * g.ny * 12);
    for j in 0..g.ny {
        for i in 0..g.nx {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{:.6e}", state.interior(i, j, k)[component]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eos::GAMMA;
    use crate::grid::Grid;
    use crate::problems;

    #[test]
    fn quiescent_diagnostics_are_exact() {
        let g = Grid::cubic(4, 4, 4);
        let s = State::quiescent(g);
        let d = global_diagnostics(&s, GAMMA);
        // Unit density over the unit cube.
        assert!((d.mass - 1.0).abs() < 1e-12);
        assert_eq!(d.kinetic_energy, 0.0);
        assert_eq!(d.magnetic_energy, 0.0);
        assert_eq!(d.momentum, [0.0; 3]);
        assert_eq!(d.max_mach, 0.0);
        assert!((d.min_pressure - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_partition_sums_consistently() {
        let g = Grid::cubic(8, 8, 8);
        let p = problems::orszag_tang(g);
        let d = global_diagnostics(&p.state, GAMMA);
        // Internal = total − kinetic − magnetic must be positive.
        let internal = d.total_energy - d.kinetic_energy - d.magnetic_energy;
        assert!(internal > 0.0);
        assert!(d.kinetic_energy > 0.0);
        assert!(d.magnetic_energy > 0.0);
    }

    #[test]
    fn diagnostics_track_simulation_conservation() {
        let g = Grid::cubic(8, 8, 4);
        let mut sim = crate::sim::Simulation::new(problems::orszag_tang(g), GAMMA, 0.4);
        let d0 = global_diagnostics(&sim.state, GAMMA);
        sim.run_steps(3);
        let d1 = global_diagnostics(&sim.state, GAMMA);
        assert!(((d1.mass - d0.mass) / d0.mass).abs() < 1e-12);
        assert!(((d1.total_energy - d0.total_energy) / d0.total_energy).abs() < 1e-12);
        // Kinetic↔magnetic exchange is allowed (and expected).
    }

    #[test]
    fn slice_csv_shape() {
        let g = Grid::cubic(3, 2, 2);
        let s = State::quiescent(g);
        let csv = slice_csv(&s, comp::RHO, 0);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert_eq!(line.split(',').count(), 3);
            for v in line.split(',') {
                assert!((v.parse::<f64>().unwrap() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "slice index out of range")]
    fn slice_bounds_checked() {
        let s = State::quiescent(Grid::cubic(2, 2, 2));
        let _ = slice_csv(&s, 0, 5);
    }
}
