//! Grid geometry.
//!
//! A uniform Cartesian grid with `NGHOST = 2` ghost layers per side — the
//! two-cell neighbourhood the paper's finite-volume scheme needs ("access
//! to their neighborhood of 2 cells in each direction", §3.1).

use serde::{Deserialize, Serialize};

/// Ghost-cell layers on each side of the domain.
pub const NGHOST: usize = 2;

/// A uniform 3D grid: interior extents, physical domain size, spacing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    /// Interior cells along x.
    pub nx: usize,
    /// Interior cells along y.
    pub ny: usize,
    /// Interior cells along z.
    pub nz: usize,
    /// Physical domain length along x.
    pub lx: f64,
    /// Physical domain length along y.
    pub ly: f64,
    /// Physical domain length along z.
    pub lz: f64,
    /// Spacing override carried by subdomain grids. `lx/nx` does not
    /// round-trip through a slab cut (`(lx·k/n)/k ≠ lx/n` bitwise), so a
    /// subgrid must inherit its parent's *exact* spacing for the stencil's
    /// `1/Δx` factors — and therefore the decomposed solve — to stay
    /// bit-identical to the monolithic one. `None` (the default, and what
    /// legacy serialized grids deserialize to) means the derived spacing.
    #[serde(default)]
    spacing: Option<[f64; 3]>,
}

impl Grid {
    /// A grid over the unit cube.
    ///
    /// # Panics
    /// Panics if any extent is zero.
    pub fn cubic(nx: usize, ny: usize, nz: usize) -> Self {
        Grid::new(nx, ny, nz, 1.0, 1.0, 1.0)
    }

    /// A grid with explicit physical dimensions.
    ///
    /// # Panics
    /// Panics if any extent is zero or any length non-positive.
    pub fn new(nx: usize, ny: usize, nz: usize, lx: f64, ly: f64, lz: f64) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid extents must be positive");
        assert!(
            lx > 0.0 && ly > 0.0 && lz > 0.0,
            "domain lengths must be positive"
        );
        Grid {
            nx,
            ny,
            nz,
            lx,
            ly,
            lz,
            spacing: None,
        }
    }

    /// An x-slab subgrid of `nx_local` interior cells that keeps this
    /// grid's exact cell spacing (see the `spacing` field). The y/z extents
    /// and lengths are inherited unchanged; the x length is the consistent
    /// `nx_local · dx`.
    ///
    /// # Panics
    /// Panics if `nx_local` is zero or exceeds `self.nx`.
    pub fn subgrid_x(&self, nx_local: usize) -> Grid {
        assert!(
            nx_local > 0 && nx_local <= self.nx,
            "slab extent must be in 1..=nx"
        );
        Grid {
            nx: nx_local,
            ny: self.ny,
            nz: self.nz,
            lx: self.dx() * nx_local as f64,
            ly: self.ly,
            lz: self.lz,
            spacing: Some([self.dx(), self.dy(), self.dz()]),
        }
    }

    /// Cell spacing along x.
    pub fn dx(&self) -> f64 {
        match self.spacing {
            Some(s) => s[0],
            None => self.lx / self.nx as f64,
        }
    }

    /// Cell spacing along y.
    pub fn dy(&self) -> f64 {
        match self.spacing {
            Some(s) => s[1],
            None => self.ly / self.ny as f64,
        }
    }

    /// Cell spacing along z.
    pub fn dz(&self) -> f64 {
        match self.spacing {
            Some(s) => s[2],
            None => self.lz / self.nz as f64,
        }
    }

    /// Interior cell count.
    pub fn n_cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Storage extent (interior + ghosts) along x.
    pub fn sx(&self) -> usize {
        self.nx + 2 * NGHOST
    }

    /// Storage extent along y.
    pub fn sy(&self) -> usize {
        self.ny + 2 * NGHOST
    }

    /// Storage extent along z.
    pub fn sz(&self) -> usize {
        self.nz + 2 * NGHOST
    }

    /// Total storage cells (including ghosts).
    pub fn n_storage(&self) -> usize {
        self.sx() * self.sy() * self.sz()
    }

    /// Flat index of storage coordinates `(i, j, k)` (ghost-inclusive,
    /// `0 ≤ i < sx()` etc.), x fastest.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.sx() && j < self.sy() && k < self.sz());
        (k * self.sy() + j) * self.sx() + i
    }

    /// Flat index of *interior* coordinates `(i, j, k)` (0-based within the
    /// interior), offset past the ghost layers.
    #[inline]
    pub fn interior_idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        self.idx(i + NGHOST, j + NGHOST, k + NGHOST)
    }

    /// Cell-centre physical coordinates of interior cell `(i, j, k)`.
    pub fn cell_center(&self, i: usize, j: usize, k: usize) -> (f64, f64, f64) {
        (
            (i as f64 + 0.5) * self.dx(),
            (j as f64 + 0.5) * self.dy(),
            (k as f64 + 0.5) * self.dz(),
        )
    }

    /// Iterates interior coordinates `(i, j, k)` in storage order.
    pub fn interior_coords(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        (0..nz).flat_map(move |k| (0..ny).flat_map(move |j| (0..nx).map(move |i| (i, j, k))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spacing_and_counts() {
        let g = Grid::cubic(10, 4, 4);
        assert_eq!(g.n_cells(), 160);
        assert_eq!(g.sx(), 14);
        assert_eq!(g.n_storage(), 14 * 8 * 8);
        assert!((g.dx() - 0.1).abs() < 1e-15);
        assert!((g.dy() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn flat_indexing_is_bijective_on_storage() {
        let g = Grid::cubic(3, 4, 5);
        let mut seen = vec![false; g.n_storage()];
        for k in 0..g.sz() {
            for j in 0..g.sy() {
                for i in 0..g.sx() {
                    let idx = g.idx(i, j, k);
                    assert!(!seen[idx]);
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn interior_index_offsets_by_ghosts() {
        let g = Grid::cubic(4, 4, 4);
        assert_eq!(g.interior_idx(0, 0, 0), g.idx(NGHOST, NGHOST, NGHOST));
    }

    #[test]
    fn x_is_fastest_axis() {
        let g = Grid::cubic(4, 4, 4);
        assert_eq!(g.idx(1, 0, 0), g.idx(0, 0, 0) + 1);
        assert_eq!(g.idx(0, 1, 0), g.idx(0, 0, 0) + g.sx());
        assert_eq!(g.idx(0, 0, 1), g.idx(0, 0, 0) + g.sx() * g.sy());
    }

    #[test]
    fn interior_coords_cover_interior() {
        let g = Grid::cubic(2, 3, 2);
        let coords: Vec<_> = g.interior_coords().collect();
        assert_eq!(coords.len(), g.n_cells());
        assert_eq!(coords[0], (0, 0, 0));
        assert_eq!(*coords.last().unwrap(), (1, 2, 1));
    }

    #[test]
    fn cell_centers_inside_domain() {
        let g = Grid::new(8, 8, 8, 2.0, 1.0, 1.0);
        let (x, y, z) = g.cell_center(7, 7, 7);
        assert!(x < 2.0 && y < 1.0 && z < 1.0);
        let (x0, _, _) = g.cell_center(0, 0, 0);
        assert!(x0 > 0.0);
    }

    #[test]
    #[should_panic(expected = "extents must be positive")]
    fn zero_extent_rejected() {
        let _ = Grid::cubic(0, 4, 4);
    }

    #[test]
    fn subgrid_carries_parent_spacing_bitwise() {
        // 160/7 does not round-trip: (lx·k/n)/k ≠ lx/n in general. The
        // spacing override must make the slab's dx the parent's, bit for
        // bit, along with dy/dz.
        let g = Grid::new(160, 64, 64, 1.0, 0.7, 1.3);
        for nx_local in [1, 7, 23, 160] {
            let sub = g.subgrid_x(nx_local);
            assert_eq!(sub.dx().to_bits(), g.dx().to_bits());
            assert_eq!(sub.dy().to_bits(), g.dy().to_bits());
            assert_eq!(sub.dz().to_bits(), g.dz().to_bits());
            assert_eq!(sub.nx, nx_local);
            assert_eq!((sub.ny, sub.nz), (g.ny, g.nz));
        }
    }

    #[test]
    fn subgrid_of_subgrid_keeps_root_spacing() {
        let g = Grid::new(100, 8, 8, 2.0, 1.0, 1.0);
        let sub = g.subgrid_x(33).subgrid_x(11);
        assert_eq!(sub.dx().to_bits(), g.dx().to_bits());
    }

    #[test]
    #[should_panic(expected = "slab extent")]
    fn oversized_subgrid_rejected() {
        let _ = Grid::cubic(8, 4, 4).subgrid_x(9);
    }

    #[test]
    fn grid_without_override_deserializes_with_derived_spacing() {
        let g = Grid::new(10, 4, 4, 1.0, 1.0, 1.0);
        let json = serde_json::to_string(&g).unwrap();
        let back: Grid = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.dx().to_bits(), g.dx().to_bits());
        // A legacy payload with no `spacing` key still loads.
        let legacy = r#"{"nx":10,"ny":4,"nz":4,"lx":1.0,"ly":1.0,"lz":1.0}"#;
        let old: Grid = serde_json::from_str(legacy).unwrap();
        assert_eq!(old, g);
    }
}
