//! Property tests of the slab decomposition: on random grids and slab
//! counts, the decomposed CPU solver is **bit-identical** to the
//! monolithic one on both canonical problems, and the decomposition
//! geometry tiles the grid exactly.

use cronos::boundary::BoundaryKind;
use cronos::decomp::DistributedSimulation;
use cronos::eos::GAMMA;
use cronos::grid::NGHOST;
use cronos::problems::{self, Problem};
use cronos::sim::Simulation;
use cronos::state::NCOMP;
use cronos::{Decomposition, Grid};
use proptest::prelude::*;

fn assert_bitwise_equal(dist: &DistributedSimulation, mono: &Simulation) -> Result<(), String> {
    prop_assert_eq!(dist.dt.to_bits(), mono.dt.to_bits(), "dt diverged");
    prop_assert_eq!(dist.time.to_bits(), mono.time.to_bits(), "time diverged");
    let gathered = dist.gather();
    prop_assert_eq!(gathered.cells.len(), mono.state.cells.len());
    for (i, (ca, cb)) in gathered.cells.iter().zip(&mono.state.cells).enumerate() {
        for c in 0..NCOMP {
            prop_assert_eq!(
                ca[c].to_bits(),
                cb[c].to_bits(),
                "cell {} component {} diverged",
                i,
                c
            );
        }
    }
    Ok(())
}

/// Runs both solvers `steps` steps and checks bit-identity.
fn check_problem(
    problem_fn: fn(Grid) -> Problem,
    grid: Grid,
    slabs: usize,
    steps: u64,
) -> Result<(), String> {
    let mut mono = Simulation::new(problem_fn(grid), GAMMA, 0.4);
    let mut dist = DistributedSimulation::new(problem_fn(grid), GAMMA, 0.4, slabs);
    mono.run_steps(steps);
    dist.run_steps(steps);
    assert_bitwise_equal(&dist, &mono)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Orszag–Tang (periodic) on a random grid, decomposed onto a random
    /// admissible slab count, is bit-identical to the monolithic run.
    #[test]
    fn orszag_tang_decomposition_is_bit_identical(
        nx in 8usize..24,
        ny in 4usize..8,
        nz in 4usize..8,
        slab_sel in 0usize..64,
        steps in 1u64..4,
    ) {
        let g = Grid::cubic(nx, ny, nz);
        let max = Decomposition::max_slabs(&g);
        let slabs = 1 + slab_sel % max;
        check_problem(problems::orszag_tang, g, slabs, steps)?;
    }

    /// MHD blast (outflow boundaries — the wrap cut drops) stays
    /// bit-identical under the same randomization.
    #[test]
    fn mhd_blast_decomposition_is_bit_identical(
        nx in 8usize..24,
        ny in 4usize..8,
        nz in 4usize..8,
        slab_sel in 0usize..64,
        steps in 1u64..4,
    ) {
        let g = Grid::cubic(nx, ny, nz);
        let max = Decomposition::max_slabs(&g);
        let slabs = 1 + slab_sel % max;
        check_problem(problems::mhd_blast, g, slabs, steps)?;
    }

    /// Decomposition geometry: slab widths tile the grid exactly, every
    /// slab is at least NGHOST wide, and starts are the prefix sums.
    #[test]
    fn slab_geometry_tiles_the_grid(
        nx in NGHOST..64usize,
        ny in 4usize..10,
        nz in 4usize..10,
        slab_sel in 0usize..64,
    ) {
        let g = Grid::cubic(nx, ny, nz);
        let max = Decomposition::max_slabs(&g);
        prop_assert!(max >= 1);
        let slabs = 1 + slab_sel % max;
        let d = Decomposition::slabs(&g, slabs);
        prop_assert_eq!(d.num_slabs(), slabs);
        let total: usize = (0..d.num_slabs()).map(|i| d.width(i)).sum();
        prop_assert_eq!(total, g.nx, "slab widths must sum to nx");
        let mut expect_start = 0;
        for i in 0..d.num_slabs() {
            prop_assert!(d.width(i) >= NGHOST);
            prop_assert_eq!(d.start(i), expect_start);
            expect_start += d.width(i);
            let sub = d.slab_grid(&g, i);
            prop_assert_eq!(sub.nx, d.width(i));
            prop_assert_eq!((sub.ny, sub.nz), (g.ny, g.nz));
        }
    }

    /// Halo accounting is pure geometry: periodic rings cut `n` times
    /// (none when n = 1), outflow drops the wrap, and each cut moves two
    /// ghost planes per exchange.
    #[test]
    fn halo_bytes_match_cut_geometry(
        nx in 8usize..32,
        ny in 4usize..8,
        nz in 4usize..8,
        slab_sel in 0usize..64,
    ) {
        let g = Grid::cubic(nx, ny, nz);
        let max = Decomposition::max_slabs(&g);
        let slabs = 1 + slab_sel % max;
        let d = Decomposition::slabs(&g, slabs);
        let plane = Decomposition::plane_bytes(&g);
        let periodic_cuts = if slabs == 1 { 0 } else { slabs };
        prop_assert_eq!(
            d.halo_bytes_per_exchange(&g, BoundaryKind::Periodic),
            periodic_cuts as u64 * 2 * plane
        );
        let outflow_cuts = slabs - 1;
        prop_assert_eq!(
            d.halo_bytes_per_exchange(&g, BoundaryKind::Outflow),
            outflow_cuts as u64 * 2 * plane
        );
    }
}
