//! Property-based tests of the MHD solver's invariants: conservation,
//! positivity on smooth data, and equilibrium preservation under random
//! uniform states.

use cronos::boundary::{apply_boundary, BoundaryKind};
use cronos::eos::{cons_from_primitive, GAMMA};
use cronos::grid::Grid;
use cronos::sim::Simulation;
use cronos::state::State;
use cronos::stencil::compute_changes;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any uniform state (arbitrary velocity, pressure, field) is an exact
    /// equilibrium of the scheme.
    #[test]
    fn uniform_states_are_equilibria(
        rho in 0.1..10.0f64,
        u in -3.0..3.0f64,
        v in -3.0..3.0f64,
        w in -3.0..3.0f64,
        p in 0.1..10.0f64,
        bx in -2.0..2.0f64,
        by in -2.0..2.0f64,
        bz in -2.0..2.0f64,
    ) {
        let g = Grid::cubic(6, 4, 4);
        let mut s = State::from_fn(g, |_, _, _| {
            cons_from_primitive(rho, u, v, w, p, bx, by, bz, GAMMA)
        });
        apply_boundary(&mut s, BoundaryKind::Periodic);
        let ch = compute_changes(&s, GAMMA);
        for d in &ch.dudt {
            for (c, v) in d.iter().enumerate() {
                prop_assert!(v.abs() < 1e-9, "component {} rate {}", c, v);
            }
        }
    }

    /// Smooth periodic perturbations conserve every component over full
    /// timesteps, whatever the perturbation phase/amplitude.
    #[test]
    fn conservation_under_random_smooth_fields(
        amp in 0.01..0.3f64,
        phase in 0.0..std::f64::consts::TAU,
        kx in 1u32..3,
        steps in 1u64..4,
    ) {
        let g = Grid::cubic(8, 4, 4);
        let problem = cronos::problems::Problem {
            name: "prop",
            state: State::from_fn(g, |x, y, _| {
                let s = (std::f64::consts::TAU * kx as f64 * x + phase).sin();
                cons_from_primitive(
                    1.0 + amp * s,
                    0.1 * (std::f64::consts::TAU * y).cos(),
                    0.0,
                    0.0,
                    1.0,
                    0.1,
                    0.05,
                    0.0,
                    GAMMA,
                )
            }),
            boundary: BoundaryKind::Periodic,
        };
        let mut sim = Simulation::new(problem, GAMMA, 0.3);
        let before: Vec<f64> = (0..8).map(|c| sim.state.total(c)).collect();
        sim.run_steps(steps);
        for (c, b) in before.iter().enumerate() {
            let after = sim.state.total(c);
            let scale = b.abs().max(1.0);
            prop_assert!(
                (after - b).abs() / scale < 1e-10,
                "component {} drifted {} -> {}", c, b, after
            );
        }
        prop_assert!(sim.state.is_physical(GAMMA));
    }

    /// Boundary filling is idempotent for both boundary kinds.
    #[test]
    fn boundary_fill_is_idempotent(kind in prop_oneof![Just(BoundaryKind::Periodic), Just(BoundaryKind::Outflow), Just(BoundaryKind::Reflecting)], seed in 0u64..1000) {
        let g = Grid::cubic(5, 4, 3);
        let mut s = State::from_fn(g, |x, y, z| {
            let r = ((seed as f64).sin() * 43758.5453).fract().abs() + 0.5;
            cons_from_primitive(r + x, y - z, 0.1, 0.0, 1.0 + x * y, 0.1, 0.0, 0.2, GAMMA)
        });
        apply_boundary(&mut s, kind);
        let once = s.clone();
        apply_boundary(&mut s, kind);
        prop_assert_eq!(once, s);
    }

    /// The CFL rate is positive and finite for any physical uniform state.
    #[test]
    fn cfl_rates_are_positive(rho in 0.1..10.0f64, p in 0.1..10.0f64, bx in -2.0..2.0f64) {
        let g = Grid::cubic(4, 4, 4);
        let mut s = State::from_fn(g, |_, _, _| {
            cons_from_primitive(rho, 0.0, 0.0, 0.0, p, bx, 0.0, 0.0, GAMMA)
        });
        apply_boundary(&mut s, BoundaryKind::Periodic);
        let ch = compute_changes(&s, GAMMA);
        for r in &ch.cfl {
            prop_assert!(r.is_finite() && *r > 0.0);
        }
    }
}
