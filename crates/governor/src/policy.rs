//! Frequency-selection policies over a predicted Pareto set.
//!
//! A policy turns a [`PredictedProfile`] plus a per-job deadline into a
//! clock request — or into *no* request ([`Policy::DefaultClock`], the
//! baseline every other policy is measured against, and the fallback
//! every failure mode converges to).
//!
//! Tie-breaking is fully deterministic: candidates are compared by
//! `total_cmp` chains, never by float `==` alone, so two runs of the same
//! stream make the same choices bit-for-bit.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::serving::{LatticeProfile, PredictedProfile};
use energy_model::ds_model::{LatticePredictedPoint, PredictedPoint};
use serde::{Deserialize, Serialize};

/// A frequency-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Never change the clock — the vendor-default baseline.
    DefaultClock,
    /// Minimize predicted energy among points that meet the deadline;
    /// if no point does, take the fastest point (least deadline damage).
    MinEnergyUnderDeadline,
    /// Minimize the predicted energy-delay product, ignoring deadlines.
    MinEdp,
}

impl Policy {
    /// All policies, baseline first.
    pub fn all() -> [Policy; 3] {
        [
            Policy::DefaultClock,
            Policy::MinEnergyUnderDeadline,
            Policy::MinEdp,
        ]
    }

    /// Stable CLI / report name.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::DefaultClock => "default-clock",
            Policy::MinEnergyUnderDeadline => "min-energy-under-deadline",
            Policy::MinEdp => "min-edp",
        }
    }

    /// Parses a [`Policy::name`] string.
    pub fn parse(s: &str) -> Option<Policy> {
        Policy::all().into_iter().find(|p| p.name() == s)
    }
}

/// Predicted wall time of a Pareto point, derived from the profile's
/// default-clock anchor (`speedup` is relative to the default clock).
fn predicted_time_s(profile: &PredictedProfile, point: &PredictedPoint) -> f64 {
    profile.default_time_s / point.speedup
}

fn finite(point: &PredictedPoint) -> bool {
    point.speedup.is_finite() && point.norm_energy.is_finite() && point.speedup > 0.0
}

/// Picks the clock a policy requests for one job: `None` means "leave the
/// device at its default clock" (always the answer for
/// [`Policy::DefaultClock`], and the degenerate answer when the predicted
/// front is empty or non-finite).
pub fn choose_frequency(
    policy: Policy,
    profile: &PredictedProfile,
    deadline_s: f64,
) -> Option<f64> {
    let candidates: Vec<&PredictedPoint> = profile.pareto.iter().filter(|p| finite(p)).collect();
    if candidates.is_empty() {
        return None;
    }
    match policy {
        Policy::DefaultClock => None,
        Policy::MinEnergyUnderDeadline => {
            let feasible: Vec<&&PredictedPoint> = candidates
                .iter()
                .filter(|p| predicted_time_s(profile, p) <= deadline_s)
                .collect();
            let pick = if feasible.is_empty() {
                // Nothing meets the deadline: minimize the damage by
                // running as fast as the model believes possible.
                candidates.iter().max_by(|a, b| {
                    a.speedup
                        .total_cmp(&b.speedup)
                        .then(b.norm_energy.total_cmp(&a.norm_energy))
                        .then(a.freq_mhz.total_cmp(&b.freq_mhz))
                })?
            } else {
                feasible.into_iter().min_by(|a, b| {
                    a.norm_energy
                        .total_cmp(&b.norm_energy)
                        .then(b.speedup.total_cmp(&a.speedup))
                        .then(a.freq_mhz.total_cmp(&b.freq_mhz))
                })?
            };
            Some(pick.freq_mhz)
        }
        Policy::MinEdp => {
            // EDP in normalized units: (1/speedup) · norm_energy — the
            // default-clock anchors cancel, so this orders points exactly
            // as absolute energy·delay would.
            let pick = candidates.iter().min_by(|a, b| {
                let edp_a = a.norm_energy / a.speedup;
                let edp_b = b.norm_energy / b.speedup;
                edp_a
                    .total_cmp(&edp_b)
                    .then(b.speedup.total_cmp(&a.speedup))
                    .then(a.freq_mhz.total_cmp(&b.freq_mhz))
            })?;
            Some(pick.freq_mhz)
        }
    }
}

/// Tie-break ordering over lattice points: ascending core, then memory,
/// then cap — a total order so equal-objective points resolve the same
/// way on every run.
fn config_order(a: &LatticePredictedPoint, b: &LatticePredictedPoint) -> std::cmp::Ordering {
    a.core_mhz
        .total_cmp(&b.core_mhz)
        .then(a.mem_mhz.total_cmp(&b.mem_mhz))
        .then(a.cap_w.total_cmp(&b.cap_w))
}

fn finite_config(point: &LatticePredictedPoint) -> bool {
    point.speedup.is_finite() && point.norm_energy.is_finite() && point.speedup > 0.0
}

/// Picks the full operating configuration `[core_mhz, mem_mhz, cap_w]` a
/// policy requests over a predicted Pareto *surface* — the lattice
/// sibling of [`choose_frequency`]. `None` means "leave the device at its
/// default configuration" (always for [`Policy::DefaultClock`], and the
/// degenerate answer when the surface is empty or non-finite). The same
/// deterministic `total_cmp` tie-break discipline applies, extended to
/// the `(core, mem, cap)` triple.
pub fn choose_config(
    policy: Policy,
    profile: &LatticeProfile,
    deadline_s: f64,
) -> Option<[f64; 3]> {
    let candidates: Vec<&LatticePredictedPoint> = profile
        .surface
        .iter()
        .filter(|p| finite_config(p))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let pick = match policy {
        Policy::DefaultClock => return None,
        Policy::MinEnergyUnderDeadline => {
            let feasible: Vec<&&LatticePredictedPoint> = candidates
                .iter()
                .filter(|p| profile.default_time_s / p.speedup <= deadline_s)
                .collect();
            if feasible.is_empty() {
                // Nothing meets the deadline: minimize the damage by
                // running as fast as the model believes possible.
                candidates.iter().max_by(|a, b| {
                    a.speedup
                        .total_cmp(&b.speedup)
                        .then(b.norm_energy.total_cmp(&a.norm_energy))
                        .then(config_order(a, b))
                })?
            } else {
                feasible.into_iter().min_by(|a, b| {
                    a.norm_energy
                        .total_cmp(&b.norm_energy)
                        .then(b.speedup.total_cmp(&a.speedup))
                        .then(config_order(a, b))
                })?
            }
        }
        Policy::MinEdp => candidates.iter().min_by(|a, b| {
            let edp_a = a.norm_energy / a.speedup;
            let edp_b = b.norm_energy / b.speedup;
            edp_a
                .total_cmp(&edp_b)
                .then(b.speedup.total_cmp(&a.speedup))
                .then(config_order(a, b))
        })?,
    };
    Some([pick.core_mhz, pick.mem_mhz, pick.cap_w])
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn point(freq_mhz: f64, speedup: f64, norm_energy: f64) -> PredictedPoint {
        PredictedPoint {
            freq_mhz,
            speedup,
            norm_energy,
        }
    }

    fn profile(pareto: Vec<PredictedPoint>) -> PredictedProfile {
        PredictedProfile {
            default_time_s: 10.0,
            default_energy_j: 100.0,
            default_freq_mhz: 1500.0,
            pareto,
        }
    }

    #[test]
    fn default_clock_never_requests_a_frequency() {
        let p = profile(vec![point(900.0, 0.9, 0.7), point(1500.0, 1.0, 1.0)]);
        assert_eq!(choose_frequency(Policy::DefaultClock, &p, 1.0), None);
    }

    #[test]
    fn min_energy_picks_cheapest_feasible_point() {
        // deadline 12 s: 900 MHz runs in 10/0.9 ≈ 11.1 s (feasible, cheap);
        // 700 MHz runs in 10/0.7 ≈ 14.3 s (infeasible, cheaper).
        let p = profile(vec![
            point(700.0, 0.7, 0.5),
            point(900.0, 0.9, 0.7),
            point(1500.0, 1.0, 1.0),
        ]);
        assert_eq!(
            choose_frequency(Policy::MinEnergyUnderDeadline, &p, 12.0),
            Some(900.0)
        );
    }

    #[test]
    fn min_energy_falls_back_to_fastest_when_nothing_feasible() {
        let p = profile(vec![point(700.0, 0.7, 0.5), point(1200.0, 0.95, 0.8)]);
        assert_eq!(
            choose_frequency(Policy::MinEnergyUnderDeadline, &p, 1.0),
            Some(1200.0)
        );
    }

    #[test]
    fn min_edp_ignores_deadline() {
        // EDP: 700 → 0.5/0.7 ≈ 0.714; 1500 → 1.0. Tight deadline must not
        // change the answer.
        let p = profile(vec![point(700.0, 0.7, 0.5), point(1500.0, 1.0, 1.0)]);
        assert_eq!(choose_frequency(Policy::MinEdp, &p, 0.001), Some(700.0));
    }

    #[test]
    fn empty_or_degenerate_front_yields_no_request() {
        let empty = profile(vec![]);
        let nan = profile(vec![point(900.0, f64::NAN, 0.5)]);
        for policy in Policy::all() {
            assert_eq!(choose_frequency(policy, &empty, 10.0), None);
            assert_eq!(choose_frequency(policy, &nan, 10.0), None);
        }
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in Policy::all() {
            assert_eq!(Policy::parse(policy.name()), Some(policy));
        }
        assert_eq!(Policy::parse("nope"), None);
    }

    // ---- Lattice (configuration-surface) selection ----

    fn cfg_point(
        core: f64,
        mem: f64,
        cap: f64,
        speedup: f64,
        norm_energy: f64,
    ) -> LatticePredictedPoint {
        LatticePredictedPoint {
            core_mhz: core,
            mem_mhz: mem,
            cap_w: cap,
            speedup,
            norm_energy,
        }
    }

    fn lattice_profile(surface: Vec<LatticePredictedPoint>) -> LatticeProfile {
        LatticeProfile {
            default_time_s: 10.0,
            default_energy_j: 100.0,
            default_config: [1500.0, 1100.0, 300.0],
            surface,
        }
    }

    #[test]
    fn default_clock_never_requests_a_config() {
        let p = lattice_profile(vec![cfg_point(900.0, 800.0, 150.0, 0.9, 0.7)]);
        assert_eq!(choose_config(Policy::DefaultClock, &p, 1.0), None);
    }

    #[test]
    fn min_energy_picks_cheapest_feasible_lattice_point() {
        // Deadline 12 s: the mem-downclocked point is feasible and cheaper
        // than the core-only point — the lattice must beat the front.
        let p = lattice_profile(vec![
            cfg_point(900.0, 1100.0, 300.0, 0.9, 0.75),
            cfg_point(900.0, 800.0, 300.0, 0.88, 0.65),
            cfg_point(700.0, 800.0, 150.0, 0.6, 0.5),
            cfg_point(1500.0, 1100.0, 300.0, 1.0, 1.0),
        ]);
        assert_eq!(
            choose_config(Policy::MinEnergyUnderDeadline, &p, 12.0),
            Some([900.0, 800.0, 300.0])
        );
    }

    #[test]
    fn min_energy_config_falls_back_to_fastest_when_nothing_feasible() {
        let p = lattice_profile(vec![
            cfg_point(700.0, 800.0, 150.0, 0.6, 0.5),
            cfg_point(1200.0, 1100.0, 300.0, 0.95, 0.8),
        ]);
        assert_eq!(
            choose_config(Policy::MinEnergyUnderDeadline, &p, 1.0),
            Some([1200.0, 1100.0, 300.0])
        );
    }

    #[test]
    fn min_edp_config_ignores_deadline() {
        let p = lattice_profile(vec![
            cfg_point(700.0, 800.0, 150.0, 0.7, 0.5),
            cfg_point(1500.0, 1100.0, 300.0, 1.0, 1.0),
        ]);
        assert_eq!(
            choose_config(Policy::MinEdp, &p, 0.001),
            Some([700.0, 800.0, 150.0])
        );
    }

    #[test]
    fn equal_objective_configs_tie_break_deterministically() {
        // Two points with identical objectives: ascending (core, mem, cap)
        // order must decide, on every run.
        let a = cfg_point(900.0, 800.0, 150.0, 0.9, 0.7);
        let b = cfg_point(900.0, 1100.0, 150.0, 0.9, 0.7);
        let p1 = lattice_profile(vec![a, b]);
        let p2 = lattice_profile(vec![b, a]);
        assert_eq!(
            choose_config(Policy::MinEnergyUnderDeadline, &p1, 100.0),
            choose_config(Policy::MinEnergyUnderDeadline, &p2, 100.0),
        );
        assert_eq!(
            choose_config(Policy::MinEnergyUnderDeadline, &p1, 100.0),
            Some([900.0, 800.0, 150.0])
        );
    }

    #[test]
    fn empty_or_degenerate_surface_yields_no_request() {
        let empty = lattice_profile(vec![]);
        let nan = lattice_profile(vec![cfg_point(900.0, 800.0, 150.0, f64::NAN, 0.5)]);
        for policy in Policy::all() {
            assert_eq!(choose_config(policy, &empty, 10.0), None);
            assert_eq!(choose_config(policy, &nan, 10.0), None);
        }
    }
}
