//! The versioned on-disk model registry.
//!
//! Layout: one directory per model name under the registry root, one
//! artifact file per published version:
//!
//! ```text
//! registry/
//!   cronos/v0001.json
//!   cronos/v0002.json
//!   ligen/v0001.json
//! ```
//!
//! Every file is a [`ModelArtifact`] envelope written through the atomic
//! persist path (temp + fsync + rename), so a concurrent or crashed
//! publish can never leave a half-written version behind — a version file
//! either exists completely or not at all. Versions are immutable once
//! published; [`ModelRegistry::publish`] always allocates the next number.
//!
//! Loading verifies the envelope (schema version, content digest, and —
//! for [`ModelRegistry::load_expecting`] — the training fingerprint) and
//! surfaces every failure as a typed [`RegistryError`], never a panic:
//! a corrupt registry entry is an expected runtime condition that the
//! governor degrades around.
//!
//! # Channels
//!
//! Each model directory optionally carries a `canary.json` pointer naming
//! one *active* version as the canary channel. The **stable** channel is
//! the highest active version that is not the canary; the canary rides
//! alongside until it is promoted (pointer removed — the canary version,
//! being the highest, becomes the new stable latest) or rolled back (its
//! version file is renamed to `vNNNN.retired.json` and the pointer
//! removed; the incumbent is untouched). Retired files still reserve
//! their version numbers — [`ModelRegistry::publish`] allocates past
//! them — so version numbering stays monotone and immutable even across
//! rollbacks. A pointer naming a missing or retired version (a crash
//! between the two rollback steps) is *dangling* and reads as "no
//! canary": the registry self-heals on the next canary operation.
//!
//! [`ModelRegistry::load_latest_healthy`] is the hardened serving path:
//! it walks the stable channel newest→oldest, skipping (and reporting as
//! [`RegistryEvent::CorruptSkipped`]) versions that fail digest or parse
//! verification, and silently skipping versions from a different
//! training generation, so neither one corrupt file nor one
//! crash-orphaned retrain artifact can brick or hijack serving.

// The registry is runtime-load infrastructure: typed errors only.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use energy_model::artifact::{ArtifactError, ModelArtifact};
use energy_model::ds_model::DomainSpecificModel;
use energy_model::persist::atomic_write_str;
use serde::{Deserialize, Serialize};

/// A typed registry failure.
#[derive(Debug)]
pub enum RegistryError {
    /// The model name is not a safe directory name.
    InvalidName(String),
    /// No published version of the model exists.
    NotFound {
        /// The model name looked up.
        name: String,
    },
    /// The requested version does not exist (but the model does).
    VersionNotFound {
        /// The model name looked up.
        name: String,
        /// The missing version.
        version: u32,
    },
    /// The stored artifact failed verification or parsing.
    Artifact {
        /// The model name involved.
        name: String,
        /// The version involved.
        version: u32,
        /// What the envelope verification found.
        source: ArtifactError,
    },
    /// A filesystem operation failed.
    Io {
        /// The path the operation was acting on.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A canary operation named a version that is not the current canary.
    CanaryMismatch {
        /// The model name involved.
        name: String,
        /// The version the operation expected to be the canary.
        version: u32,
        /// The version the pointer actually names (if any).
        canary: Option<u32>,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::InvalidName(name) => {
                write!(f, "invalid model name {name:?}: expected [a-z0-9_-]+")
            }
            RegistryError::NotFound { name } => {
                write!(f, "model {name:?} has no published versions")
            }
            RegistryError::VersionNotFound { name, version } => {
                write!(f, "model {name:?} has no version {version}")
            }
            RegistryError::Artifact {
                name,
                version,
                source,
            } => {
                write!(f, "artifact {name:?} v{version}: {source}")
            }
            RegistryError::Io { path, source } => {
                write!(f, "registry io error at {}: {source}", path.display())
            }
            RegistryError::CanaryMismatch {
                name,
                version,
                canary,
            } => match canary {
                Some(c) => write!(f, "model {name:?}: expected canary v{version}, found v{c}"),
                None => write!(f, "model {name:?}: expected canary v{version}, none is set"),
            },
        }
    }
}

/// An observation a hardened registry walk makes while degrading around
/// damage. These are facts about the registry's state, surfaced so a
/// caller can journal them; the walk itself already routed around the
/// problem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegistryEvent {
    /// A published version failed envelope verification (digest, schema,
    /// or parse) and was skipped in favor of an older healthy one.
    CorruptSkipped {
        /// The model whose version was skipped.
        name: String,
        /// The version skipped.
        version: u32,
        /// The verification failure, rendered.
        reason: String,
    },
    /// The canary pointer named a missing or retired version (a crash
    /// between rollback's two steps) and was treated as "no canary".
    DanglingCanary {
        /// The model whose pointer dangled.
        name: String,
        /// The version the stale pointer named.
        version: u32,
    },
}

/// The on-disk `canary.json` pointer payload.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct CanaryPointer {
    version: u32,
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Artifact { source, .. } => Some(source),
            RegistryError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A handle on a registry root directory. Opening performs no I/O; the
/// directory is created lazily on first publish.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    root: PathBuf,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
}

fn version_file(version: u32) -> String {
    format!("v{version:04}.json")
}

fn retired_file(version: u32) -> String {
    format!("v{version:04}.retired.json")
}

/// The per-model canary pointer file name.
const CANARY_FILE: &str = "canary.json";

impl ModelRegistry {
    /// Opens (without touching) the registry rooted at `root`.
    pub fn open(root: &Path) -> Self {
        ModelRegistry {
            root: root.to_path_buf(),
        }
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn model_dir(&self, name: &str) -> Result<PathBuf, RegistryError> {
        if !valid_name(name) {
            return Err(RegistryError::InvalidName(name.to_string()));
        }
        Ok(self.root.join(name))
    }

    /// Scans the model directory once, returning (active, retired)
    /// version lists, each ascending.
    fn scan_versions(&self, name: &str) -> Result<(Vec<u32>, Vec<u32>), RegistryError> {
        let dir = self.model_dir(name)?;
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), Vec::new())),
            Err(e) => {
                return Err(RegistryError::Io {
                    path: dir,
                    source: e,
                })
            }
        };
        let mut active = Vec::new();
        let mut retired = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| RegistryError::Io {
                path: dir.clone(),
                source: e,
            })?;
            let file = entry.file_name();
            let file = file.to_string_lossy();
            // Only `vNNNN.json` / `vNNNN.retired.json` files are
            // versions; temp siblings and foreign files are ignored.
            let Some(rest) = file
                .strip_prefix('v')
                .and_then(|rest| rest.strip_suffix(".json"))
            else {
                continue;
            };
            if let Some(num) = rest.strip_suffix(".retired") {
                if let Ok(v) = num.parse::<u32>() {
                    retired.push(v);
                }
            } else if let Ok(v) = rest.parse::<u32>() {
                active.push(v);
            }
        }
        active.sort_unstable();
        retired.sort_unstable();
        Ok((active, retired))
    }

    /// Published (active) versions of `name`, ascending. A model that was
    /// never published has no versions (empty vec, not an error).
    /// Rolled-back versions are excluded — see
    /// [`ModelRegistry::retired_versions`].
    pub fn versions(&self, name: &str) -> Result<Vec<u32>, RegistryError> {
        Ok(self.scan_versions(name)?.0)
    }

    /// Versions retired by a canary rollback, ascending. They still
    /// reserve their numbers (publish allocates past them) but never
    /// serve.
    pub fn retired_versions(&self, name: &str) -> Result<Vec<u32>, RegistryError> {
        Ok(self.scan_versions(name)?.1)
    }

    /// The version the next publish will allocate: one past the highest
    /// number ever used, active or retired — a rollback must not free its
    /// number for reuse.
    pub fn next_version(&self, name: &str) -> Result<u32, RegistryError> {
        let (active, retired) = self.scan_versions(name)?;
        let max = active
            .last()
            .copied()
            .max(retired.last().copied())
            .unwrap_or(0);
        Ok(max + 1)
    }

    /// The latest published version of `name`.
    pub fn latest(&self, name: &str) -> Result<u32, RegistryError> {
        self.versions(name)?
            .last()
            .copied()
            .ok_or_else(|| RegistryError::NotFound {
                name: name.to_string(),
            })
    }

    /// Publishes a model as the next version of `name`, sealing it into a
    /// checksummed artifact and writing it atomically. Returns the
    /// allocated version number.
    pub fn publish(
        &self,
        name: &str,
        model: &DomainSpecificModel,
        training_fingerprint: u64,
    ) -> Result<u32, RegistryError> {
        let version = self.next_version(name)?;
        self.publish_at(name, version, model, training_fingerprint)?;
        Ok(version)
    }

    /// Publishes a model at an explicit version number. The write is
    /// atomic and idempotent (re-writing the same deterministic model at
    /// the same version replaces the file with identical bytes), which is
    /// what a journaled publisher needs to redo a publish after a crash.
    pub fn publish_at(
        &self,
        name: &str,
        version: u32,
        model: &DomainSpecificModel,
        training_fingerprint: u64,
    ) -> Result<(), RegistryError> {
        let dir = self.model_dir(name)?;
        let path = dir.join(version_file(version));
        model
            .save_artifact(&path, name, training_fingerprint)
            .map_err(|source| RegistryError::Artifact {
                name: name.to_string(),
                version,
                source,
            })?;
        Ok(())
    }

    fn artifact_at(&self, name: &str, version: u32) -> Result<ModelArtifact, RegistryError> {
        let path = self.model_dir(name)?.join(version_file(version));
        ModelArtifact::load(&path).map_err(|source| match &source {
            ArtifactError::Persist(energy_model::persist::PersistError::Io {
                source: e, ..
            }) if e.kind() == io::ErrorKind::NotFound => RegistryError::VersionNotFound {
                name: name.to_string(),
                version,
            },
            _ => RegistryError::Artifact {
                name: name.to_string(),
                version,
                source,
            },
        })
    }

    /// Loads a model (the latest version when `version` is `None`),
    /// verifying schema version and content digest. Returns the model,
    /// its envelope, and the resolved version.
    pub fn load(
        &self,
        name: &str,
        version: Option<u32>,
    ) -> Result<(DomainSpecificModel, ModelArtifact, u32), RegistryError> {
        let version = match version {
            Some(v) => v,
            None => self.latest(name)?,
        };
        let artifact = self.artifact_at(name, version)?;
        let model = artifact.open().map_err(|source| RegistryError::Artifact {
            name: name.to_string(),
            version,
            source,
        })?;
        Ok((model, artifact, version))
    }

    /// [`ModelRegistry::load`] plus a training-fingerprint check: a model
    /// trained under different conditions than the caller expects is
    /// rejected as a typed [`ArtifactError::Fingerprint`] — the
    /// stale-model guard the governor leans on.
    pub fn load_expecting(
        &self,
        name: &str,
        version: Option<u32>,
        fingerprint: u64,
    ) -> Result<(DomainSpecificModel, ModelArtifact, u32), RegistryError> {
        let version = match version {
            Some(v) => v,
            None => self.latest(name)?,
        };
        let artifact = self.artifact_at(name, version)?;
        let model =
            artifact
                .open_expecting(fingerprint)
                .map_err(|source| RegistryError::Artifact {
                    name: name.to_string(),
                    version,
                    source,
                })?;
        Ok((model, artifact, version))
    }

    fn canary_path(&self, name: &str) -> Result<PathBuf, RegistryError> {
        Ok(self.model_dir(name)?.join(CANARY_FILE))
    }

    /// The raw canary pointer, if the file exists — no validation against
    /// the active version set.
    fn canary_pointer(&self, name: &str) -> Result<Option<u32>, RegistryError> {
        let path = self.canary_path(name)?;
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(RegistryError::Io { path, source: e }),
        };
        let pointer: CanaryPointer =
            serde_json::from_str(&text).map_err(|e| RegistryError::Io {
                path,
                source: io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
            })?;
        Ok(Some(pointer.version))
    }

    /// The current canary version, with a self-healing read: a pointer
    /// naming a missing or retired version (a crash between rollback's
    /// retire and pointer removal) is *dangling* and reads as no canary,
    /// reported as the second tuple element so callers can journal it.
    pub fn canary(
        &self,
        name: &str,
    ) -> Result<(Option<u32>, Option<RegistryEvent>), RegistryError> {
        let Some(version) = self.canary_pointer(name)? else {
            return Ok((None, None));
        };
        let (active, _) = self.scan_versions(name)?;
        if active.binary_search(&version).is_ok() {
            Ok((Some(version), None))
        } else {
            Ok((
                None,
                Some(RegistryEvent::DanglingCanary {
                    name: name.to_string(),
                    version,
                }),
            ))
        }
    }

    /// Points the canary channel at an active version. Atomic and
    /// idempotent.
    pub fn set_canary(&self, name: &str, version: u32) -> Result<(), RegistryError> {
        let (active, _) = self.scan_versions(name)?;
        if active.binary_search(&version).is_err() {
            return Err(RegistryError::VersionNotFound {
                name: name.to_string(),
                version,
            });
        }
        let path = self.canary_path(name)?;
        let text = match serde_json::to_string(&CanaryPointer { version }) {
            Ok(t) => t,
            Err(e) => {
                return Err(RegistryError::Io {
                    path,
                    source: io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
                })
            }
        };
        atomic_write_str(&path, &text).map_err(|e| RegistryError::Io {
            path,
            source: io::Error::other(e.to_string()),
        })
    }

    /// Removes the canary pointer if present. Idempotent.
    fn clear_canary(&self, name: &str) -> Result<(), RegistryError> {
        let path = self.canary_path(name)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(RegistryError::Io { path, source: e }),
        }
    }

    /// The latest *stable* version: the highest active version that is
    /// not the current canary. This is what serving loads while a canary
    /// is in flight.
    pub fn stable_latest(&self, name: &str) -> Result<u32, RegistryError> {
        let (canary, _) = self.canary(name)?;
        self.versions(name)?
            .into_iter()
            .rfind(|v| Some(*v) != canary)
            .ok_or_else(|| RegistryError::NotFound {
                name: name.to_string(),
            })
    }

    /// Promotes the canary `version` to stable: the pointer is removed,
    /// and the version — being the highest active — becomes the stable
    /// latest. Idempotent: promoting an already-promoted version (no
    /// pointer, version active) is a no-op, which is what a journaled
    /// publisher needs to redo a promote after a crash. Promoting while
    /// the pointer names a *different* version is a typed error.
    pub fn promote_version(&self, name: &str, version: u32) -> Result<(), RegistryError> {
        match self.canary_pointer(name)? {
            Some(c) if c == version => self.clear_canary(name),
            Some(c) => Err(RegistryError::CanaryMismatch {
                name: name.to_string(),
                version,
                canary: Some(c),
            }),
            None => {
                // Already promoted iff the version is still active.
                let (active, _) = self.scan_versions(name)?;
                if active.binary_search(&version).is_ok() {
                    Ok(())
                } else {
                    Err(RegistryError::CanaryMismatch {
                        name: name.to_string(),
                        version,
                        canary: None,
                    })
                }
            }
        }
    }

    /// Rolls the canary `version` back: its file is renamed to
    /// `vNNNN.retired.json` (reserving the number forever), then the
    /// pointer is removed. The incumbent stable version is untouched.
    /// Idempotent at every step — a crash between the two leaves a
    /// dangling pointer that [`ModelRegistry::canary`] already reads as
    /// "no canary", and redoing the rollback converges.
    pub fn rollback_version(&self, name: &str, version: u32) -> Result<(), RegistryError> {
        let dir = self.model_dir(name)?;
        let active_path = dir.join(version_file(version));
        let retired_path = dir.join(retired_file(version));
        match fs::rename(&active_path, &retired_path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound && retired_path.exists() => {
                // Already retired by a previous (crashed) attempt.
            }
            Err(e) => {
                return Err(RegistryError::Io {
                    path: active_path,
                    source: e,
                })
            }
        }
        match self.canary_pointer(name)? {
            Some(c) if c == version => self.clear_canary(name),
            _ => Ok(()),
        }
    }

    /// The hardened serving load: walks the stable channel newest→oldest
    /// and returns the first version that verifies, skipping corrupt ones
    /// and reporting each skip as a [`RegistryEvent::CorruptSkipped`].
    /// Versions whose training fingerprint does not match
    /// `expected_fingerprint` are skipped *silently*: they belong to a
    /// different training generation (for example a retrain artifact
    /// orphaned by a crash mid-publish), and the serving generation lives
    /// further back. Fails with the newest version's error only when no
    /// stable version fits.
    #[allow(clippy::type_complexity)]
    pub fn load_latest_healthy(
        &self,
        name: &str,
        expected_fingerprint: Option<u64>,
    ) -> Result<(DomainSpecificModel, ModelArtifact, u32, Vec<RegistryEvent>), RegistryError> {
        let (canary, _) = self.canary(name)?;
        let stable: Vec<u32> = self
            .versions(name)?
            .into_iter()
            .filter(|v| Some(*v) != canary)
            .collect();
        if stable.is_empty() {
            return Err(RegistryError::NotFound {
                name: name.to_string(),
            });
        }
        let mut events = Vec::new();
        let mut first_err = None;
        for &version in stable.iter().rev() {
            let result = match expected_fingerprint {
                Some(fp) => self.load_expecting(name, Some(version), fp),
                None => self.load(name, Some(version)),
            };
            match result {
                Ok((model, artifact, v)) => return Ok((model, artifact, v, events)),
                Err(
                    e @ RegistryError::Artifact {
                        source: ArtifactError::Fingerprint { .. },
                        ..
                    },
                ) => {
                    // A different training generation, not corruption:
                    // walk back silently to the serving generation. A
                    // crash-orphaned retrain artifact must never hijack
                    // the stable channel on resume.
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                Err(e) => {
                    events.push(RegistryEvent::CorruptSkipped {
                        name: name.to_string(),
                        version,
                        reason: e.to_string(),
                    });
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        Err(first_err.unwrap_or(RegistryError::NotFound {
            name: name.to_string(),
        }))
    }
}
