//! The versioned on-disk model registry.
//!
//! Layout: one directory per model name under the registry root, one
//! artifact file per published version:
//!
//! ```text
//! registry/
//!   cronos/v0001.json
//!   cronos/v0002.json
//!   ligen/v0001.json
//! ```
//!
//! Every file is a [`ModelArtifact`] envelope written through the atomic
//! persist path (temp + fsync + rename), so a concurrent or crashed
//! publish can never leave a half-written version behind — a version file
//! either exists completely or not at all. Versions are immutable once
//! published; [`ModelRegistry::publish`] always allocates the next number.
//!
//! Loading verifies the envelope (schema version, content digest, and —
//! for [`ModelRegistry::load_expecting`] — the training fingerprint) and
//! surfaces every failure as a typed [`RegistryError`], never a panic:
//! a corrupt registry entry is an expected runtime condition that the
//! governor degrades around.

// The registry is runtime-load infrastructure: typed errors only.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use energy_model::artifact::{ArtifactError, ModelArtifact};
use energy_model::ds_model::DomainSpecificModel;

/// A typed registry failure.
#[derive(Debug)]
pub enum RegistryError {
    /// The model name is not a safe directory name.
    InvalidName(String),
    /// No published version of the model exists.
    NotFound {
        /// The model name looked up.
        name: String,
    },
    /// The requested version does not exist (but the model does).
    VersionNotFound {
        /// The model name looked up.
        name: String,
        /// The missing version.
        version: u32,
    },
    /// The stored artifact failed verification or parsing.
    Artifact {
        /// The model name involved.
        name: String,
        /// The version involved.
        version: u32,
        /// What the envelope verification found.
        source: ArtifactError,
    },
    /// A filesystem operation failed.
    Io {
        /// The path the operation was acting on.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::InvalidName(name) => {
                write!(f, "invalid model name {name:?}: expected [a-z0-9_-]+")
            }
            RegistryError::NotFound { name } => {
                write!(f, "model {name:?} has no published versions")
            }
            RegistryError::VersionNotFound { name, version } => {
                write!(f, "model {name:?} has no version {version}")
            }
            RegistryError::Artifact {
                name,
                version,
                source,
            } => {
                write!(f, "artifact {name:?} v{version}: {source}")
            }
            RegistryError::Io { path, source } => {
                write!(f, "registry io error at {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Artifact { source, .. } => Some(source),
            RegistryError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A handle on a registry root directory. Opening performs no I/O; the
/// directory is created lazily on first publish.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    root: PathBuf,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
}

fn version_file(version: u32) -> String {
    format!("v{version:04}.json")
}

impl ModelRegistry {
    /// Opens (without touching) the registry rooted at `root`.
    pub fn open(root: &Path) -> Self {
        ModelRegistry {
            root: root.to_path_buf(),
        }
    }

    /// The registry root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn model_dir(&self, name: &str) -> Result<PathBuf, RegistryError> {
        if !valid_name(name) {
            return Err(RegistryError::InvalidName(name.to_string()));
        }
        Ok(self.root.join(name))
    }

    /// Published versions of `name`, ascending. A model that was never
    /// published has no versions (empty vec, not an error).
    pub fn versions(&self, name: &str) -> Result<Vec<u32>, RegistryError> {
        let dir = self.model_dir(name)?;
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => {
                return Err(RegistryError::Io {
                    path: dir,
                    source: e,
                })
            }
        };
        let mut versions = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| RegistryError::Io {
                path: dir.clone(),
                source: e,
            })?;
            let file = entry.file_name();
            let file = file.to_string_lossy();
            // Only `vNNNN.json` files are versions; temp siblings and
            // foreign files are ignored.
            if let Some(num) = file
                .strip_prefix('v')
                .and_then(|rest| rest.strip_suffix(".json"))
            {
                if let Ok(v) = num.parse::<u32>() {
                    versions.push(v);
                }
            }
        }
        versions.sort_unstable();
        Ok(versions)
    }

    /// The latest published version of `name`.
    pub fn latest(&self, name: &str) -> Result<u32, RegistryError> {
        self.versions(name)?
            .last()
            .copied()
            .ok_or_else(|| RegistryError::NotFound {
                name: name.to_string(),
            })
    }

    /// Publishes a model as the next version of `name`, sealing it into a
    /// checksummed artifact and writing it atomically. Returns the
    /// allocated version number.
    pub fn publish(
        &self,
        name: &str,
        model: &DomainSpecificModel,
        training_fingerprint: u64,
    ) -> Result<u32, RegistryError> {
        let dir = self.model_dir(name)?;
        let version = self.versions(name)?.last().map_or(1, |v| v + 1);
        let path = dir.join(version_file(version));
        model
            .save_artifact(&path, name, training_fingerprint)
            .map_err(|source| RegistryError::Artifact {
                name: name.to_string(),
                version,
                source,
            })?;
        Ok(version)
    }

    fn artifact_at(&self, name: &str, version: u32) -> Result<ModelArtifact, RegistryError> {
        let path = self.model_dir(name)?.join(version_file(version));
        ModelArtifact::load(&path).map_err(|source| match &source {
            ArtifactError::Persist(energy_model::persist::PersistError::Io {
                source: e, ..
            }) if e.kind() == io::ErrorKind::NotFound => RegistryError::VersionNotFound {
                name: name.to_string(),
                version,
            },
            _ => RegistryError::Artifact {
                name: name.to_string(),
                version,
                source,
            },
        })
    }

    /// Loads a model (the latest version when `version` is `None`),
    /// verifying schema version and content digest. Returns the model,
    /// its envelope, and the resolved version.
    pub fn load(
        &self,
        name: &str,
        version: Option<u32>,
    ) -> Result<(DomainSpecificModel, ModelArtifact, u32), RegistryError> {
        let version = match version {
            Some(v) => v,
            None => self.latest(name)?,
        };
        let artifact = self.artifact_at(name, version)?;
        let model = artifact.open().map_err(|source| RegistryError::Artifact {
            name: name.to_string(),
            version,
            source,
        })?;
        Ok((model, artifact, version))
    }

    /// [`ModelRegistry::load`] plus a training-fingerprint check: a model
    /// trained under different conditions than the caller expects is
    /// rejected as a typed [`ArtifactError::Fingerprint`] — the
    /// stale-model guard the governor leans on.
    pub fn load_expecting(
        &self,
        name: &str,
        version: Option<u32>,
        fingerprint: u64,
    ) -> Result<(DomainSpecificModel, ModelArtifact, u32), RegistryError> {
        let version = match version {
            Some(v) => v,
            None => self.latest(name)?,
        };
        let artifact = self.artifact_at(name, version)?;
        let model =
            artifact
                .open_expecting(fingerprint)
                .map_err(|source| RegistryError::Artifact {
                    name: name.to_string(),
                    version,
                    source,
                })?;
        Ok((model, artifact, version))
    }
}
