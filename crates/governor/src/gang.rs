//! Gang placement: scheduling one domain-decomposed job onto a *set* of
//! fleet devices.
//!
//! A decomposed Cronos run is an all-or-nothing reservation — every slab's
//! device must run in lockstep, so the job needs `num_devices` devices for
//! its whole duration. This module answers the two questions the governor
//! faces when such a job arrives:
//!
//! 1. **Which gang?** [`choose_gang`] picks the energy-optimal
//!    `(device count, core clock)` point from a strong-scaling
//!    [`GangProfile`] under a per-job deadline — the gang sibling of
//!    [`crate::policy::choose_config`], with the same deterministic
//!    `total_cmp` tie-break discipline. Shrinking subdomains buy makespan
//!    but pay halo-exchange and barrier energy, so under a loose deadline
//!    the answer is a small gang at a cheap clock, and under a tight one a
//!    bigger gang at whatever clock still makes the date.
//! 2. **Which devices?** [`reserve_gang`] maps the chosen gang size onto
//!    concrete fleet devices: the `k` earliest-available devices are
//!    reserved together, and the gang starts when the *last* of them
//!    frees — the lockstep start is what distinguishes a gang from `k`
//!    independent placements.
//!
//! Profiles come from measurement
//! ([`GangProfile::from_characterization`] over
//! [`energy_model::DistributedCharacterization`]) or from a trained
//! distributed model's predicted surface — both normalize against the
//! 1-device default-clock anchor, so measured and predicted profiles are
//! interchangeable here.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use energy_model::DistributedCharacterization;
use serde::{Deserialize, Serialize};

/// One strong-scaling operating point: a gang size and a uniform core
/// clock, normalized against the 1-device default-clock anchor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GangPoint {
    /// Devices in the gang.
    pub num_devices: usize,
    /// Core clock every gang member runs at (MHz).
    pub core_mhz: f64,
    /// `anchor_time / time` — above 1 when the gang beats one device.
    pub speedup: f64,
    /// `energy / anchor_energy` — gang total, halo and barrier included.
    pub norm_energy: f64,
}

/// A strong-scaling profile: the 1-device default-clock anchor plus the
/// measured or predicted gang points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GangProfile {
    /// Anchor makespan: one device at the default configuration (s).
    pub default_time_s: f64,
    /// Anchor energy of the same run (J).
    pub default_energy_j: f64,
    /// Gang operating points.
    pub points: Vec<GangPoint>,
}

impl GangProfile {
    /// Builds a profile from a measured strong-scaling characterization.
    pub fn from_characterization(c: &DistributedCharacterization) -> Self {
        GangProfile {
            default_time_s: c.baseline_time_s,
            default_energy_j: c.baseline_energy_j,
            points: c
                .points
                .iter()
                .map(|p| GangPoint {
                    num_devices: p.num_devices,
                    core_mhz: p.core_mhz,
                    speedup: p.speedup,
                    norm_energy: p.norm_energy,
                })
                .collect(),
        }
    }

    /// Predicted makespan of a point (s).
    pub fn time_s(&self, p: &GangPoint) -> f64 {
        self.default_time_s / p.speedup
    }

    /// Predicted gang energy of a point (J).
    pub fn energy_j(&self, p: &GangPoint) -> f64 {
        p.norm_energy * self.default_energy_j
    }
}

/// The gang the governor decided to run: size, clock, and the predicted
/// absolute cost of the choice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GangChoice {
    /// Devices to reserve.
    pub num_devices: usize,
    /// Core clock to pin on every member (MHz).
    pub core_mhz: f64,
    /// Predicted makespan (s).
    pub time_s: f64,
    /// Predicted gang energy (J).
    pub energy_j: f64,
}

/// Tie-break ordering over gang points: fewer devices first (a smaller
/// reservation blocks less of the fleet), then ascending clock — a total
/// order so equal-objective points resolve identically on every run.
fn gang_order(a: &GangPoint, b: &GangPoint) -> std::cmp::Ordering {
    a.num_devices
        .cmp(&b.num_devices)
        .then(a.core_mhz.total_cmp(&b.core_mhz))
}

fn finite_gang(p: &GangPoint) -> bool {
    p.num_devices >= 1 && p.speedup.is_finite() && p.norm_energy.is_finite() && p.speedup > 0.0
}

/// Picks the energy-optimal gang under a deadline: among points that fit
/// the fleet (`num_devices <= fleet_size`) and whose predicted makespan
/// meets `deadline_s`, minimize predicted energy; if nothing is feasible,
/// minimize the damage by running as fast as the profile believes
/// possible. `None` only when no point fits the fleet or none is finite.
pub fn choose_gang(
    profile: &GangProfile,
    fleet_size: usize,
    deadline_s: f64,
) -> Option<GangChoice> {
    let candidates: Vec<&GangPoint> = profile
        .points
        .iter()
        .filter(|p| finite_gang(p) && p.num_devices <= fleet_size)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let feasible: Vec<&&GangPoint> = candidates
        .iter()
        .filter(|p| profile.time_s(p) <= deadline_s)
        .collect();
    let pick = if feasible.is_empty() {
        candidates.iter().max_by(|a, b| {
            a.speedup
                .total_cmp(&b.speedup)
                .then(b.norm_energy.total_cmp(&a.norm_energy))
                .then(gang_order(b, a))
        })?
    } else {
        feasible.into_iter().min_by(|a, b| {
            a.norm_energy
                .total_cmp(&b.norm_energy)
                .then(b.speedup.total_cmp(&a.speedup))
                .then(gang_order(a, b))
        })?
    };
    Some(GangChoice {
        num_devices: pick.num_devices,
        core_mhz: pick.core_mhz,
        time_s: profile.time_s(pick),
        energy_j: profile.energy_j(pick),
    })
}

/// A placed gang: the reserved device indices and the lockstep window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GangReservation {
    /// Reserved device indices, ascending.
    pub devices: Vec<usize>,
    /// When the gang starts: the moment its *last* member frees.
    pub start_s: f64,
    /// `start_s + duration_s` — the new `busy_until` of every member.
    pub end_s: f64,
}

/// Reserves the `num_devices` earliest-available devices for a lockstep
/// window of `duration_s`, advancing their `busy_until` entries. Ties on
/// availability break by device index, so placement is deterministic.
/// Returns `None` when the request is empty or exceeds the fleet.
pub fn reserve_gang(
    busy_until: &mut [f64],
    num_devices: usize,
    duration_s: f64,
) -> Option<GangReservation> {
    if num_devices == 0 || num_devices > busy_until.len() {
        return None;
    }
    let mut order: Vec<usize> = (0..busy_until.len()).collect();
    order.sort_by(|&a, &b| busy_until[a].total_cmp(&busy_until[b]).then(a.cmp(&b)));
    let mut devices: Vec<usize> = order.into_iter().take(num_devices).collect();
    devices.sort_unstable();
    // The gang is lockstep: it starts when its slowest-to-free member
    // does, and every member is held until the common end.
    let start_s = devices
        .iter()
        .map(|&d| busy_until[d])
        .fold(f64::NEG_INFINITY, f64::max);
    let end_s = start_s + duration_s;
    for &d in &devices {
        busy_until[d] = end_s;
    }
    Some(GangReservation {
        devices,
        start_s,
        end_s,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn gp(num_devices: usize, core_mhz: f64, speedup: f64, norm_energy: f64) -> GangPoint {
        GangPoint {
            num_devices,
            core_mhz,
            speedup,
            norm_energy,
        }
    }

    fn profile(points: Vec<GangPoint>) -> GangProfile {
        GangProfile {
            default_time_s: 10.0,
            default_energy_j: 100.0,
            points,
        }
    }

    #[test]
    fn deadline_pressure_prefers_a_bigger_gang_at_a_cheap_clock() {
        // Deadline 9 s. One device must up-clock to make it (expensive);
        // two devices make it at a cheap clock with halo overhead priced
        // in — and still save energy.
        let p = profile(vec![
            gp(1, 1380.0, 1.05, 1.15),
            gp(1, 900.0, 0.85, 0.88),  // cheapest, but misses the deadline
            gp(2, 900.0, 1.45, 0.95),  // feasible and cheaper than 1@1380
            gp(2, 1380.0, 1.80, 1.25), // feasible, faster, dearer
        ]);
        let c = choose_gang(&p, 4, 9.0).unwrap();
        assert_eq!((c.num_devices, c.core_mhz), (2, 900.0));
        assert!((c.energy_j - 95.0).abs() < 1e-9);
        assert!(c.time_s <= 9.0);
    }

    #[test]
    fn loose_deadline_prefers_the_smallest_cheapest_gang() {
        let p = profile(vec![
            gp(1, 900.0, 0.85, 0.88),
            gp(2, 900.0, 1.45, 0.95),
            gp(4, 900.0, 2.40, 1.10),
        ]);
        let c = choose_gang(&p, 4, 100.0).unwrap();
        assert_eq!((c.num_devices, c.core_mhz), (1, 900.0));
    }

    #[test]
    fn nothing_feasible_falls_back_to_the_fastest_gang() {
        let p = profile(vec![gp(1, 1380.0, 1.05, 1.15), gp(4, 1380.0, 3.1, 1.4)]);
        let c = choose_gang(&p, 4, 0.001).unwrap();
        assert_eq!(c.num_devices, 4);
    }

    #[test]
    fn fleet_size_caps_the_gang() {
        let p = profile(vec![gp(2, 900.0, 1.45, 0.95), gp(8, 900.0, 4.0, 1.3)]);
        // An 8-gang would be fastest, but only 4 devices exist.
        let c = choose_gang(&p, 4, 0.001).unwrap();
        assert_eq!(c.num_devices, 2);
        assert_eq!(choose_gang(&p, 1, 10.0), None);
    }

    #[test]
    fn degenerate_points_yield_no_choice() {
        assert_eq!(choose_gang(&profile(vec![]), 4, 10.0), None);
        let nan = profile(vec![gp(2, 900.0, f64::NAN, 0.9)]);
        assert_eq!(choose_gang(&nan, 4, 10.0), None);
    }

    #[test]
    fn equal_objective_gangs_tie_break_deterministically() {
        let a = gp(2, 900.0, 1.45, 0.95);
        let b = gp(4, 1100.0, 1.45, 0.95);
        let p1 = profile(vec![a, b]);
        let p2 = profile(vec![b, a]);
        let c1 = choose_gang(&p1, 8, 100.0).unwrap();
        let c2 = choose_gang(&p2, 8, 100.0).unwrap();
        assert_eq!(c1, c2);
        // Fewer devices wins the tie: a smaller reservation blocks less
        // of the fleet.
        assert_eq!(c1.num_devices, 2);
    }

    #[test]
    fn reservation_takes_the_earliest_free_devices_and_locksteps_the_start() {
        let mut busy = vec![5.0, 1.0, 3.0, 9.0];
        let r = reserve_gang(&mut busy, 2, 4.0).unwrap();
        // Devices 1 (free at 1) and 2 (free at 3): the gang starts when
        // the later of them frees.
        assert_eq!(r.devices, vec![1, 2]);
        assert_eq!(r.start_s, 3.0);
        assert_eq!(r.end_s, 7.0);
        assert_eq!(busy, vec![5.0, 7.0, 7.0, 9.0]);
    }

    #[test]
    fn sequential_reservations_stack_deterministically() {
        let mut busy = vec![0.0; 3];
        let r1 = reserve_gang(&mut busy, 2, 2.0).unwrap();
        assert_eq!(r1.devices, vec![0, 1]);
        assert_eq!((r1.start_s, r1.end_s), (0.0, 2.0));
        // Next 2-gang: device 2 (free now) + the earlier-indexed of the
        // two busy ones; lockstep start at 2.0.
        let r2 = reserve_gang(&mut busy, 2, 2.0).unwrap();
        assert_eq!(r2.devices, vec![0, 2]);
        assert_eq!((r2.start_s, r2.end_s), (2.0, 4.0));
        assert_eq!(busy, vec![4.0, 2.0, 4.0]);
    }

    #[test]
    fn oversized_or_empty_reservations_are_refused() {
        let mut busy = vec![0.0; 2];
        assert_eq!(reserve_gang(&mut busy, 0, 1.0), None);
        assert_eq!(reserve_gang(&mut busy, 3, 1.0), None);
        assert_eq!(busy, vec![0.0, 0.0], "a refused reservation is a no-op");
    }

    #[test]
    fn profile_from_characterization_maps_the_anchor_and_points() {
        use energy_model::{DistributedCharacterization, DistributedPoint};
        let c = DistributedCharacterization {
            device: "Tesla V100".into(),
            workload: "cronos-dist".into(),
            baseline_time_s: 10.0,
            baseline_energy_j: 100.0,
            points: vec![DistributedPoint {
                num_devices: 2,
                core_mhz: 900.0,
                time_s: 6.0,
                energy_j: 95.0,
                speedup: 10.0 / 6.0,
                norm_energy: 0.95,
                exchange_time_s: 0.5,
                exchange_energy_j: 5.0,
                barrier_wait_s: 0.1,
                halo_bytes: 1 << 20,
            }],
        };
        let p = GangProfile::from_characterization(&c);
        assert_eq!(p.default_time_s, 10.0);
        assert_eq!(p.points.len(), 1);
        let pt = &p.points[0];
        assert_eq!((pt.num_devices, pt.core_mhz), (2, 900.0));
        assert!((p.time_s(pt) - 6.0).abs() < 1e-12);
        assert!((p.energy_j(pt) - 95.0).abs() < 1e-12);
    }
}
