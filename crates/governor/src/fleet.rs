//! Fleet-scale scheduling: many heterogeneous devices, one deadline-
//! carrying job stream.
//!
//! The closed loop in [`crate::sim`] picks an energy-optimal clock for
//! *one* GPU. This module scales that decision to a fleet of simulated
//! V100s and MI100s: per-device FIFO queues with work stealing, a
//! placement policy that picks *(device, clock)* per job from
//! per-device-class model artifacts, and the campaign circuit breakers
//! (Closed → Open → HalfOpen → Evicted) so a dying device drains its
//! queue onto the survivors instead of wedging the run.
//!
//! ## Device affinity
//!
//! Predictions must stay device-faithful: a Cronos model fitted on V100
//! characterization data must never silently price an MI100.
//! [`train_and_publish_fleet`] therefore publishes one artifact per
//! *device class* under `"<app>--<class-slug>"`, each fingerprinted with
//! its own class's sweep, and every class runs its own admission-
//! controlled [`PredictionEngine`]. A job that lands — by placement,
//! stealing, or eviction drain — on a class with no matching artifact
//! degrades to the default clock; the degradation is counted in
//! [`DegradationMetrics::affinity_fallbacks`] and journaled. A job that
//! lands on a *different* class that does have an artifact is re-priced
//! through that class's engine before it runs, so the clock it executes
//! at always comes from the model of the device that executes it.
//!
//! ## Differential contract
//!
//! A fleet of exactly one V100 with stealing disabled walks the same
//! code path as [`crate::sim::run_governor`] — same arrival stream, same
//! admission order, same drain batches, same per-job clock decisions,
//! same device state sequence — so its [`DecisionRecord`]s are
//! bit-identical to the single-device run on the same seed. The
//! differential golden test in `tests/fleet.rs` pins this.
//!
//! ## Determinism
//!
//! Every decision is a pure function of `(seed, policies, fault plans)`.
//! Per-device fault streams are split from the shared plan with
//! [`gpu_sim::substream_seed`] — hashed, not offset, so adjacent devices
//! draw statistically independent faults. Ticks are dispatch rounds, not
//! wall clock; stealing and eviction drains visit devices in index
//! order; all float comparisons go through `total_cmp`.

// The fleet must degrade, not die: no unwraps on the runtime path.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use energy_model::campaign::{BreakerState, SlotState};
use energy_model::telemetry::Telemetry;
use energy_model::workflow::{
    characterize_cronos, characterize_ligen, experiment_frequencies, training_set,
};
use energy_model::{training_fingerprint, BreakerConfig, DomainSpecificModel};
use gpu_sim::{Device, DeviceSpec, FaultPlan};
use serde::Serialize;
use synergy::{DegradationMetrics, SynergyQueue};

use crate::policy::{choose_frequency, Policy};
use crate::registry::{ModelRegistry, RegistryError};
use crate::serving::{
    CacheStats, EngineConfig, PredictedProfile, PredictionEngine, PredictionRequest, ServeError,
};
use crate::sim::{
    build_templates, cronos_job_set, execute_job, generate_stream, ligen_job_set, DecisionRecord,
    FallbackReason, GovernorConfig, Job, JobTemplate, ModelFaults, ModelLoader, GOVERNOR_SEED,
};

/// The pinned fleet seed — shared with the single-device experiments so
/// the pinned fleet run replays the exact job stream the single-device
/// baseline sees.
pub const FLEET_SEED: u64 = GOVERNOR_SEED;

/// Purpose discriminator for per-device fault-plan splitting. Purpose 0
/// keeps device 0 on the parent seed (see [`gpu_sim::substream_seed`]),
/// so a single-device fleet replays the un-split plan bit-for-bit.
const PURPOSE_DEVICE_FAULTS: u64 = 0;

/// One device in the fleet.
#[derive(Debug, Clone)]
pub struct FleetDevice {
    /// Unique display name (e.g. `"v100-0"`).
    pub name: String,
    /// The simulated hardware; devices sharing `spec.name` form a class.
    pub spec: DeviceSpec,
    /// Per-device fault override. `None` splits the run's shared
    /// [`FleetConfig::device_faults`] plan by device index; chaos tests
    /// use `Some` to aim deterministic failures at specific devices.
    pub faults: Option<FaultPlan>,
}

impl FleetDevice {
    /// A device drawing its faults from the shared split plan.
    pub fn new(name: &str, spec: DeviceSpec) -> Self {
        FleetDevice {
            name: name.to_string(),
            spec,
            faults: None,
        }
    }
}

/// How jobs are assigned to devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Placement {
    /// Cycle over healthy devices; never consult a model (every job runs
    /// at the default clock). The fleet baseline.
    RoundRobin,
    /// Predict every job on every device class, then place it on the
    /// class with the cheapest feasible predicted energy (fastest class
    /// when nothing is feasible), least-loaded device within the class.
    MinPredictedEnergy,
}

impl Placement {
    /// Stable CLI / report name.
    pub fn name(&self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::MinPredictedEnergy => "min-predicted-energy",
        }
    }
}

/// Whether idle devices may steal queued work, and from whom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum StealPolicy {
    /// Never steal (the single-device differential configuration).
    Disabled,
    /// Steal only from devices of the same class: the stolen job's clock
    /// decision stays valid, so stealing never costs prediction fidelity.
    WithinClass,
    /// Steal from any device; cross-class steals are re-priced through
    /// the thief class's model (or affinity-degraded if it has none).
    Anywhere,
}

impl StealPolicy {
    /// Stable CLI / report name.
    pub fn name(&self) -> &'static str {
        match self {
            StealPolicy::Disabled => "disabled",
            StealPolicy::WithinClass => "within-class",
            StealPolicy::Anywhere => "anywhere",
        }
    }
}

/// Configuration of one fleet run.
#[derive(Clone)]
pub struct FleetConfig {
    /// The devices; `devices[0]`'s class anchors job deadlines.
    pub devices: Vec<FleetDevice>,
    /// Clock-selection policy applied on the placed class's prediction.
    pub policy: Policy,
    /// Device-assignment policy.
    pub placement: Placement,
    /// Work-stealing policy.
    pub steal: StealPolicy,
    /// Number of jobs in the arrival stream.
    pub n_jobs: usize,
    /// Seed of the arrival stream, slack draws, and fault splitting.
    pub seed: u64,
    /// Per-job deadline slack range (anchored on `devices[0]`'s class
    /// default-clock time, exactly as the single-device stream).
    pub slack: (f64, f64),
    /// Safety factor applied to the deadline the policy plans against.
    pub deadline_safety: f64,
    /// Admission queue capacity of each class's serving engine.
    pub queue_capacity: usize,
    /// Maximum requests served per drain call.
    pub max_batch: usize,
    /// Stride thinning the serving-time frequency sweep.
    pub freq_stride: usize,
    /// Stride thinning the training characterization sweep.
    pub train_stride: usize,
    /// Circuit-breaker thresholds (shared by every device slot).
    pub breaker: BreakerConfig,
    /// Execution attempts per job before it is recorded as failed.
    pub max_attempts: u32,
    /// Shared device fault plan, split per device by hashed sub-streams.
    pub device_faults: FaultPlan,
    /// Model-path fault injection (per class loader).
    pub model_faults: ModelFaults,
    /// Optional metrics sink; arming it must not change any result.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl FleetConfig {
    /// The pinned heterogeneous fleet the regression guard runs: two
    /// V100s + two MI100s against the exact pinned single-device stream
    /// (same seed, 40 jobs, same slack and safety), min-energy placement
    /// with class-affine stealing, no faults.
    pub fn pinned() -> Self {
        FleetConfig {
            devices: vec![
                FleetDevice::new("v100-0", DeviceSpec::v100()),
                FleetDevice::new("v100-1", DeviceSpec::v100()),
                FleetDevice::new("mi100-0", DeviceSpec::mi100()),
                FleetDevice::new("mi100-1", DeviceSpec::mi100()),
            ],
            policy: Policy::MinEnergyUnderDeadline,
            placement: Placement::MinPredictedEnergy,
            steal: StealPolicy::WithinClass,
            n_jobs: 40,
            seed: FLEET_SEED,
            slack: (1.15, 1.6),
            deadline_safety: 0.92,
            queue_capacity: 8,
            max_batch: 4,
            freq_stride: 2,
            train_stride: 2,
            breaker: BreakerConfig::default(),
            max_attempts: 5,
            device_faults: FaultPlan::none(),
            model_faults: ModelFaults::none(),
            telemetry: None,
        }
    }

    /// The pinned fleet under the round-robin-at-default-clock baseline.
    pub fn pinned_round_robin() -> Self {
        let mut cfg = FleetConfig::pinned();
        cfg.policy = Policy::DefaultClock;
        cfg.placement = Placement::RoundRobin;
        cfg.steal = StealPolicy::Disabled;
        cfg
    }

    /// A fleet of exactly one device with stealing disabled — the
    /// configuration the differential golden test compares bit-for-bit
    /// against [`crate::sim::run_governor`].
    pub fn single(spec: DeviceSpec, policy: Policy) -> Self {
        let mut cfg = FleetConfig::pinned();
        cfg.devices = vec![FleetDevice::new("solo-0", spec)];
        cfg.policy = policy;
        cfg.placement = Placement::MinPredictedEnergy;
        cfg.steal = StealPolicy::Disabled;
        cfg
    }

    /// The [`GovernorConfig`] a single-device run of `class` under this
    /// fleet configuration corresponds to (the differential counterpart).
    pub fn governor_equivalent(&self, spec: DeviceSpec) -> GovernorConfig {
        let mut gov = GovernorConfig::pinned(self.policy);
        gov.spec = spec;
        gov.n_jobs = self.n_jobs;
        gov.seed = self.seed;
        gov.slack = self.slack;
        gov.deadline_safety = self.deadline_safety;
        gov.queue_capacity = self.queue_capacity;
        gov.max_batch = self.max_batch;
        gov.freq_stride = self.freq_stride;
        gov.train_stride = self.train_stride;
        gov.device_faults = self.device_faults.clone();
        gov.model_faults = self.model_faults.clone();
        gov
    }
}

/// Registry slug of a device class: lowercase, non-alphanumerics folded
/// to `-` (e.g. `"NVIDIA V100"` → `"nvidia-v100"`).
pub fn class_slug(class: &str) -> String {
    class
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// Registry artifact name of `app`'s model for `class`.
pub fn fleet_model_name(app: &str, class: &str) -> String {
    format!("{app}--{}", class_slug(class))
}

fn class_fingerprint(cfg: &FleetConfig, spec: &DeviceSpec) -> u64 {
    let train_freqs = experiment_frequencies(spec, cfg.train_stride);
    training_fingerprint(&spec.name, spec.default_core_mhz, &train_freqs, cfg.seed)
}

/// The distinct device classes of a fleet, in first-appearance order.
/// `classes[0]` is the reference class that anchors job deadlines.
fn distinct_classes(devices: &[FleetDevice]) -> Vec<DeviceSpec> {
    let mut classes: Vec<DeviceSpec> = Vec::new();
    for d in devices {
        if !classes.iter().any(|c| c.name == d.spec.name) {
            classes.push(d.spec.clone());
        }
    }
    classes
}

/// Characterizes and trains one Cronos + one LiGen model *per device
/// class* in `cfg.devices` and publishes each under
/// `"<app>--<class-slug>"` with its class's training fingerprint.
/// Returns the fingerprint per class name.
pub fn train_and_publish_fleet(
    cfg: &FleetConfig,
    registry: &ModelRegistry,
) -> Result<BTreeMap<String, u64>, RegistryError> {
    let mut fingerprints = BTreeMap::new();
    for spec in distinct_classes(&cfg.devices) {
        let freqs = experiment_frequencies(&spec, cfg.train_stride);
        let fingerprint = class_fingerprint(cfg, &spec);

        let cronos_chars = characterize_cronos(&spec, &cronos_job_set(), &freqs, 1, None);
        let cronos_model = DomainSpecificModel::train(
            &training_set(&cronos_chars),
            spec.default_core_mhz,
            cfg.seed,
        );
        registry.publish(
            &fleet_model_name("cronos", &spec.name),
            &cronos_model,
            fingerprint,
        )?;

        let ligen_chars = characterize_ligen(&spec, &ligen_job_set(), &freqs, 1, None);
        let ligen_model = DomainSpecificModel::train(
            &training_set(&ligen_chars),
            spec.default_core_mhz,
            cfg.seed,
        );
        registry.publish(
            &fleet_model_name("ligen", &spec.name),
            &ligen_model,
            fingerprint,
        )?;

        fingerprints.insert(spec.name.clone(), fingerprint);
    }
    Ok(fingerprints)
}

/// One scheduling event in the fleet journal. Everything the metrics
/// claim (steals, trips, evictions, reschedules, affinity degradations)
/// reconciles against these records.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum FleetEvent {
    /// An idle device stole the tail of another device's queue.
    Stolen {
        /// Dispatch round of the steal.
        tick: u64,
        /// The stolen job.
        job_id: u64,
        /// Victim device index.
        from: usize,
        /// Thief device index.
        to: usize,
    },
    /// A breaker tripped; `evicted` marks the permanent case.
    Tripped {
        /// Dispatch round of the trip.
        tick: u64,
        /// Device whose breaker tripped.
        device: usize,
        /// Whether the trip was the device's permanent eviction.
        evicted: bool,
    },
    /// A job moved to another device after a failure or an eviction.
    Rescheduled {
        /// Dispatch round of the reschedule.
        tick: u64,
        /// The moved job.
        job_id: u64,
        /// Device the job left.
        from: usize,
        /// Device the job joined.
        to: usize,
    },
    /// A job ran on a class with no matching model artifact and was
    /// degraded to the default clock (device affinity enforced).
    AffinityDegraded {
        /// Dispatch round of the degradation.
        tick: u64,
        /// The degraded job.
        job_id: u64,
        /// Device (of the artifact-less class) that ran the job.
        device: usize,
    },
}

/// One job's fleet decision: the single-device [`DecisionRecord`] plus
/// where (and how) it ran.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetDecision {
    /// Index of the device that executed the job.
    pub device_index: usize,
    /// Name of the device that executed the job.
    pub device: String,
    /// Device class (spec name) the job executed on.
    pub class: String,
    /// Whether the job was stolen at least once.
    pub stolen: bool,
    /// Execution attempts consumed (1 = succeeded first try).
    pub attempts: u32,
    /// The single-device-shaped decision trail (bit-comparable with
    /// [`crate::sim::GovernorReport::decisions`]).
    pub record: DecisionRecord,
}

/// Per-device totals of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeviceReport {
    /// Device name.
    pub name: String,
    /// Device class (spec name).
    pub class: String,
    /// Jobs this device completed or permanently failed.
    pub jobs_run: usize,
    /// Sum of measured wall time on this device (s).
    pub busy_time_s: f64,
    /// Sum of measured energy on this device (J).
    pub energy_j: f64,
    /// Jobs this device stole from others.
    pub stolen_in: u64,
    /// Breaker trips (including the evicting one).
    pub trips: u32,
    /// Whether the device ended the run evicted.
    pub evicted: bool,
}

/// The result of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetReport {
    /// Clock policy the run executed.
    pub policy: Policy,
    /// Placement policy the run executed.
    pub placement: Placement,
    /// Steal policy the run executed.
    pub steal: StealPolicy,
    /// Stream seed.
    pub seed: u64,
    /// Jobs processed (every submitted job appears exactly once).
    pub n_jobs: usize,
    /// Per-device totals, in fleet order.
    pub devices: Vec<DeviceReport>,
    /// Total measured wall time across devices (s).
    pub total_time_s: f64,
    /// Total measured energy across devices (J).
    pub total_energy_j: f64,
    /// Largest per-device busy time (s) — the fleet makespan proxy.
    pub makespan_s: f64,
    /// Jobs that missed their deadline (incl. failed jobs).
    pub deadline_misses: usize,
    /// `deadline_misses / n_jobs`.
    pub miss_rate: f64,
    /// Jobs that fell back to the default clock (or failed).
    pub fallbacks: usize,
    /// Jobs rejected at every class's admission queue.
    pub admission_rejected: usize,
    /// Jobs stolen by idle devices.
    pub jobs_stolen: u64,
    /// Jobs moved to another device after failures or evictions.
    pub items_rescheduled: u64,
    /// Devices permanently evicted by their breakers.
    pub devices_evicted: u64,
    /// Jobs degraded to the default clock because their executing class
    /// had no matching model artifact.
    pub affinity_fallbacks: u64,
    /// Prediction memo-cache counters, summed over class engines.
    pub cache: CacheStats,
    /// Device degradation counters merged across queues, with the
    /// fleet-level reschedule/eviction/affinity counters folded in.
    pub degradation: DegradationMetrics,
    /// Per-job decision trail, sorted by job id.
    pub decisions: Vec<FleetDecision>,
    /// Scheduling journal, in event order.
    pub journal: Vec<FleetEvent>,
}

/// One per-class serving stack: templates recorded on that class's
/// hardware, its admission-controlled engine, and its lazy model loader.
struct ClassRuntime {
    spec: DeviceSpec,
    templates: Vec<JobTemplate>,
    engine: PredictionEngine,
    loader: ModelLoader,
}

/// A job parked in a device's FIFO ready queue, carrying the clock
/// decision of the class it was priced for.
struct ReadyJob {
    job: Job,
    /// Class whose model produced `requested_mhz`.
    decided_class: usize,
    requested_mhz: Option<f64>,
    predicted_time_s: Option<f64>,
    fallback: Option<FallbackReason>,
    attempts: u32,
    stolen: bool,
}

struct DeviceRuntime {
    name: String,
    class: usize,
    queue: SynergyQueue,
    ready: VecDeque<ReadyJob>,
    slot: SlotState,
    jobs_run: usize,
    busy_time_s: f64,
    energy_j: f64,
    stolen_in: u64,
}

impl DeviceRuntime {
    fn evicted(&self) -> bool {
        self.slot.breaker == BreakerState::Evicted
    }
}

/// The in-flight state of one fleet run.
struct FleetRun<'a> {
    cfg: &'a FleetConfig,
    classes: Vec<ClassRuntime>,
    devices: Vec<DeviceRuntime>,
    tick: u64,
    rr_cursor: usize,
    decisions: Vec<FleetDecision>,
    journal: Vec<FleetEvent>,
    admission_rejected: usize,
    jobs_stolen: u64,
    items_rescheduled: u64,
    devices_evicted: u64,
    affinity_fallbacks: u64,
}

impl FleetRun<'_> {
    /// Whether device `i` may execute a job this round. An open breaker
    /// becomes eligible once its cooldown has elapsed (the next job it
    /// runs is the half-open probe).
    fn available(&self, i: usize) -> bool {
        match self.devices[i].slot.breaker {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { since_tick } => {
                self.tick >= since_tick + self.cfg.breaker.cooldown_ticks
            }
            BreakerState::Evicted => false,
        }
    }

    fn any_survivor(&self) -> bool {
        self.devices.iter().any(|d| !d.evicted())
    }

    /// Next healthy device in round-robin order, preferring available
    /// ones; falls back to any non-evicted (cooling) device.
    fn next_rr_device(&mut self) -> Option<usize> {
        let n = self.devices.len();
        for pass in 0..2 {
            for step in 0..n {
                let i = (self.rr_cursor + step) % n;
                let ok = if pass == 0 {
                    self.available(i)
                } else {
                    !self.devices[i].evicted()
                };
                if ok {
                    self.rr_cursor = (i + 1) % n;
                    return Some(i);
                }
            }
        }
        None
    }

    /// Least-loaded non-evicted device, preferring `class` (when given)
    /// and avoiding `exclude` when any alternative exists. Deterministic:
    /// ties break on the lower device index.
    fn least_loaded(&self, class: Option<usize>, exclude: Option<usize>) -> Option<usize> {
        let candidates = |want_class: Option<usize>, excluded: Option<usize>| {
            self.devices
                .iter()
                .enumerate()
                .filter(|(i, d)| {
                    !d.evicted() && want_class.is_none_or(|c| d.class == c) && excluded != Some(*i)
                })
                .min_by_key(|(i, d)| (d.ready.len(), *i))
                .map(|(i, _)| i)
        };
        candidates(class, exclude)
            .or_else(|| candidates(class, None))
            .or_else(|| candidates(None, exclude))
            .or_else(|| candidates(None, None))
    }

    /// Records a job that can never run (no devices left): conservation
    /// demands a failed decision, not a silent drop.
    fn record_unrunnable(&mut self, rj: ReadyJob, device_index: usize) {
        let class = rj.decided_class.min(self.classes.len() - 1);
        let template = &self.classes[class].templates[rj.job.template];
        self.decisions.push(FleetDecision {
            device_index,
            device: self
                .devices
                .get(device_index)
                .map(|d| d.name.clone())
                .unwrap_or_default(),
            class: self.classes[class].spec.name.clone(),
            stolen: rj.stolen,
            attempts: rj.attempts,
            record: DecisionRecord {
                job_id: rj.job.id,
                app: template.app.to_string(),
                label: template.label.clone(),
                requested_mhz: None,
                fallback: Some(FallbackReason::LaunchFailed),
                deadline_s: rj.job.deadline_s,
                predicted_time_s: rj.predicted_time_s,
                measured_time_s: 0.0,
                measured_energy_j: 0.0,
                completed: false,
                met_deadline: false,
            },
        });
    }

    /// Applies one failure to device `i`'s breaker; on eviction, drains
    /// its remaining queue onto the survivors.
    fn on_device_failure(&mut self, i: usize) {
        let threshold = self.cfg.breaker.failure_threshold;
        let (tripped, failures) = match self.devices[i].slot.breaker {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let f = consecutive_failures + 1;
                (f >= threshold, f)
            }
            // A failed half-open probe trips immediately.
            BreakerState::HalfOpen => (true, threshold),
            // Unreachable: only executing devices fail, and executing
            // promotes Open to HalfOpen first.
            BreakerState::Open { .. } | BreakerState::Evicted => (true, threshold),
        };
        if !tripped {
            self.devices[i].slot.breaker = BreakerState::Closed {
                consecutive_failures: failures,
            };
            return;
        }
        self.devices[i].slot.trips += 1;
        let evicted = self.devices[i].slot.trips >= self.cfg.breaker.max_trips;
        self.journal.push(FleetEvent::Tripped {
            tick: self.tick,
            device: i,
            evicted,
        });
        if evicted {
            self.devices[i].slot.breaker = BreakerState::Evicted;
            self.devices_evicted += 1;
            self.drain_evicted(i);
        } else {
            self.devices[i].slot.breaker = BreakerState::Open {
                since_tick: self.tick,
            };
        }
    }

    /// Moves an evicted device's queued jobs onto the survivors (or
    /// records them as failed when no survivor remains).
    fn drain_evicted(&mut self, i: usize) {
        while let Some(rj) = self.devices[i].ready.pop_front() {
            match self.least_loaded(None, Some(i)) {
                Some(target) => {
                    self.items_rescheduled += 1;
                    self.journal.push(FleetEvent::Rescheduled {
                        tick: self.tick,
                        job_id: rj.job.id,
                        from: i,
                        to: target,
                    });
                    self.devices[target].ready.push_back(rj);
                }
                None => self.record_unrunnable(rj, i),
            }
        }
    }

    /// Work stealing: each idle available device takes the tail of the
    /// deepest eligible queue. Device order, then victim by (depth,
    /// index), keeps the round deterministic.
    fn steal_round(&mut self) {
        for thief in 0..self.devices.len() {
            if !self.available(thief) || !self.devices[thief].ready.is_empty() {
                continue;
            }
            let thief_class = self.devices[thief].class;
            let victim = self
                .devices
                .iter()
                .enumerate()
                .filter(|(j, d)| {
                    *j != thief
                        && !d.evicted()
                        && match self.cfg.steal {
                            StealPolicy::Disabled => false,
                            StealPolicy::WithinClass => d.class == thief_class,
                            StealPolicy::Anywhere => true,
                        }
                        // An available victim runs its head this round;
                        // only a surplus is worth stealing. A cooling
                        // victim's whole queue is stalled — steal from 1.
                        && d.ready.len() >= if self.available_flag(*j) { 2 } else { 1 }
                })
                .max_by_key(|(j, d)| (d.ready.len(), usize::MAX - *j))
                .map(|(j, _)| j);
            let Some(victim) = victim else { continue };
            let Some(mut rj) = self.devices[victim].ready.pop_back() else {
                continue;
            };
            rj.stolen = true;
            self.jobs_stolen += 1;
            self.devices[thief].stolen_in += 1;
            self.journal.push(FleetEvent::Stolen {
                tick: self.tick,
                job_id: rj.job.id,
                from: victim,
                to: thief,
            });
            self.devices[thief].ready.push_back(rj);
        }
    }

    // `available` borrowed immutably inside iterator chains above.
    fn available_flag(&self, i: usize) -> bool {
        self.available(i)
    }

    /// Executes one ready job on device `i`, enforcing device affinity,
    /// updating the breaker, and either recording the decision or
    /// rescheduling the job after a permanent launch failure.
    fn execute_on(&mut self, i: usize, mut rj: ReadyJob) {
        // Promote a cooled-down open breaker: this execution is a probe.
        if let BreakerState::Open { .. } = self.devices[i].slot.breaker {
            self.devices[i].slot.breaker = BreakerState::HalfOpen;
        }

        let class_i = self.devices[i].class;
        if self.cfg.placement != Placement::RoundRobin {
            let app = self.classes[0].templates[rj.job.template].app;
            if !self.classes[class_i].engine.has_model(app) {
                // Device affinity: no artifact for this class — default
                // clock, with the placement-time failure reason kept
                // when one exists (a stolen/rescheduled clock decision
                // becomes an explicit affinity degradation).
                self.affinity_fallbacks += 1;
                self.journal.push(FleetEvent::AffinityDegraded {
                    tick: self.tick,
                    job_id: rj.job.id,
                    device: i,
                });
                rj.requested_mhz = None;
                rj.predicted_time_s = None;
                rj.fallback = Some(rj.fallback.unwrap_or(FallbackReason::AffinityDegraded));
                rj.decided_class = class_i;
            } else if (rj.fallback.is_none()
                && rj.requested_mhz.is_some()
                && rj.decided_class != class_i)
                || rj.fallback == Some(FallbackReason::AffinityDegraded)
            {
                // Cross-class arrival with a foreign clock decision:
                // re-price through the executing class's model so the
                // requested clock is always device-faithful. A job that
                // was affinity-degraded on a bare class recovers here —
                // this class has an artifact, so price it properly.
                let request = PredictionRequest {
                    job_id: rj.job.id,
                    app: app.to_string(),
                    features: self.classes[0].templates[rj.job.template].features.clone(),
                };
                match self.classes[class_i].engine.serve_one(&request) {
                    Ok(profile) => {
                        let planned = rj.job.deadline_s * self.cfg.deadline_safety;
                        let (requested, predicted) =
                            resolve_clock(self.cfg.policy, &profile, planned);
                        rj.requested_mhz = requested;
                        rj.predicted_time_s = predicted;
                        rj.fallback = None;
                        rj.decided_class = class_i;
                    }
                    Err(_) => {
                        self.affinity_fallbacks += 1;
                        self.journal.push(FleetEvent::AffinityDegraded {
                            tick: self.tick,
                            job_id: rj.job.id,
                            device: i,
                        });
                        rj.requested_mhz = None;
                        rj.predicted_time_s = None;
                        rj.fallback = Some(FallbackReason::AffinityDegraded);
                        rj.decided_class = class_i;
                    }
                }
            }
        }

        let record = execute_job(
            &self.classes[class_i].templates[rj.job.template],
            &rj.job,
            rj.requested_mhz,
            rj.predicted_time_s,
            rj.fallback,
            &mut self.devices[i].queue,
        );

        if record.completed {
            self.devices[i].slot.breaker = BreakerState::Closed {
                consecutive_failures: 0,
            };
            let d = &mut self.devices[i];
            d.jobs_run += 1;
            d.busy_time_s += record.measured_time_s;
            d.energy_j += record.measured_energy_j;
            self.decisions.push(FleetDecision {
                device_index: i,
                device: self.devices[i].name.clone(),
                class: self.classes[class_i].spec.name.clone(),
                stolen: rj.stolen,
                attempts: rj.attempts + 1,
                record,
            });
            return;
        }

        // Permanent launch failure: count it against the breaker, then
        // retry the job elsewhere while attempts and devices remain.
        self.on_device_failure(i);
        rj.attempts += 1;
        if rj.attempts < self.cfg.max_attempts {
            if let Some(target) = self.least_loaded(None, Some(i)) {
                self.items_rescheduled += 1;
                self.journal.push(FleetEvent::Rescheduled {
                    tick: self.tick,
                    job_id: rj.job.id,
                    from: i,
                    to: target,
                });
                self.devices[target].ready.push_back(rj);
                return;
            }
        }
        self.devices[i].jobs_run += 1;
        self.decisions.push(FleetDecision {
            device_index: i,
            device: self.devices[i].name.clone(),
            class: self.classes[class_i].spec.name.clone(),
            stolen: rj.stolen,
            attempts: rj.attempts,
            record,
        });
    }

    /// Runs dispatch rounds until every ready queue is empty. Each round
    /// is one breaker tick: steals first, then one job per available
    /// device in index order.
    fn dispatch_until_drained(&mut self) {
        loop {
            self.tick += 1;
            if self.cfg.steal != StealPolicy::Disabled {
                self.steal_round();
            }
            let mut executed = false;
            for i in 0..self.devices.len() {
                if !self.available(i) {
                    continue;
                }
                let Some(rj) = self.devices[i].ready.pop_front() else {
                    continue;
                };
                self.execute_on(i, rj);
                executed = true;
            }
            if executed {
                continue;
            }
            if self.devices.iter().all(|d| d.ready.is_empty()) {
                return;
            }
            if !self.any_survivor() {
                // Jobs remain but every device is gone: record them all.
                for i in 0..self.devices.len() {
                    while let Some(rj) = self.devices[i].ready.pop_front() {
                        self.record_unrunnable(rj, i);
                    }
                }
                return;
            }
            // Otherwise queued work waits on a cooling breaker; the tick
            // advance at the top of the loop runs the cooldown forward.
        }
    }
}

/// Picks the clock `policy` requests from `profile` against `planned`
/// deadline, mirroring the single-device decision float-for-float.
fn resolve_clock(
    policy: Policy,
    profile: &PredictedProfile,
    planned_deadline_s: f64,
) -> (Option<f64>, Option<f64>) {
    match choose_frequency(policy, profile, planned_deadline_s) {
        Some(freq) => {
            let predicted = profile
                .pareto
                .iter()
                .find(|p| p.freq_mhz == freq)
                .map(|p| profile.default_time_s / p.speedup);
            (Some(freq), predicted)
        }
        None => (None, Some(profile.default_time_s)),
    }
}

/// One class's view of a job at placement time.
enum ClassCandidate {
    /// The class served a prediction.
    Predicted {
        requested_mhz: Option<f64>,
        predicted_time_s: Option<f64>,
        predicted_energy_j: f64,
        feasible: bool,
    },
    /// The class could not serve (no artifact, load fault, …).
    Unserved { reason: FallbackReason },
}

/// Runs the fleet closed loop against a registry populated by
/// [`train_and_publish_fleet`] (or deliberately under-populated, to
/// exercise affinity fallbacks). Infallible by design: every failure
/// mode becomes a recorded fallback or a failed decision, never an
/// error or a wedge.
pub fn run_fleet(cfg: &FleetConfig, registry: &ModelRegistry) -> FleetReport {
    let class_specs = distinct_classes(&cfg.devices);
    if cfg.devices.is_empty() || class_specs.is_empty() {
        return empty_report(cfg);
    }

    let classes: Vec<ClassRuntime> = class_specs
        .iter()
        .map(|spec| ClassRuntime {
            spec: spec.clone(),
            templates: build_templates(spec),
            engine: PredictionEngine::new(EngineConfig {
                freqs: experiment_frequencies(spec, cfg.freq_stride),
                queue_capacity: cfg.queue_capacity,
                max_batch: cfg.max_batch,
            }),
            loader: ModelLoader::new(class_fingerprint(cfg, spec)),
        })
        .collect();
    let class_index: BTreeMap<String, usize> = class_specs
        .iter()
        .enumerate()
        .map(|(i, s)| (s.name.clone(), i))
        .collect();

    let devices: Vec<DeviceRuntime> = cfg
        .devices
        .iter()
        .enumerate()
        .map(|(i, fd)| {
            let faults = fd.faults.clone().unwrap_or_else(|| {
                cfg.device_faults
                    .split_for_device(i as u64, PURPOSE_DEVICE_FAULTS)
            });
            let mut device = Device::with_faults(fd.spec.clone(), faults);
            device.set_trace_capacity(Some(0));
            DeviceRuntime {
                name: fd.name.clone(),
                class: *class_index.get(&fd.spec.name).unwrap_or(&0),
                queue: SynergyQueue::for_device(device),
                ready: VecDeque::new(),
                slot: SlotState {
                    breaker: BreakerState::Closed {
                        consecutive_failures: 0,
                    },
                    trips: 0,
                },
                jobs_run: 0,
                busy_time_s: 0.0,
                energy_j: 0.0,
                stolen_in: 0,
            }
        })
        .collect();

    // The arrival stream: identical to the single-device stream on the
    // reference class (deadlines anchor on `classes[0]` default times).
    let bursts = generate_stream(cfg.seed, cfg.n_jobs, cfg.slack, &classes[0].templates);

    let mut run = FleetRun {
        cfg,
        classes,
        devices,
        tick: 0,
        rr_cursor: 0,
        decisions: Vec::with_capacity(cfg.n_jobs),
        journal: Vec::new(),
        admission_rejected: 0,
        jobs_stolen: 0,
        items_rescheduled: 0,
        devices_evicted: 0,
        affinity_fallbacks: 0,
    };

    for burst in &bursts {
        if !run.any_survivor() {
            for job in burst {
                run.record_unrunnable(
                    ReadyJob {
                        job: *job,
                        decided_class: 0,
                        requested_mhz: None,
                        predicted_time_s: None,
                        fallback: Some(FallbackReason::LaunchFailed),
                        attempts: 0,
                        stolen: false,
                    },
                    0,
                );
            }
            continue;
        }
        match cfg.placement {
            Placement::RoundRobin => place_round_robin(&mut run, burst),
            Placement::MinPredictedEnergy => place_min_energy(&mut run, registry, burst),
        }
        run.dispatch_until_drained();
    }

    run.decisions.sort_by_key(|d| d.record.job_id);
    finish_report(cfg, run)
}

/// Round-robin placement: no prediction, default clock everywhere.
fn place_round_robin(run: &mut FleetRun<'_>, burst: &[Job]) {
    for job in burst {
        let rj = ReadyJob {
            job: *job,
            decided_class: 0,
            requested_mhz: None,
            predicted_time_s: None,
            fallback: None,
            attempts: 0,
            stolen: false,
        };
        match run.next_rr_device() {
            Some(i) => {
                let rj = ReadyJob {
                    decided_class: run.devices[i].class,
                    ..rj
                };
                run.devices[i].ready.push_back(rj);
            }
            None => run.record_unrunnable(rj, 0),
        }
    }
}

/// Min-predicted-energy placement: every admitted job is predicted on
/// every class; the cheapest feasible class wins (fastest class when
/// nothing is feasible), least-loaded device within it.
fn place_min_energy(run: &mut FleetRun<'_>, registry: &ModelRegistry, burst: &[Job]) {
    let cfg = run.cfg;
    // Admission: the whole burst hits every class queue before any
    // draining — exactly the single-device shape, per class.
    let mut admitted: Vec<Vec<usize>> = vec![Vec::new(); burst.len()];
    for (b, job) in burst.iter().enumerate() {
        let app = run.classes[0].templates[job.template].app;
        let features = run.classes[0].templates[job.template].features.clone();
        for c in 0..run.classes.len() {
            let class = &mut run.classes[c];
            let registry_name = fleet_model_name(app, &class.spec.name);
            class.loader.ensure_named(
                app,
                &registry_name,
                &cfg.model_faults,
                registry,
                &mut class.engine,
            );
            let request = PredictionRequest {
                job_id: job.id,
                app: app.to_string(),
                features: features.clone(),
            };
            if class.engine.try_enqueue(request).is_ok() {
                admitted[b].push(c);
            }
        }
    }

    // Jobs every class rejected still run — at the default clock on the
    // next round-robin device, recorded as admission fallbacks.
    for (b, job) in burst.iter().enumerate() {
        if !admitted[b].is_empty() {
            continue;
        }
        run.admission_rejected += 1;
        let rj = ReadyJob {
            job: *job,
            decided_class: 0,
            requested_mhz: None,
            predicted_time_s: None,
            fallback: Some(FallbackReason::AdmissionRejected),
            attempts: 0,
            stolen: false,
        };
        match run.next_rr_device() {
            Some(i) => {
                let rj = ReadyJob {
                    decided_class: run.devices[i].class,
                    ..rj
                };
                run.execute_on(i, rj);
            }
            None => run.record_unrunnable(rj, 0),
        }
    }

    // Serve every class queue to empty, batch by batch, and collect the
    // per-(job, class) profiles.
    let mut served: BTreeMap<(u64, usize), Result<Arc<PredictedProfile>, ServeError>> =
        BTreeMap::new();
    for c in 0..run.classes.len() {
        while run.classes[c].engine.queue_len() > 0 {
            for (request, result) in run.classes[c].engine.drain_batch() {
                served.insert((request.job_id, c), result);
            }
        }
    }

    // Decide (class, clock) per job in arrival order and park it on the
    // least-loaded device of the winning class.
    for (b, job) in burst.iter().enumerate() {
        if admitted[b].is_empty() {
            continue;
        }
        let planned = job.deadline_s * cfg.deadline_safety;
        let candidates: Vec<(usize, ClassCandidate)> = admitted[b]
            .iter()
            .map(|&c| {
                let candidate = match served.get(&(job.id, c)) {
                    Some(Ok(profile)) => {
                        let (requested, predicted) = resolve_clock(cfg.policy, profile, planned);
                        let predicted_energy_j = match requested {
                            Some(freq) => profile
                                .pareto
                                .iter()
                                .find(|p| p.freq_mhz == freq)
                                .map(|p| profile.default_energy_j * p.norm_energy)
                                .unwrap_or(profile.default_energy_j),
                            None => profile.default_energy_j,
                        };
                        let feasible = predicted.map(|t| t <= planned).unwrap_or(false);
                        ClassCandidate::Predicted {
                            requested_mhz: requested,
                            predicted_time_s: predicted,
                            predicted_energy_j,
                            feasible,
                        }
                    }
                    Some(Err(ServeError::ModelUnavailable { app })) => ClassCandidate::Unserved {
                        reason: run.classes[c].loader.failure_for(app),
                    },
                    Some(Err(ServeError::FeatureWidth { .. } | ServeError::ConfigWidth { .. })) => {
                        ClassCandidate::Unserved {
                            reason: FallbackReason::StaleArtifact,
                        }
                    }
                    None => ClassCandidate::Unserved {
                        reason: FallbackReason::ModelMissing,
                    },
                };
                (c, candidate)
            })
            .collect();

        // Cheapest feasible predicted class; fastest predicted class
        // when nothing is feasible; placement fallback when no class
        // served at all. Ties break on the lower class index.
        let predicted: Vec<(usize, &ClassCandidate)> = candidates
            .iter()
            .filter(|(_, c)| matches!(c, ClassCandidate::Predicted { .. }))
            .map(|(i, c)| (*i, c))
            .collect();
        let choice = {
            let feasible: Vec<&(usize, &ClassCandidate)> = predicted
                .iter()
                .filter(|(_, c)| matches!(c, ClassCandidate::Predicted { feasible: true, .. }))
                .collect();
            let pool: Vec<&(usize, &ClassCandidate)> = if feasible.is_empty() {
                predicted.iter().collect()
            } else {
                feasible
            };
            if feasible_pool_is_energy_ranked(&pool) {
                pool.into_iter()
                    .min_by(|(_, a), (_, b)| {
                        candidate_energy(a)
                            .total_cmp(&candidate_energy(b))
                            .then(std::cmp::Ordering::Equal)
                    })
                    .map(|(c, cand)| (*c, *cand))
            } else {
                pool.into_iter()
                    .min_by(|(_, a), (_, b)| candidate_time(a).total_cmp(&candidate_time(b)))
                    .map(|(c, cand)| (*c, *cand))
            }
        };

        let rj = match choice {
            Some((
                class,
                ClassCandidate::Predicted {
                    requested_mhz,
                    predicted_time_s,
                    ..
                },
            )) => ReadyJob {
                job: *job,
                decided_class: class,
                requested_mhz: *requested_mhz,
                predicted_time_s: *predicted_time_s,
                fallback: None,
                attempts: 0,
                stolen: false,
            },
            // No class served: default clock with the first class's
            // recorded failure reason.
            _ => {
                let reason = candidates
                    .first()
                    .map(|(_, c)| match c {
                        ClassCandidate::Unserved { reason } => *reason,
                        ClassCandidate::Predicted { .. } => FallbackReason::ModelMissing,
                    })
                    .unwrap_or(FallbackReason::ModelMissing);
                ReadyJob {
                    job: *job,
                    decided_class: 0,
                    requested_mhz: None,
                    predicted_time_s: None,
                    fallback: Some(reason),
                    attempts: 0,
                    stolen: false,
                }
            }
        };
        let target = run
            .least_loaded(Some(rj.decided_class), None)
            .or_else(|| run.least_loaded(None, None));
        match target {
            Some(i) => run.devices[i].ready.push_back(rj),
            None => run.record_unrunnable(rj, 0),
        }
    }
}

fn candidate_energy(c: &ClassCandidate) -> f64 {
    match c {
        ClassCandidate::Predicted {
            predicted_energy_j, ..
        } => *predicted_energy_j,
        ClassCandidate::Unserved { .. } => f64::INFINITY,
    }
}

fn candidate_time(c: &ClassCandidate) -> f64 {
    match c {
        ClassCandidate::Predicted {
            predicted_time_s, ..
        } => predicted_time_s.unwrap_or(f64::INFINITY),
        ClassCandidate::Unserved { .. } => f64::INFINITY,
    }
}

/// Whether the selection pool should rank by energy (any feasible
/// candidate exists) or by speed (deadline already lost everywhere).
fn feasible_pool_is_energy_ranked(pool: &[&(usize, &ClassCandidate)]) -> bool {
    pool.iter()
        .any(|(_, c)| matches!(c, ClassCandidate::Predicted { feasible: true, .. }))
}

fn empty_report(cfg: &FleetConfig) -> FleetReport {
    FleetReport {
        policy: cfg.policy,
        placement: cfg.placement,
        steal: cfg.steal,
        seed: cfg.seed,
        n_jobs: 0,
        devices: Vec::new(),
        total_time_s: 0.0,
        total_energy_j: 0.0,
        makespan_s: 0.0,
        deadline_misses: 0,
        miss_rate: 0.0,
        fallbacks: 0,
        admission_rejected: 0,
        jobs_stolen: 0,
        items_rescheduled: 0,
        devices_evicted: 0,
        affinity_fallbacks: 0,
        cache: CacheStats::default(),
        degradation: DegradationMetrics::default(),
        decisions: Vec::new(),
        journal: Vec::new(),
    }
}

fn finish_report(cfg: &FleetConfig, run: FleetRun<'_>) -> FleetReport {
    let FleetRun {
        classes,
        devices,
        decisions,
        journal,
        admission_rejected,
        jobs_stolen,
        items_rescheduled,
        devices_evicted,
        affinity_fallbacks,
        ..
    } = run;

    let deadline_misses = decisions.iter().filter(|d| !d.record.met_deadline).count();
    let fallbacks = decisions
        .iter()
        .filter(|d| d.record.fallback.is_some())
        .count();

    let mut cache = CacheStats::default();
    for class in &classes {
        cache.accumulate(class.engine.cache_stats());
    }
    let mut degradation = DegradationMetrics::default();
    for d in &devices {
        degradation.merge(&d.queue.degradation());
    }
    degradation.items_rescheduled += items_rescheduled;
    degradation.devices_evicted += devices_evicted;
    degradation.affinity_fallbacks += affinity_fallbacks;

    let device_reports: Vec<DeviceReport> = devices
        .iter()
        .map(|d| DeviceReport {
            name: d.name.clone(),
            class: classes[d.class].spec.name.clone(),
            jobs_run: d.jobs_run,
            busy_time_s: d.busy_time_s,
            energy_j: d.energy_j,
            stolen_in: d.stolen_in,
            trips: d.slot.trips,
            evicted: d.evicted(),
        })
        .collect();

    let report = FleetReport {
        policy: cfg.policy,
        placement: cfg.placement,
        steal: cfg.steal,
        seed: cfg.seed,
        n_jobs: decisions.len(),
        total_time_s: decisions.iter().map(|d| d.record.measured_time_s).sum(),
        total_energy_j: decisions.iter().map(|d| d.record.measured_energy_j).sum(),
        makespan_s: device_reports
            .iter()
            .map(|d| d.busy_time_s)
            .fold(0.0, f64::max),
        deadline_misses,
        miss_rate: if decisions.is_empty() {
            0.0
        } else {
            deadline_misses as f64 / decisions.len() as f64
        },
        fallbacks,
        admission_rejected,
        jobs_stolen,
        items_rescheduled,
        devices_evicted,
        affinity_fallbacks,
        cache,
        degradation,
        devices: device_reports,
        decisions,
        journal,
    };

    // Telemetry is observation-only: armed or not, the report above is
    // already complete and bit-identical.
    if let Some(telemetry) = &cfg.telemetry {
        let registry = telemetry.registry();
        registry
            .counter("fleet.jobs_total")
            .add(report.n_jobs as u64);
        registry
            .counter("fleet.deadline_misses")
            .add(report.deadline_misses as u64);
        registry
            .counter("fleet.fallbacks")
            .add(report.fallbacks as u64);
        registry
            .counter("fleet.jobs_stolen")
            .add(report.jobs_stolen);
        registry
            .counter("fleet.items_rescheduled")
            .add(report.items_rescheduled);
        registry
            .counter("fleet.devices_evicted")
            .add(report.devices_evicted);
        registry
            .counter("fleet.affinity_fallbacks")
            .add(report.affinity_fallbacks);
        registry
            .gauge("fleet.total_energy_j")
            .set(report.total_energy_j);
        registry.gauge("fleet.makespan_s").set(report.makespan_s);
        registry.gauge("fleet.miss_rate").set(report.miss_rate);
    }

    report
}
