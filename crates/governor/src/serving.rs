//! Batched prediction serving: admission control + a prediction memo cache.
//!
//! The governor's decision loop asks the same question over and over —
//! *"what does the model predict for this input across the frequency
//! sweep?"* — and real arrival streams are heavily repetitive (the same
//! ligand batches and grid shapes recur). Random-forest inference over a
//! ~100-point frequency sweep is the expensive step of a decision, so the
//! engine in this module puts two familiar pieces in front of it:
//!
//! * an **admission-controlled bounded queue**: requests are enqueued with
//!   [`PredictionEngine::try_enqueue`] and rejected (not blocked, not
//!   dropped silently) when the queue is full, so a burst can never grow
//!   memory without bound, and the caller gets a typed
//!   [`AdmissionError::QueueFull`] it can turn into a default-clock
//!   fallback;
//! * a **quantized-feature memo cache** with the same design discipline as
//!   `gpu_sim::pricing::PriceTable`: FNV-1a word hashing into a custom
//!   map hasher, per-key overflow chains verified by full key equality
//!   (64-bit collisions degrade to one extra compare, never to a wrong
//!   answer), and relaxed-atomic hit/miss/collision counters surfaced as
//!   [`CacheStats`].
//!
//! The cache is **sharded**: [`N_SHARDS`] independent maps, each behind
//! its own `RwLock` with its own counters, selected by the *high* bits of
//! the key digest (the map indexes by the full digest, so low bits keep
//! their within-shard entropy). Concurrent submitters touch disjoint
//! shards instead of serializing on one lock; [`CacheStats`] totals are
//! folded across shards on read.
//!
//! Cache misses in a drained batch are not served row-at-a-time: they are
//! grouped per app and evaluated through
//! `DomainSpecificModel::predict_curves_batch`, which walks the flattened
//! struct-of-arrays forest (`ml::flat`) feature-major across the whole
//! batch — bit-identical to the pointer walk, several times faster.
//!
//! Features are quantized onto a 1/1024 grid before keying, so the cache
//! key is exact integer data — two requests whose features round to the
//! same grid cell share a profile. The workloads' feature spaces are
//! integer-valued (grid dimensions, ligand counts), so quantization is
//! lossless there; it exists to keep float bit-noise from defeating
//! memoization if a caller computes features.

// Serving is runtime infrastructure: typed errors, no panics.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::BuildHasherDefault;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use energy_model::ds_model::{CurvePrediction, LatticePredictedPoint, PredictedPoint};
use energy_model::pareto::pareto_front_indices;
use energy_model::DomainSpecificModel;
use serde::Serialize;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// log2 of the cache shard count.
const SHARD_BITS: u32 = 4;

/// Number of independent cache shards. A compile-time constant (not an
/// [`EngineConfig`] knob) so existing config literals stay valid; 16 locks
/// comfortably out-provisions the worker counts this workspace targets.
pub const N_SHARDS: usize = 1 << SHARD_BITS;

/// Shard selector: the digest's *high* bits. The within-shard map hashes
/// the full 64-bit digest, so discarding low bits here costs no entropy
/// where the map needs it.
#[inline]
fn shard_index(digest: u64) -> usize {
    (digest >> (64 - SHARD_BITS)) as usize
}

/// Feature quantization: 1024 steps per unit. Integer-valued features
/// (every workload feature in this workspace) round-trip exactly.
const QUANT_STEPS_PER_UNIT: f64 = 1024.0;

#[inline]
fn fnv_word(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// FNV-1a over a string, word-at-a-time, with the length folded in as a
/// separator (same framing as `gpu_sim::pricing::kernel_cache_id`).
fn fnv_str(mut h: u64, s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let mut word = [0u8; 8];
        word.copy_from_slice(c);
        h = fnv_word(h, u64::from_le_bytes(word));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h = fnv_word(h, u64::from_le_bytes(last));
    }
    fnv_word(h, bytes.len() as u64 ^ 0xff00_0000_0000_0000)
}

/// Map hasher for the cache: keys are already FNV digests, so fold the
/// single word and skip SipHash (see `PriceTable`'s `KeyHasher`).
#[derive(Default)]
struct DigestHasher(u64);

impl std::hash::Hasher for DigestHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 = fnv_word(self.0, *b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = fnv_word(self.0, n);
    }
}

/// The exact (post-quantization) identity of a cached profile: which app
/// model it came from and the quantized feature words. Stored in full so
/// a 64-bit digest collision is caught by equality, never served.
#[derive(Clone, PartialEq, Eq)]
struct CacheKey {
    app_id: u64,
    quant_features: Vec<i64>,
}

impl CacheKey {
    fn digest(&self) -> u64 {
        let mut h = fnv_word(FNV_OFFSET, self.app_id);
        for &q in &self.quant_features {
            h = fnv_word(h, q as u64);
        }
        fnv_word(h, self.quant_features.len() as u64)
    }
}

struct CacheEntry {
    key: CacheKey,
    profile: Arc<PredictedProfile>,
}

/// One independent cache shard: its own map, lock, and counters. Counters
/// live with the shard (not the engine) so concurrent submitters never
/// contend on a shared cache line; totals are folded on read.
#[derive(Default)]
struct CacheShard {
    map: RwLock<HashMap<u64, Vec<CacheEntry>, BuildHasherDefault<DigestHasher>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    collisions: AtomicU64,
}

impl CacheShard {
    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
        }
    }
}

/// Lookup counters of the prediction memo cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran forest inference.
    pub misses: u64,
    /// Entries chained behind a different key with the same 64-bit digest.
    pub collisions: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when the cache was never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Folds another counter set (one shard's) into this one. Summing raw
    /// counters — never averaging per-shard rates — keeps `hit_rate`
    /// correct when some shards saw no lookups at all: an idle shard
    /// contributes zero to both numerator and denominator instead of
    /// dragging a rate average toward zero.
    pub fn accumulate(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.collisions += other.collisions;
    }
}

/// What the engine predicts for one request: the absolute default-clock
/// operating point and the predicted Pareto set over the sweep
/// frequencies (already filtered through [`pareto_front_indices`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PredictedProfile {
    /// Predicted wall time at the default clock (seconds).
    pub default_time_s: f64,
    /// Predicted energy at the default clock (joules).
    pub default_energy_j: f64,
    /// Predicted default clock (MHz) — the model's normalization anchor.
    pub default_freq_mhz: f64,
    /// The Pareto-optimal subset of the predicted (speedup, norm-energy)
    /// curve, in ascending frequency order.
    pub pareto: Vec<PredictedPoint>,
}

/// One prediction request waiting in the admission queue.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionRequest {
    /// Caller-assigned job identity, carried through to the response.
    pub job_id: u64,
    /// Which application model to serve from (e.g. `"cronos"`, `"ligen"`).
    pub app: String,
    /// Domain-specific input features, in the model's training order.
    pub features: Vec<f64>,
}

/// Why a request was refused at the queue boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded queue is at capacity; the caller should fall back.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "prediction queue full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Why a drained request could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No model is installed for the request's app.
    ModelUnavailable {
        /// The app that had no model.
        app: String,
    },
    /// The request's feature width does not match the installed model.
    FeatureWidth {
        /// The app whose model was consulted.
        app: String,
        /// What the model was trained on.
        expected: usize,
        /// What the request carried.
        found: usize,
    },
    /// The model's configuration width does not fit the serving path
    /// (e.g. a frequency-only model installed behind a lattice server).
    ConfigWidth {
        /// The app whose model was consulted.
        app: String,
        /// What the serving path requires.
        expected: usize,
        /// What the model carries.
        found: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ModelUnavailable { app } => {
                write!(f, "no model installed for app {app:?}")
            }
            ServeError::FeatureWidth {
                app,
                expected,
                found,
            } => {
                write!(
                    f,
                    "app {app:?}: request has {found} features, model expects {expected}"
                )
            }
            ServeError::ConfigWidth {
                app,
                expected,
                found,
            } => {
                write!(
                    f,
                    "app {app:?}: model has {found} configuration columns, serving path needs {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Engine tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// The frequency sweep (MHz) every prediction is evaluated over.
    pub freqs: Vec<f64>,
    /// Admission queue capacity; `try_enqueue` rejects beyond this.
    pub queue_capacity: usize,
    /// Maximum requests served per [`PredictionEngine::drain_batch`] call.
    pub max_batch: usize,
}

struct InstalledModel {
    model: DomainSpecificModel,
    app_id: u64,
}

/// A within-batch cache miss awaiting batched inference: which response
/// slot it fills, its cache identity, and any later same-batch requests
/// with the same key (served as hits off this miss's profile, exactly as
/// sequential serving would have found the freshly inserted memo).
struct MissSlot {
    slot: usize,
    key: CacheKey,
    digest: u64,
    dependents: Vec<usize>,
}

/// The batched prediction server: installed models, the admission queue,
/// and the sharded memo cache.
pub struct PredictionEngine {
    config: EngineConfig,
    models: HashMap<String, InstalledModel>,
    queue: VecDeque<PredictionRequest>,
    shards: Vec<CacheShard>,
    admitted: u64,
    rejected: u64,
}

impl PredictionEngine {
    /// Builds an empty engine (no models, empty queue, cold cache).
    pub fn new(config: EngineConfig) -> Self {
        PredictionEngine {
            config,
            models: HashMap::new(),
            queue: VecDeque::new(),
            shards: (0..N_SHARDS).map(|_| CacheShard::default()).collect(),
            admitted: 0,
            rejected: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Installs (or replaces) the model served for `app`. Replacing a
    /// model invalidates its cached profiles.
    pub fn install_model(&mut self, app: &str, model: DomainSpecificModel) {
        let app_id = fnv_str(FNV_OFFSET, app);
        if self.models.contains_key(app) {
            // A replaced model must not serve its predecessor's
            // predictions: drop every chain entry keyed to this app, in
            // every shard (an app's keys spread across all of them).
            for shard in &self.shards {
                if let Ok(mut map) = shard.map.write() {
                    for chain in map.values_mut() {
                        chain.retain(|e| e.key.app_id != app_id);
                    }
                    map.retain(|_, chain| !chain.is_empty());
                }
            }
        }
        self.models
            .insert(app.to_string(), InstalledModel { model, app_id });
    }

    /// Removes the model served for `app`, purging every cached profile
    /// keyed to it in every shard. Returns whether a model was installed.
    /// This is the rollback path: after a canary is withdrawn its channel
    /// must serve nothing, and no stale profile may survive in the memo
    /// cache.
    pub fn remove_model(&mut self, app: &str) -> bool {
        if self.models.remove(app).is_none() {
            return false;
        }
        let app_id = fnv_str(FNV_OFFSET, app);
        for shard in &self.shards {
            if let Ok(mut map) = shard.map.write() {
                for chain in map.values_mut() {
                    chain.retain(|e| e.key.app_id != app_id);
                }
                map.retain(|_, chain| !chain.is_empty());
            }
        }
        true
    }

    /// Whether a model is installed for `app`.
    pub fn has_model(&self, app: &str) -> bool {
        self.models.contains_key(app)
    }

    /// How many cached profile entries are keyed to `app`, per shard, in
    /// shard-index order ([`N_SHARDS`] rows). Introspection for the cache
    /// invalidation tests: after an install/remove of `app` every row must
    /// read zero.
    pub fn cached_entries_per_shard(&self, app: &str) -> Vec<usize> {
        let app_id = fnv_str(FNV_OFFSET, app);
        self.shards
            .iter()
            .map(|shard| {
                shard.map.read().map_or(0, |map| {
                    map.values()
                        .flat_map(|chain| chain.iter())
                        .filter(|e| e.key.app_id == app_id)
                        .count()
                })
            })
            .collect()
    }

    /// Requests admitted / rejected at the queue boundary so far.
    pub fn admission_counts(&self) -> (u64, u64) {
        (self.admitted, self.rejected)
    }

    /// Current queue depth.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Admits a request into the bounded queue, or rejects it when the
    /// queue is at capacity.
    pub fn try_enqueue(&mut self, request: PredictionRequest) -> Result<(), AdmissionError> {
        if self.queue.len() >= self.config.queue_capacity {
            self.rejected += 1;
            return Err(AdmissionError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        self.admitted += 1;
        self.queue.push_back(request);
        Ok(())
    }

    /// Serves up to `max_batch` queued requests in FIFO order. Each
    /// response pairs the request with its profile or a typed serve error;
    /// a failed request consumes its queue slot like a served one.
    ///
    /// Cache misses in the drained batch are grouped per app and evaluated
    /// as **one** `predict_curves_batch` call through the flattened forest
    /// — not row-at-a-time — so a cold batch costs two feature-major model
    /// passes per app instead of `2 × (freqs + 1)` dispatches per request.
    /// Responses are bit-identical to sequential row-at-a-time serving,
    /// including the hit/miss accounting: a duplicate key later in the
    /// same batch counts as a hit and shares the first request's `Arc`.
    #[allow(clippy::type_complexity)]
    pub fn drain_batch(
        &mut self,
    ) -> Vec<(PredictionRequest, Result<Arc<PredictedProfile>, ServeError>)> {
        let n = self.config.max_batch.min(self.queue.len());
        let requests: Vec<PredictionRequest> = self.queue.drain(..n).collect();
        let results = self.serve_batch(&requests);
        requests.into_iter().zip(results).collect()
    }

    /// Serves one request immediately, bypassing the admission queue —
    /// the fleet's cross-class re-resolution path (a stolen or
    /// rescheduled job re-priced for the class that actually runs it).
    /// Identical serving semantics to a one-element drained batch,
    /// including cache accounting.
    pub fn serve_one(
        &self,
        request: &PredictionRequest,
    ) -> Result<Arc<PredictedProfile>, ServeError> {
        self.serve_batch(std::slice::from_ref(request))
            .pop()
            .unwrap_or_else(|| {
                // Unreachable: serve_batch returns one slot per request.
                Err(ServeError::ModelUnavailable {
                    app: request.app.clone(),
                })
            })
    }

    /// Cache counters so far, summed across shards. Raw counters are
    /// folded (see [`CacheStats::accumulate`]), so the hit fraction stays
    /// correct even when most shards never saw a lookup.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.accumulate(shard.stats());
        }
        total
    }

    /// Per-shard cache counters, in shard-index order ([`N_SHARDS`] rows).
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(CacheShard::stats).collect()
    }

    /// Serves a drained batch: validate → probe shards → batch the misses
    /// per app through the flat layout → insert → fill response slots.
    fn serve_batch(
        &self,
        requests: &[PredictionRequest],
    ) -> Vec<Result<Arc<PredictedProfile>, ServeError>> {
        let mut slots: Vec<Option<Result<Arc<PredictedProfile>, ServeError>>> =
            (0..requests.len()).map(|_| None).collect();
        // Misses grouped per app in first-miss order; a batch holds few
        // distinct apps, so linear scans beat map overhead here.
        let mut groups: Vec<(&str, Vec<MissSlot>)> = Vec::new();

        for (i, request) in requests.iter().enumerate() {
            let Some(installed) = self.models.get(&request.app) else {
                slots[i] = Some(Err(ServeError::ModelUnavailable {
                    app: request.app.clone(),
                }));
                continue;
            };
            let expected = installed.model.n_features();
            if request.features.len() != expected {
                slots[i] = Some(Err(ServeError::FeatureWidth {
                    app: request.app.clone(),
                    expected,
                    found: request.features.len(),
                }));
                continue;
            }

            let key = CacheKey {
                app_id: installed.app_id,
                quant_features: request
                    .features
                    .iter()
                    .map(|&f| (f * QUANT_STEPS_PER_UNIT).round() as i64)
                    .collect(),
            };
            let digest = key.digest();
            let shard = &self.shards[shard_index(digest)];

            let mut cached = None;
            if let Ok(map) = shard.map.read() {
                if let Some(chain) = map.get(&digest) {
                    for entry in chain {
                        if entry.key == key {
                            cached = Some(Arc::clone(&entry.profile));
                            break;
                        }
                    }
                }
            }
            if let Some(profile) = cached {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                slots[i] = Some(Ok(profile));
                continue;
            }

            let group = match groups.iter_mut().find(|(app, _)| *app == request.app) {
                Some((_, misses)) => misses,
                None => {
                    groups.push((request.app.as_str(), Vec::new()));
                    // Just pushed; the vec cannot be empty.
                    match groups.last_mut() {
                        Some((_, misses)) => misses,
                        None => continue,
                    }
                }
            };
            // An earlier miss in this batch with the same key will produce
            // this request's profile: sequential serving would have found
            // the freshly inserted memo, so count a hit and share the Arc.
            if let Some(first) = group
                .iter_mut()
                .find(|m| m.digest == digest && m.key == key)
            {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                first.dependents.push(i);
                continue;
            }
            shard.misses.fetch_add(1, Ordering::Relaxed);
            group.push(MissSlot {
                slot: i,
                key,
                digest,
                dependents: Vec::new(),
            });
        }

        // Batched inference: one design matrix and two feature-major flat
        // passes per app with misses.
        for (app, misses) in &groups {
            let Some(installed) = self.models.get(*app) else {
                continue; // unreachable: groups only hold installed apps
            };
            let inputs: Vec<&[f64]> = misses
                .iter()
                .map(|m| requests[m.slot].features.as_slice())
                .collect();
            let predictions = installed
                .model
                .predict_curves_batch(&inputs, &self.config.freqs);
            let default_freq_mhz = installed.model.default_freq_mhz();
            for (miss, prediction) in misses.iter().zip(predictions) {
                let profile = Arc::new(assemble_profile(default_freq_mhz, prediction));
                self.insert(miss, &profile);
                for &dependent in &miss.dependents {
                    slots[dependent] = Some(Ok(Arc::clone(&profile)));
                }
                slots[miss.slot] = Some(Ok(profile));
            }
        }

        slots
            .into_iter()
            .zip(requests)
            .map(|(slot, request)| {
                slot.unwrap_or_else(|| {
                    // Unreachable: every request is assigned an error, a
                    // hit, a dependent fill, or a miss fill above.
                    Err(ServeError::ModelUnavailable {
                        app: request.app.clone(),
                    })
                })
            })
            .collect()
    }

    /// Inserts a freshly computed profile into its shard, preserving the
    /// collision accounting and racing-writer duplicate check of the
    /// pre-sharding cache.
    fn insert(&self, miss: &MissSlot, profile: &Arc<PredictedProfile>) {
        let shard = &self.shards[shard_index(miss.digest)];
        if let Ok(mut map) = shard.map.write() {
            let chain = map.entry(miss.digest).or_default();
            // A racing writer may have filled the slot between our read
            // and write lock; serve-once semantics don't matter for
            // correctness (profiles are deterministic), but don't chain a
            // duplicate.
            if !chain.iter().any(|e| e.key == miss.key) {
                if !chain.is_empty() {
                    shard.collisions.fetch_add(1, Ordering::Relaxed);
                }
                chain.push(CacheEntry {
                    key: miss.key.clone(),
                    profile: Arc::clone(profile),
                });
            }
        }
    }
}

/// Builds the served profile from one batched curve prediction: Pareto
/// filter, ascending-frequency order, default-clock anchors — the same
/// float schedule as the old row-at-a-time `predict`.
fn assemble_profile(default_freq_mhz: f64, prediction: CurvePrediction) -> PredictedProfile {
    let plane: Vec<(f64, f64)> = prediction
        .curve
        .iter()
        .map(|p| (p.speedup, p.norm_energy))
        .collect();
    let front = pareto_front_indices(&plane);
    let mut pareto: Vec<PredictedPoint> = front.into_iter().map(|i| prediction.curve[i]).collect();
    pareto.sort_by(|a, b| a.freq_mhz.total_cmp(&b.freq_mhz));
    PredictedProfile {
        default_time_s: prediction.default_time_s,
        default_energy_j: prediction.default_energy_j,
        default_freq_mhz,
        pareto,
    }
}

/// What a lattice server predicts for one request: the absolute
/// default-configuration operating point and the predicted Pareto
/// **surface** over the configuration lattice — the three-axis sibling of
/// [`PredictedProfile`].
#[derive(Debug, Clone, PartialEq)]
pub struct LatticeProfile {
    /// Predicted wall time at the default configuration (seconds).
    pub default_time_s: f64,
    /// Predicted energy at the default configuration (joules).
    pub default_energy_j: f64,
    /// The model's normalization anchor: `[core_mhz, mem_mhz, cap_w]`.
    pub default_config: [f64; 3],
    /// The Pareto-optimal subset of the predicted lattice, in ascending
    /// `(core, mem, cap)` order.
    pub surface: Vec<LatticePredictedPoint>,
}

/// A memoizing server over one app's configuration-lattice model: the
/// lattice sibling of [`PredictionEngine`]'s per-app serving path.
///
/// The memo digest starts from a seed that folds the app name **and the
/// quantized lattice points** — so two servers over different lattices
/// (or the same lattice re-enumerated differently) can never exchange
/// profiles, even across a 64-bit digest collision the full-key equality
/// check would catch anyway. Feature quantization and collision-chain
/// semantics are identical to the engine's cache.
pub struct LatticeServer {
    app: String,
    model: DomainSpecificModel,
    digest_seed: u64,
    points: Vec<[f64; 3]>,
    map: RwLock<HashMap<u64, Vec<CacheEntryLattice>, BuildHasherDefault<DigestHasher>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    collisions: AtomicU64,
}

struct CacheEntryLattice {
    key: CacheKey,
    profile: Arc<LatticeProfile>,
}

impl LatticeServer {
    /// Builds a server over `model` (which must be lattice-trained,
    /// `config_cols == 3`) and the enumerated lattice `points`.
    pub fn new(
        app: &str,
        model: DomainSpecificModel,
        points: Vec<[f64; 3]>,
    ) -> Result<Self, ServeError> {
        if model.config_cols() != 3 {
            return Err(ServeError::ConfigWidth {
                app: app.to_string(),
                expected: 3,
                found: model.config_cols(),
            });
        }
        // Fold the lattice itself into the digest seed: quantized the same
        // way as features, length-framed per point.
        let mut seed = fnv_str(FNV_OFFSET, app);
        for p in &points {
            for &c in p {
                seed = fnv_word(seed, (c * QUANT_STEPS_PER_UNIT).round() as i64 as u64);
            }
        }
        seed = fnv_word(seed, points.len() as u64);
        Ok(LatticeServer {
            app: app.to_string(),
            model,
            digest_seed: seed,
            points,
            map: RwLock::new(HashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        })
    }

    /// The enumerated lattice this server prices.
    pub fn points(&self) -> &[[f64; 3]] {
        &self.points
    }

    /// Cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
        }
    }

    /// Serves one feature vector: memo probe, then one batched lattice
    /// inference on miss. Identical quantization and collision accounting
    /// to [`PredictionEngine`].
    pub fn serve(&self, features: &[f64]) -> Result<Arc<LatticeProfile>, ServeError> {
        let expected = self.model.n_features();
        if features.len() != expected {
            return Err(ServeError::FeatureWidth {
                app: self.app.clone(),
                expected,
                found: features.len(),
            });
        }
        let key = CacheKey {
            app_id: self.digest_seed,
            quant_features: features
                .iter()
                .map(|&f| (f * QUANT_STEPS_PER_UNIT).round() as i64)
                .collect(),
        };
        let digest = key.digest();
        if let Ok(map) = self.map.read() {
            if let Some(chain) = map.get(&digest) {
                for entry in chain {
                    if entry.key == key {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Arc::clone(&entry.profile));
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let prediction = self.model.predict_lattice_curve(features, &self.points);
        let plane: Vec<(f64, f64)> = prediction
            .curve
            .iter()
            .map(|p| (p.speedup, p.norm_energy))
            .collect();
        let front = pareto_front_indices(&plane);
        let mut surface: Vec<LatticePredictedPoint> =
            front.into_iter().map(|i| prediction.curve[i]).collect();
        surface.sort_by(|a, b| {
            a.core_mhz
                .total_cmp(&b.core_mhz)
                .then(a.mem_mhz.total_cmp(&b.mem_mhz))
                .then(a.cap_w.total_cmp(&b.cap_w))
        });
        let dc = self.model.default_config();
        let profile = Arc::new(LatticeProfile {
            default_time_s: prediction.default_time_s,
            default_energy_j: prediction.default_energy_j,
            default_config: [dc[0], dc[1], dc[2]],
            surface,
        });
        if let Ok(mut map) = self.map.write() {
            let chain = map.entry(digest).or_default();
            if !chain.iter().any(|e| e.key == key) {
                if !chain.is_empty() {
                    self.collisions.fetch_add(1, Ordering::Relaxed);
                }
                chain.push(CacheEntryLattice {
                    key,
                    profile: Arc::clone(&profile),
                });
            }
        }
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use energy_model::ds_model::DsSample;

    fn tiny_model() -> DomainSpecificModel {
        // A deliberately small synthetic design: time falls and energy
        // rises with frequency, scaled by a single "size" feature.
        let mut samples = Vec::new();
        for size in [1.0f64, 2.0, 4.0, 8.0] {
            let features = Arc::new(vec![size]);
            for freq in [600.0f64, 900.0, 1200.0, 1500.0] {
                samples.push(DsSample {
                    features: Arc::clone(&features),
                    freq_mhz: freq,
                    time_s: size * 1500.0 / freq,
                    energy_j: size * (0.5 + freq / 1000.0),
                });
            }
        }
        DomainSpecificModel::train(&samples, 1500.0, 7)
    }

    fn engine_with_model() -> PredictionEngine {
        let mut engine = PredictionEngine::new(EngineConfig {
            freqs: vec![600.0, 900.0, 1200.0, 1500.0],
            queue_capacity: 4,
            max_batch: 8,
        });
        engine.install_model("toy", tiny_model());
        engine
    }

    fn request(job_id: u64, size: f64) -> PredictionRequest {
        PredictionRequest {
            job_id,
            app: "toy".to_string(),
            features: vec![size],
        }
    }

    #[test]
    fn admission_rejects_beyond_capacity() {
        let mut engine = engine_with_model();
        for i in 0..4 {
            assert!(engine.try_enqueue(request(i, 2.0)).is_ok());
        }
        assert_eq!(
            engine.try_enqueue(request(4, 2.0)),
            Err(AdmissionError::QueueFull { capacity: 4 })
        );
        assert_eq!(engine.admission_counts(), (4, 1));
    }

    #[test]
    fn drain_is_fifo_and_batch_bounded() {
        let mut engine = engine_with_model();
        engine.config.max_batch = 2;
        for i in 0..4 {
            engine.try_enqueue(request(i, 2.0)).ok();
        }
        let first = engine.drain_batch();
        assert_eq!(
            first.iter().map(|(r, _)| r.job_id).collect::<Vec<_>>(),
            vec![0, 1]
        );
        let second = engine.drain_batch();
        assert_eq!(
            second.iter().map(|(r, _)| r.job_id).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert!(engine.drain_batch().is_empty());
    }

    #[test]
    fn repeat_features_hit_the_cache_with_identical_profiles() {
        let mut engine = engine_with_model();
        engine.try_enqueue(request(0, 4.0)).ok();
        engine.try_enqueue(request(1, 4.0)).ok();
        let served = engine.drain_batch();
        let a = served[0].1.as_ref().ok().cloned();
        let b = served[1].1.as_ref().ok().cloned();
        let (a, b) = (a.unwrap(), b.unwrap());
        assert!(Arc::ptr_eq(&a, &b), "second request must share the memo");
        assert_eq!(*a, *b);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn missing_model_is_a_typed_error_not_a_panic() {
        let mut engine = engine_with_model();
        engine
            .try_enqueue(PredictionRequest {
                job_id: 9,
                app: "nope".to_string(),
                features: vec![1.0],
            })
            .ok();
        let served = engine.drain_batch();
        assert_eq!(
            served[0].1,
            Err(ServeError::ModelUnavailable {
                app: "nope".to_string()
            })
        );
    }

    #[test]
    fn feature_width_mismatch_is_a_typed_error() {
        let mut engine = engine_with_model();
        engine
            .try_enqueue(PredictionRequest {
                job_id: 1,
                app: "toy".to_string(),
                features: vec![1.0, 2.0],
            })
            .ok();
        let served = engine.drain_batch();
        assert_eq!(
            served[0].1,
            Err(ServeError::FeatureWidth {
                app: "toy".to_string(),
                expected: 1,
                found: 2,
            })
        );
    }

    #[test]
    fn profile_pareto_is_a_front_and_anchored_at_default() {
        let mut engine = engine_with_model();
        engine.try_enqueue(request(0, 2.0)).ok();
        let served = engine.drain_batch();
        let profile = served[0].1.as_ref().ok().cloned().unwrap();
        assert!(!profile.pareto.is_empty());
        assert!(profile.default_time_s > 0.0);
        assert!(profile.default_energy_j > 0.0);
        // No point on the served front may dominate another.
        for a in &profile.pareto {
            for b in &profile.pareto {
                let dominates = (a.speedup >= b.speedup && a.norm_energy <= b.norm_energy)
                    && (a.speedup > b.speedup || a.norm_energy < b.norm_energy);
                assert!(!dominates, "served Pareto set contains a dominated point");
            }
        }
    }

    #[test]
    fn cache_stats_sum_across_shards_with_unused_shards() {
        let mut engine = engine_with_model();
        engine.config.queue_capacity = 64;
        engine.config.max_batch = 64;
        // 24 distinct keys spread over the shards, then 8 repeats.
        for i in 0..24 {
            engine.try_enqueue(request(i, i as f64)).ok();
        }
        engine.drain_batch();
        for i in 0..8 {
            engine.try_enqueue(request(100 + i, i as f64)).ok();
        }
        engine.drain_batch();

        let per_shard = engine.shard_stats();
        assert_eq!(per_shard.len(), N_SHARDS);
        let mut folded = CacheStats::default();
        for s in &per_shard {
            folded.accumulate(*s);
        }
        let total = engine.cache_stats();
        assert_eq!(folded, total, "totals must be the fold of shard stats");
        assert_eq!((total.hits, total.misses), (8, 24));

        // With 24 keys over 16 shards some shards are busier than others
        // and an idle shard must not skew the fold: the hit fraction is
        // hits / lookups of the *sums*, not an average of per-shard rates.
        assert!((total.hit_rate() - 8.0 / 32.0).abs() < 1e-12);
        let lookups: u64 = per_shard.iter().map(|s| s.hits + s.misses).sum();
        assert_eq!(lookups, 32);
    }

    #[test]
    fn batched_drain_is_bit_identical_to_reference_path() {
        let model = tiny_model();
        let mut engine = engine_with_model();
        engine.config.queue_capacity = 16;
        engine.config.max_batch = 16;
        let sizes = [1.0, 2.0, 3.0, 4.0, 5.5, 8.0];
        for (i, &s) in sizes.iter().enumerate() {
            engine.try_enqueue(request(i as u64, s)).ok();
        }
        let served = engine.drain_batch();
        assert_eq!(served.len(), sizes.len());
        for ((req, result), &size) in served.iter().zip(&sizes) {
            let profile = result.as_ref().ok().cloned().unwrap();
            // Reference: the pre-flattening row-at-a-time pointer walk.
            let (t_def, e_def) =
                model.predict_time_energy_reference(&req.features, model.default_freq_mhz());
            assert_eq!(profile.default_time_s.to_bits(), t_def.to_bits(), "{size}");
            assert_eq!(profile.default_energy_j.to_bits(), e_def.to_bits());
            let curve = model.predict_curve_reference(&req.features, &engine.config.freqs);
            let plane: Vec<(f64, f64)> = curve.iter().map(|p| (p.speedup, p.norm_energy)).collect();
            let front = pareto_front_indices(&plane);
            let mut pareto: Vec<PredictedPoint> = front.into_iter().map(|i| curve[i]).collect();
            pareto.sort_by(|a, b| a.freq_mhz.total_cmp(&b.freq_mhz));
            assert_eq!(profile.pareto.len(), pareto.len());
            for (a, b) in profile.pareto.iter().zip(&pareto) {
                assert_eq!(a.freq_mhz.to_bits(), b.freq_mhz.to_bits());
                assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
                assert_eq!(a.norm_energy.to_bits(), b.norm_energy.to_bits());
            }
        }
    }

    #[test]
    fn mixed_batch_preserves_order_errors_and_sharing() {
        let mut engine = engine_with_model();
        engine.config.queue_capacity = 8;
        engine.config.max_batch = 8;
        engine.try_enqueue(request(0, 2.0)).ok();
        engine
            .try_enqueue(PredictionRequest {
                job_id: 1,
                app: "nope".to_string(),
                features: vec![1.0],
            })
            .ok();
        engine
            .try_enqueue(PredictionRequest {
                job_id: 2,
                app: "toy".to_string(),
                features: vec![1.0, 2.0],
            })
            .ok();
        engine.try_enqueue(request(3, 2.0)).ok(); // duplicate of job 0
        engine.try_enqueue(request(4, 7.0)).ok();

        let served = engine.drain_batch();
        assert_eq!(
            served.iter().map(|(r, _)| r.job_id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(matches!(
            served[1].1,
            Err(ServeError::ModelUnavailable { .. })
        ));
        assert!(matches!(served[2].1, Err(ServeError::FeatureWidth { .. })));
        let first = served[0].1.as_ref().ok().cloned().unwrap();
        let dup = served[3].1.as_ref().ok().cloned().unwrap();
        assert!(
            Arc::ptr_eq(&first, &dup),
            "within-batch duplicate must share the Arc"
        );
        let stats = engine.cache_stats();
        // job 0 and 4 miss, job 3 is a (within-batch) hit, errors don't count.
        assert_eq!((stats.hits, stats.misses), (1, 2));
    }

    // ---- Lattice serving ----

    fn tiny_lattice_model() -> DomainSpecificModel {
        use energy_model::ds_model::LatticeSample;
        let mut samples = Vec::new();
        for size in [1.0f64, 2.0, 4.0, 8.0] {
            let features = Arc::new(vec![size]);
            for freq in [600.0f64, 900.0, 1200.0, 1500.0] {
                for mem in [800.0f64, 1100.0] {
                    for cap in [150.0f64, 300.0] {
                        let roof = 0.9 * mem;
                        let eff = freq.min(roof);
                        let raw_power = 60.0 + 0.08 * freq + 0.03 * mem;
                        let stretch = (raw_power / cap).max(1.0);
                        let time = size * 1500.0 / eff * stretch;
                        samples.push(LatticeSample {
                            features: Arc::clone(&features),
                            core_mhz: freq,
                            mem_mhz: mem,
                            cap_w: cap,
                            time_s: time,
                            energy_j: time * raw_power.min(cap),
                        });
                    }
                }
            }
        }
        DomainSpecificModel::train_lattice(&samples, [1500.0, 1100.0, 300.0], 7)
    }

    fn toy_lattice() -> Vec<[f64; 3]> {
        let mut points = Vec::new();
        for f in [600.0, 900.0, 1200.0, 1500.0] {
            for m in [800.0, 1100.0] {
                for c in [150.0, 300.0] {
                    points.push([f, m, c]);
                }
            }
        }
        points
    }

    #[test]
    fn lattice_server_memoizes_and_serves_a_pareto_surface() {
        let server = LatticeServer::new("toy", tiny_lattice_model(), toy_lattice()).unwrap();
        let a = server.serve(&[4.0]).unwrap();
        let b = server.serve(&[4.0]).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "repeat features must hit the memo");
        let stats = server.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(!a.surface.is_empty());
        assert_eq!(a.default_config, [1500.0, 1100.0, 300.0]);
        // No surface point may dominate another.
        for p in &a.surface {
            for q in &a.surface {
                let dominates = (p.speedup >= q.speedup && p.norm_energy <= q.norm_energy)
                    && (p.speedup > q.speedup || p.norm_energy < q.norm_energy);
                assert!(!dominates, "served surface contains a dominated point");
            }
        }
    }

    #[test]
    fn lattice_server_rejects_frequency_only_models() {
        let err = match LatticeServer::new("toy", tiny_model(), toy_lattice()) {
            Err(e) => e,
            Ok(_) => panic!("frequency-only model must be rejected"),
        };
        assert_eq!(
            err,
            ServeError::ConfigWidth {
                app: "toy".to_string(),
                expected: 3,
                found: 1,
            }
        );
    }

    #[test]
    fn lattice_server_validates_feature_width() {
        let server = LatticeServer::new("toy", tiny_lattice_model(), toy_lattice()).unwrap();
        assert_eq!(
            server.serve(&[1.0, 2.0]),
            Err(ServeError::FeatureWidth {
                app: "toy".to_string(),
                expected: 1,
                found: 2,
            })
        );
    }

    #[test]
    fn lattice_digest_seed_depends_on_the_lattice() {
        // Two servers over different lattices must key the same features
        // differently: the axes are folded into the digest seed.
        let full = LatticeServer::new("toy", tiny_lattice_model(), toy_lattice()).unwrap();
        let narrow = LatticeServer::new(
            "toy",
            tiny_lattice_model(),
            vec![[900.0, 1100.0, 300.0], [1500.0, 1100.0, 300.0]],
        )
        .unwrap();
        assert_ne!(full.digest_seed, narrow.digest_seed);
        // And the served surfaces genuinely differ (the narrow lattice
        // cannot contain the full lattice's mem-downclocked points).
        let wide = full.serve(&[4.0]).unwrap();
        let thin = narrow.serve(&[4.0]).unwrap();
        assert!(thin.surface.iter().all(|p| p.mem_mhz == 1100.0));
        assert!(wide.surface.len() >= thin.surface.len());
    }

    #[test]
    fn replacing_a_model_invalidates_its_cache_entries() {
        let mut engine = engine_with_model();
        engine.try_enqueue(request(0, 2.0)).ok();
        engine.drain_batch();
        assert_eq!(engine.cache_stats().misses, 1);
        engine.install_model("toy", tiny_model());
        engine.try_enqueue(request(1, 2.0)).ok();
        engine.drain_batch();
        // The second request must re-run inference, not hit a stale memo.
        assert_eq!(engine.cache_stats().misses, 2);
        assert_eq!(engine.cache_stats().hits, 0);
    }
}
