//! # governor — online frequency selection over trained energy models
//!
//! The paper's end goal is to *use* the domain-specific models: pick the
//! energy-optimal frequency for each incoming workload (§5.2.2, Fig. 14).
//! The rest of this workspace trains and evaluates those models offline;
//! this crate closes the loop at run time:
//!
//! * [`registry`] — a versioned, checksummed on-disk model registry over
//!   [`energy_model::artifact`] envelopes and atomic writes: publish a
//!   trained [`energy_model::DomainSpecificModel`], load it back verified,
//!   reject corruption/version skew/stale training fingerprints with typed
//!   errors;
//! * [`serving`] — a batched inference engine: an admission-controlled
//!   bounded request queue in front of a quantized-feature prediction memo
//!   cache (the same design discipline as `gpu_sim::pricing::PriceTable`:
//!   FNV word hashing, a custom map hasher, per-key overflow chains with
//!   full equality verification, and hit/miss/collision counters);
//! * [`policy`] — what to do with a predicted Pareto set: minimize energy
//!   under a per-job deadline, minimize energy-delay product, or hold the
//!   vendor default clock (the baseline every other policy is judged
//!   against);
//! * [`sim`] — the closed-loop online simulation: a seeded, deterministic
//!   arrival stream of LiGen ligand-batch and Cronos grid jobs with
//!   per-job deadlines, scheduled onto a `gpu-sim` device through the
//!   fallible SYnergy backend path. Every decision is recorded; every
//!   failure mode (model missing, stale artifact, rejected clock request,
//!   admission overflow) degrades to the default clock instead of
//!   stopping the fleet;
//! * [`gang`] — gang placement for domain-decomposed jobs: pick the
//!   energy-optimal `(device count, core clock)` point from a
//!   strong-scaling profile under a deadline, then reserve that many
//!   devices for a lockstep window — one decomposed Cronos run holds a
//!   device *set*, not a slot;
//! * [`fleet`] — the multi-device scale-out of [`sim`]: heterogeneous
//!   device classes (V100s + MI100s) with per-class model artifacts,
//!   per-device FIFO queues with work stealing, energy-aware placement,
//!   and the campaign circuit breakers so evicted devices drain onto
//!   survivors. A single-device fleet is bit-identical to [`sim`].
//!
//! Everything is deterministic given `(seed, fault plan, policy)`, and
//! armed `governor.*` telemetry leaves measured results bit-identical —
//! the same contracts the sweep engine and campaign layers already hold.

pub mod fleet;
pub mod gang;
pub mod lifecycle;
pub mod policy;
pub mod registry;
pub mod serving;
pub mod sim;

pub use fleet::{
    class_slug, fleet_model_name, run_fleet, train_and_publish_fleet, DeviceReport, FleetConfig,
    FleetDecision, FleetDevice, FleetEvent, FleetReport, Placement, StealPolicy, FLEET_SEED,
};
pub use gang::{choose_gang, reserve_gang, GangChoice, GangPoint, GangProfile, GangReservation};
pub use lifecycle::{
    efficiency_drift, residual_ape, run_lifecycle, DriftConfig, DriftDetector, DriftScenario,
    DriftSummary, ForcedTrip, LifecycleConfig, LifecycleDecision, LifecycleError, LifecycleEvent,
    LifecycleReport, ResidualTracker, ServedChannel,
};
pub use policy::{choose_config, choose_frequency, Policy};
pub use registry::{ModelRegistry, RegistryError, RegistryEvent};
pub use serving::{
    AdmissionError, CacheStats, EngineConfig, LatticeProfile, LatticeServer, PredictedProfile,
    PredictionEngine, PredictionRequest, ServeError,
};
pub use sim::{
    run_governor, train_and_publish, DecisionRecord, FallbackReason, GovernorConfig,
    GovernorReport, ModelFaults,
};
