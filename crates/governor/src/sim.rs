//! The closed-loop online simulation: a deterministic arrival stream of
//! LiGen and Cronos jobs, governed frequency selection, and graceful
//! degradation to the default clock.
//!
//! ## Shape of a run
//!
//! [`train_and_publish`] plays the offline phase: characterize the fixed
//! job-configuration sets noiselessly, train one [`DomainSpecificModel`]
//! per application, and publish both into a [`ModelRegistry`] under a
//! training fingerprint derived from `(device, default clock, sweep,
//! seed)`. [`run_governor`] then plays the online phase against that
//! registry:
//!
//! 1. a seeded stream of jobs arrives in bursts of 1–3, each job drawn
//!    from the fixed configuration sets with a per-job deadline (default
//!    clock time × a slack factor drawn from `cfg.slack`);
//! 2. each job's prediction request passes through the admission-controlled
//!    [`PredictionEngine`]; models are loaded lazily from the registry
//!    (envelope- and fingerprint-verified) the first time an application
//!    needs one;
//! 3. the policy picks a clock from the predicted Pareto set; the job's
//!    recorded [`KernelTrace`] is replayed on the shared `gpu-sim` device
//!    through the fallible SYnergy backend path under that clock;
//! 4. anything that goes wrong — model missing from the registry, load
//!    fault, stale training fingerprint, admission overflow, rejected
//!    clock request, failed launch — degrades the job to the default
//!    clock (or records the failure) and the run continues. The fleet
//!    never deadlocks on a bad model or a flaky device.
//!
//! ## Contracts
//!
//! *Determinism*: every decision and measurement is a pure function of
//! `(seed, policies, fault plans)`. The arrival stream, slack draws, and
//! fault schedules all use seeded stateless generators.
//!
//! *Telemetry inertness*: an armed `cfg.telemetry` sink observes counters
//! after the fact; [`GovernorReport::decisions`] and every measured
//! number are bit-identical with telemetry armed or absent.

// The governor must degrade, not die: no unwraps on the runtime path.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::sync::Arc;

use energy_model::characterize::Workload;
use energy_model::telemetry::Telemetry;
use energy_model::workflow::{
    characterize_cronos, characterize_ligen, experiment_frequencies, training_set, CRONOS_STEPS,
};
use energy_model::{training_fingerprint, CronosInput, DomainSpecificModel, LigenInput};
use gpu_sim::{Device, DeviceSpec, FaultPlan, Schedule};
use serde::Serialize;
use synergy::{FrequencyPolicy, KernelTrace, SynergyQueue};

use crate::policy::{choose_frequency, Policy};
use crate::registry::{ModelRegistry, RegistryError};
use crate::serving::{CacheStats, EngineConfig, PredictionEngine, PredictionRequest, ServeError};

/// The pinned experiment seed shared with the offline benchmarks.
pub const GOVERNOR_SEED: u64 = 20231112;

/// The fixed Cronos job-configuration set (also the training set: the
/// governor serves the input distribution it was characterized on).
pub fn cronos_job_set() -> Vec<CronosInput> {
    vec![
        CronosInput::new(16, 16, 16),
        CronosInput::new(24, 24, 24),
        CronosInput::new(32, 24, 16),
        CronosInput::new(32, 32, 32),
    ]
}

/// The fixed LiGen job-configuration set.
pub fn ligen_job_set() -> Vec<LigenInput> {
    vec![
        LigenInput::new(1000, 40, 8),
        LigenInput::new(2000, 60, 12),
        LigenInput::new(4000, 89, 20),
        LigenInput::new(8000, 50, 10),
    ]
}

/// Deterministic fault injection on the *model* path, mirroring the
/// device-side `gpu_sim::FaultPlan`: schedules are interpreted over a
/// counter of registry load attempts with a seeded stateless stream.
#[derive(Debug, Clone, Default)]
pub struct ModelFaults {
    /// Seed of the probabilistic schedules.
    pub seed: u64,
    /// Registry load attempts that fail outright (I/O-style failure).
    pub load_failures: Schedule,
    /// Registry load attempts that surface a stale training fingerprint.
    pub stale_fingerprints: Schedule,
}

impl ModelFaults {
    /// The inert plan: every load succeeds.
    pub fn none() -> Self {
        ModelFaults::default()
    }
}

pub(crate) const STREAM_LOAD_FAIL: u64 = 11;
pub(crate) const STREAM_STALE: u64 = 12;

/// Stateless uniform draw in `[0, 1)` — the same splitmix64-finalizer
/// construction as the device fault plans, so model faults are pure
/// functions of the load-attempt index.
pub(crate) fn unit_draw(seed: u64, stream: u64, index: u64) -> f64 {
    let mut z = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub(crate) fn schedule_fires(schedule: &Schedule, seed: u64, stream: u64, index: u64) -> bool {
    match schedule {
        Schedule::Never => false,
        Schedule::At(set) => set.contains(&index),
        Schedule::Prob(p) => unit_draw(seed, stream, index) < *p,
    }
}

/// Sequential splitmix64 — drives the arrival stream and slack draws.
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub(crate) fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Configuration of one governor run.
#[derive(Clone)]
pub struct GovernorConfig {
    /// The simulated device.
    pub spec: DeviceSpec,
    /// The frequency-selection policy under test.
    pub policy: Policy,
    /// Number of jobs in the arrival stream.
    pub n_jobs: usize,
    /// Seed of the arrival stream and slack draws (also the training
    /// seed [`train_and_publish`] fingerprints models under).
    pub seed: u64,
    /// Per-job deadline slack range: deadline = default-clock time × a
    /// uniform draw from `[slack.0, slack.1]`.
    pub slack: (f64, f64),
    /// Safety factor applied to the deadline the policy plans against
    /// (< 1 leaves headroom for prediction error).
    pub deadline_safety: f64,
    /// Admission queue capacity of the serving engine.
    pub queue_capacity: usize,
    /// Maximum requests served per drain call.
    pub max_batch: usize,
    /// Stride thinning the serving-time frequency sweep.
    pub freq_stride: usize,
    /// Stride thinning the training characterization sweep.
    pub train_stride: usize,
    /// Device-side fault injection (clock rejections, launch failures…).
    pub device_faults: FaultPlan,
    /// Model-path fault injection (load failures, stale fingerprints).
    pub model_faults: ModelFaults,
    /// Optional metrics sink; arming it must not change any result.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl GovernorConfig {
    /// The pinned configuration the regression guard and the `figures
    /// govern` experiment run: V100, seed [`GOVERNOR_SEED`], 40 jobs, no
    /// faults.
    pub fn pinned(policy: Policy) -> Self {
        GovernorConfig {
            spec: DeviceSpec::v100(),
            policy,
            n_jobs: 40,
            seed: GOVERNOR_SEED,
            slack: (1.15, 1.6),
            deadline_safety: 0.92,
            queue_capacity: 8,
            max_batch: 4,
            freq_stride: 2,
            train_stride: 2,
            device_faults: FaultPlan::none(),
            model_faults: ModelFaults::none(),
            telemetry: None,
        }
    }

    fn expected_fingerprint(&self) -> u64 {
        let train_freqs = experiment_frequencies(&self.spec, self.train_stride);
        training_fingerprint(
            &self.spec.name,
            self.spec.default_core_mhz,
            &train_freqs,
            self.seed,
        )
    }
}

/// Characterizes the fixed job sets noiselessly, trains the two
/// domain-specific models, and publishes them into `registry` under the
/// run's training fingerprint. Returns that fingerprint — what
/// [`run_governor`] will demand of the artifacts it loads.
pub fn train_and_publish(
    cfg: &GovernorConfig,
    registry: &ModelRegistry,
) -> Result<u64, RegistryError> {
    let freqs = experiment_frequencies(&cfg.spec, cfg.train_stride);
    let default_mhz = cfg.spec.default_core_mhz;
    let fingerprint = cfg.expected_fingerprint();

    let cronos_chars = characterize_cronos(&cfg.spec, &cronos_job_set(), &freqs, 1, None);
    let cronos_model =
        DomainSpecificModel::train(&training_set(&cronos_chars), default_mhz, cfg.seed);
    registry.publish("cronos", &cronos_model, fingerprint)?;

    let ligen_chars = characterize_ligen(&cfg.spec, &ligen_job_set(), &freqs, 1, None);
    let ligen_model =
        DomainSpecificModel::train(&training_set(&ligen_chars), default_mhz, cfg.seed);
    registry.publish("ligen", &ligen_model, fingerprint)?;

    Ok(fingerprint)
}

/// Why a job ran at the default clock (or failed) instead of at the
/// policy's chosen frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FallbackReason {
    /// The registry has no published model for the application.
    ModelMissing,
    /// A model-load fault fired on the registry read.
    LoadFailed,
    /// The artifact's training fingerprint did not match this run.
    StaleArtifact,
    /// The admission queue was full; the job skipped prediction.
    AdmissionRejected,
    /// The device rejected the clock request; the retry path fell back.
    FrequencyRejected,
    /// A kernel launch failed permanently; the job did not complete.
    LaunchFailed,
    /// The job landed (by stealing or rescheduling) on a device class
    /// with no matching model artifact; device affinity forced the
    /// default clock. Only a fleet run produces this.
    AffinityDegraded,
}

/// One job's complete decision trail.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DecisionRecord {
    /// Arrival-order job id.
    pub job_id: u64,
    /// Application (`"cronos"` / `"ligen"`).
    pub app: String,
    /// Input-configuration label.
    pub label: String,
    /// Clock the policy requested; `None` = default clock.
    pub requested_mhz: Option<f64>,
    /// Why the request was not honored (absent on the happy path).
    pub fallback: Option<FallbackReason>,
    /// The job's deadline (s).
    pub deadline_s: f64,
    /// Model-predicted wall time at the chosen clock, when a prediction
    /// was served.
    pub predicted_time_s: Option<f64>,
    /// Measured wall time (s); 0 for jobs that failed to complete.
    pub measured_time_s: f64,
    /// Measured energy (J); 0 for jobs that failed to complete.
    pub measured_energy_j: f64,
    /// Whether the job completed (launch faults can kill it).
    pub completed: bool,
    /// Whether the job completed within its deadline.
    pub met_deadline: bool,
}

/// The result of one governor run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GovernorReport {
    /// Policy the run executed.
    pub policy: Policy,
    /// Device name.
    pub device: String,
    /// Stream seed.
    pub seed: u64,
    /// Jobs processed.
    pub n_jobs: usize,
    /// Total measured wall time (s).
    pub total_time_s: f64,
    /// Total measured energy (J).
    pub total_energy_j: f64,
    /// Jobs that missed their deadline (incl. failed jobs).
    pub deadline_misses: usize,
    /// `deadline_misses / n_jobs`.
    pub miss_rate: f64,
    /// Jobs that fell back to the default clock (or failed).
    pub fallbacks: usize,
    /// Jobs rejected at the admission queue.
    pub admission_rejected: usize,
    /// Prediction memo-cache counters.
    pub cache: CacheStats,
    /// Clock requests the device rejected (from queue degradation).
    pub frequency_rejections: u64,
    /// Retry-path default-clock fallbacks (from queue degradation).
    pub default_clock_fallbacks: u64,
    /// Per-job decision trail, in arrival order.
    pub decisions: Vec<DecisionRecord>,
}

pub(crate) struct JobTemplate {
    pub(crate) app: &'static str,
    pub(crate) label: String,
    pub(crate) features: Vec<f64>,
    pub(crate) trace: KernelTrace,
    pub(crate) base_time_s: f64,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    pub(crate) id: u64,
    pub(crate) template: usize,
    pub(crate) deadline_s: f64,
}

/// Tracks lazy per-application model loading through the registry.
pub(crate) struct ModelLoader {
    expected_fingerprint: u64,
    attempts: u64,
    /// Last failure per app, reported when serving finds no model.
    last_failure: BTreeMap<&'static str, FallbackReason>,
}

impl ModelLoader {
    pub(crate) fn new(expected_fingerprint: u64) -> Self {
        ModelLoader {
            expected_fingerprint,
            attempts: 0,
            last_failure: BTreeMap::new(),
        }
    }

    fn ensure(
        &mut self,
        app: &'static str,
        cfg: &GovernorConfig,
        registry: &ModelRegistry,
        engine: &mut PredictionEngine,
    ) {
        self.ensure_named(app, app, &cfg.model_faults, registry, engine);
    }

    /// Like `ensure`, but the registry artifact may live under a name
    /// other than the engine's app key — the fleet publishes per-device-
    /// class artifacts as `"<app>@<class-slug>"` while every class engine
    /// serves them under the plain app name.
    pub(crate) fn ensure_named(
        &mut self,
        app: &'static str,
        registry_name: &str,
        faults: &ModelFaults,
        registry: &ModelRegistry,
        engine: &mut PredictionEngine,
    ) {
        if engine.has_model(app) {
            return;
        }
        let index = self.attempts;
        self.attempts += 1;
        if schedule_fires(&faults.load_failures, faults.seed, STREAM_LOAD_FAIL, index) {
            self.last_failure.insert(app, FallbackReason::LoadFailed);
            return;
        }
        // A stale-fingerprint fault models an artifact trained under
        // different conditions: demand a fingerprint the artifact cannot
        // have, and let the registry's typed rejection drive the fallback.
        let expected =
            if schedule_fires(&faults.stale_fingerprints, faults.seed, STREAM_STALE, index) {
                self.expected_fingerprint ^ 0x5DEE_CE66_ADD1_C7ED
            } else {
                self.expected_fingerprint
            };
        match registry.load_expecting(registry_name, None, expected) {
            Ok((model, _, _)) => {
                engine.install_model(app, model);
                self.last_failure.remove(app);
            }
            Err(RegistryError::NotFound { .. }) => {
                self.last_failure.insert(app, FallbackReason::ModelMissing);
            }
            Err(RegistryError::Artifact {
                source: energy_model::ArtifactError::Fingerprint { .. },
                ..
            }) => {
                self.last_failure.insert(app, FallbackReason::StaleArtifact);
            }
            Err(_) => {
                self.last_failure.insert(app, FallbackReason::LoadFailed);
            }
        }
    }

    pub(crate) fn failure_for(&self, app: &str) -> FallbackReason {
        *self
            .last_failure
            .get(app)
            .unwrap_or(&FallbackReason::ModelMissing)
    }
}

pub(crate) fn build_templates(spec: &DeviceSpec) -> Vec<JobTemplate> {
    let mut templates = Vec::new();
    for cfg in cronos_job_set() {
        let workload = cronos::GpuCronos::new(
            cronos::Grid::cubic(cfg.grid_x, cfg.grid_y, cfg.grid_z),
            CRONOS_STEPS,
        );
        templates.push(JobTemplate {
            app: "cronos",
            label: cfg.label(),
            features: cfg.features(),
            trace: Workload::record(&workload, spec),
            base_time_s: 0.0,
        });
    }
    for cfg in ligen_job_set() {
        let workload =
            ligen::GpuLigen::new(cfg.ligands as u64, cfg.atoms as u64, cfg.fragments as u64);
        templates.push(JobTemplate {
            app: "ligen",
            label: cfg.label(),
            features: cfg.features(),
            trace: Workload::record(&workload, spec),
            base_time_s: 0.0,
        });
    }
    // Default-clock reference times on a clean, faultless device: the
    // deadline anchor must not depend on the run's fault plan.
    let mut device = Device::new(spec.clone());
    device.set_trace_capacity(Some(0));
    let mut queue = SynergyQueue::for_device(device);
    queue.set_policy(FrequencyPolicy::DeviceDefault);
    for t in &mut templates {
        t.base_time_s = t.trace.replay_on(&mut queue).time_s;
    }
    templates
}

pub(crate) fn generate_stream(
    seed: u64,
    n_jobs: usize,
    slack: (f64, f64),
    templates: &[JobTemplate],
) -> Vec<Vec<Job>> {
    let mut rng = SplitMix64::new(seed);
    let (lo, hi) = slack;
    let mut bursts: Vec<Vec<Job>> = Vec::new();
    let mut id = 0u64;
    while (id as usize) < n_jobs {
        let burst_len = (1 + rng.below(3)).min((n_jobs - id as usize) as u64);
        let mut burst = Vec::with_capacity(burst_len as usize);
        for _ in 0..burst_len {
            let template = rng.below(templates.len() as u64) as usize;
            let slack = lo + rng.unit() * (hi - lo);
            burst.push(Job {
                id,
                template,
                deadline_s: templates[template].base_time_s * slack,
            });
            id += 1;
        }
        bursts.push(burst);
    }
    bursts
}

/// Runs the closed loop against a registry populated by
/// [`train_and_publish`] (or deliberately empty, to exercise fallback).
/// Infallible by design: every failure mode becomes a recorded
/// [`FallbackReason`], not an error.
pub fn run_governor(cfg: &GovernorConfig, registry: &ModelRegistry) -> GovernorReport {
    let templates = build_templates(&cfg.spec);
    let bursts = generate_stream(cfg.seed, cfg.n_jobs, cfg.slack, &templates);

    let serve_freqs = experiment_frequencies(&cfg.spec, cfg.freq_stride);
    let mut engine = PredictionEngine::new(EngineConfig {
        freqs: serve_freqs,
        queue_capacity: cfg.queue_capacity,
        max_batch: cfg.max_batch,
    });
    let mut loader = ModelLoader::new(cfg.expected_fingerprint());

    let mut device = Device::with_faults(cfg.spec.clone(), cfg.device_faults.clone());
    device.set_trace_capacity(Some(0));
    let mut queue = SynergyQueue::for_device(device);

    let mut decisions: Vec<DecisionRecord> = Vec::with_capacity(cfg.n_jobs);
    let mut admission_rejected = 0usize;

    for burst in &bursts {
        // Admission: the whole burst hits the queue before any draining,
        // so a burst larger than the queue sheds load visibly.
        let mut rejected: Vec<&Job> = Vec::new();
        for job in burst {
            let template = &templates[job.template];
            loader.ensure(template.app, cfg, registry, &mut engine);
            let request = PredictionRequest {
                job_id: job.id,
                app: template.app.to_string(),
                features: template.features.clone(),
            };
            if engine.try_enqueue(request).is_err() {
                rejected.push(job);
            }
        }

        // Rejected jobs still run — at the default clock, recorded as
        // admission fallbacks.
        for job in rejected {
            admission_rejected += 1;
            let record = execute_job(
                &templates[job.template],
                job,
                None,
                None,
                Some(FallbackReason::AdmissionRejected),
                &mut queue,
            );
            decisions.push(record);
        }

        // Serve and execute in batches until the burst's queue drains.
        while engine.queue_len() > 0 {
            let served = engine.drain_batch();
            for (request, result) in served {
                let Some(job) = burst.iter().find(|j| j.id == request.job_id) else {
                    continue;
                };
                let template = &templates[job.template];
                let (requested, predicted, fallback) = match result {
                    Ok(profile) => {
                        let planned_deadline = job.deadline_s * cfg.deadline_safety;
                        match choose_frequency(cfg.policy, &profile, planned_deadline) {
                            Some(freq) => {
                                let predicted = profile
                                    .pareto
                                    .iter()
                                    .find(|p| p.freq_mhz == freq)
                                    .map(|p| profile.default_time_s / p.speedup);
                                (Some(freq), predicted, None)
                            }
                            None => (None, Some(profile.default_time_s), None),
                        }
                    }
                    Err(ServeError::ModelUnavailable { ref app }) => {
                        (None, None, Some(loader.failure_for(app)))
                    }
                    Err(ServeError::FeatureWidth { .. } | ServeError::ConfigWidth { .. }) => {
                        (None, None, Some(FallbackReason::StaleArtifact))
                    }
                };
                let record = execute_job(template, job, requested, predicted, fallback, &mut queue);
                decisions.push(record);
            }
        }
    }

    decisions.sort_by_key(|d| d.job_id);

    let deadline_misses = decisions.iter().filter(|d| !d.met_deadline).count();
    let fallbacks = decisions.iter().filter(|d| d.fallback.is_some()).count();
    let degradation = queue.degradation();
    let report = GovernorReport {
        policy: cfg.policy,
        device: cfg.spec.name.clone(),
        seed: cfg.seed,
        n_jobs: decisions.len(),
        total_time_s: decisions.iter().map(|d| d.measured_time_s).sum(),
        total_energy_j: decisions.iter().map(|d| d.measured_energy_j).sum(),
        deadline_misses,
        miss_rate: if decisions.is_empty() {
            0.0
        } else {
            deadline_misses as f64 / decisions.len() as f64
        },
        fallbacks,
        admission_rejected,
        cache: engine.cache_stats(),
        frequency_rejections: degradation.frequency_rejections,
        default_clock_fallbacks: degradation.default_clock_fallbacks,
        decisions,
    };

    // Telemetry is observation-only: armed or not, the report above is
    // already complete and bit-identical.
    if let Some(telemetry) = &cfg.telemetry {
        let registry = telemetry.registry();
        registry
            .counter("governor.jobs_total")
            .add(report.n_jobs as u64);
        registry
            .counter("governor.deadline_misses")
            .add(report.deadline_misses as u64);
        registry
            .counter("governor.fallbacks")
            .add(report.fallbacks as u64);
        registry
            .counter("governor.admission_rejected")
            .add(report.admission_rejected as u64);
        registry
            .counter("governor.cache_hits")
            .add(report.cache.hits);
        registry
            .counter("governor.cache_misses")
            .add(report.cache.misses);
        registry
            .counter("governor.frequency_rejections")
            .add(report.frequency_rejections);
        registry
            .gauge("governor.total_energy_j")
            .set(report.total_energy_j);
        registry
            .gauge("governor.total_time_s")
            .set(report.total_time_s);
        registry.gauge("governor.miss_rate").set(report.miss_rate);
        registry
            .gauge("governor.cache_hit_rate")
            .set(report.cache.hit_rate());
    }

    report
}

/// Replays one job under the chosen clock and records the outcome,
/// folding device-side degradation (clock rejections riding the retry
/// path back to the default clock) into the fallback field.
pub(crate) fn execute_job(
    template: &JobTemplate,
    job: &Job,
    requested_mhz: Option<f64>,
    predicted_time_s: Option<f64>,
    fallback: Option<FallbackReason>,
    queue: &mut SynergyQueue,
) -> DecisionRecord {
    let before = queue.degradation();
    match requested_mhz {
        Some(freq) if fallback.is_none() => {
            queue.set_policy(FrequencyPolicy::Fixed(freq));
        }
        _ => queue.set_policy(FrequencyPolicy::DeviceDefault),
    }
    let outcome = template.trace.try_replay_on(queue);
    let after = queue.degradation();

    let mut fallback = fallback;
    let (measured_time_s, measured_energy_j, completed) = match outcome {
        Ok(m) => {
            if fallback.is_none() && after.default_clock_fallbacks > before.default_clock_fallbacks
            {
                fallback = Some(FallbackReason::FrequencyRejected);
            }
            (m.time_s, m.energy_j, true)
        }
        Err(_) => {
            fallback = Some(FallbackReason::LaunchFailed);
            (0.0, 0.0, false)
        }
    };

    DecisionRecord {
        job_id: job.id,
        app: template.app.to_string(),
        label: template.label.clone(),
        requested_mhz,
        fallback,
        deadline_s: job.deadline_s,
        predicted_time_s,
        measured_time_s,
        measured_energy_j,
        completed,
        met_deadline: completed && measured_time_s <= job.deadline_s,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn fast_cfg(policy: Policy) -> GovernorConfig {
        let mut cfg = GovernorConfig::pinned(policy);
        cfg.n_jobs = 10;
        cfg.freq_stride = 8;
        cfg.train_stride = 8;
        cfg
    }

    #[test]
    fn stream_is_deterministic_and_covers_both_apps() {
        let cfg = fast_cfg(Policy::DefaultClock);
        let templates = build_templates(&cfg.spec);
        let a = generate_stream(cfg.seed, cfg.n_jobs, cfg.slack, &templates);
        let b = generate_stream(cfg.seed, cfg.n_jobs, cfg.slack, &templates);
        let ids = |bursts: &[Vec<Job>]| -> Vec<(u64, usize, u64)> {
            bursts
                .iter()
                .flatten()
                .map(|j| (j.id, j.template, j.deadline_s.to_bits()))
                .collect()
        };
        assert_eq!(ids(&a), ids(&b));
        assert_eq!(ids(&a).len(), cfg.n_jobs);
    }

    #[test]
    fn empty_registry_degrades_every_job_to_default_clock() {
        let dir = std::env::temp_dir().join("governor-sim-empty-registry");
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir);
        let cfg = fast_cfg(Policy::MinEnergyUnderDeadline);
        let report = run_governor(&cfg, &registry);
        assert_eq!(report.n_jobs, cfg.n_jobs);
        assert_eq!(report.fallbacks, cfg.n_jobs);
        assert!(report
            .decisions
            .iter()
            .all(|d| d.fallback == Some(FallbackReason::ModelMissing)));
        assert!(report.decisions.iter().all(|d| d.requested_mhz.is_none()));
        // Default-clock execution with generous slack never misses.
        assert_eq!(report.deadline_misses, 0);
    }
}
