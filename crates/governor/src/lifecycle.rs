//! Adaptive model lifecycle: drift detection, quarantine-fed online
//! retraining, and crash-safe canary publishing with automatic
//! promote/rollback.
//!
//! The registry used to be a static artifact store the governor trusted
//! forever. This module closes the learning loop around it:
//!
//! 1. **Residual tracking** — every served prediction is compared against
//!    the measured outcome the sim already produces. Per-model absolute
//!    percentage errors feed a Page–Hinkley [`DriftDetector`] (exported
//!    as `governor.drift.*` telemetry), which trips deterministically
//!    under a seeded stream when the hardware the model was trained on no
//!    longer matches the hardware serving it.
//! 2. **Online retraining** — a trip launches a crash-resumable
//!    characterization campaign ([`energy_model::campaign`]) on the
//!    *current* device, quarantines degraded points
//!    ([`energy_model::quarantine`]), gates the survivors through
//!    [`ml::Dataset::sanitized`], fits a fresh forest, and fingerprints
//!    it via [`energy_model::training_fingerprint`].
//! 3. **Canary publishing** — the fresh model is published to the
//!    registry's canary channel and serves a deterministic hash-based
//!    fraction of traffic alongside the incumbent. Measured MAPE on the
//!    canary slice against the incumbent slice drives an automatic
//!    *promote* (atomic registry advance + serving-cache invalidation)
//!    or *rollback* (version retired, incumbent untouched).
//!
//! ## State machine (per application)
//!
//! ```text
//! Stable ──trip──▶ Retraining ──publish──▶ Canary ──better──▶ Promoted ─┐
//!    ▲                 │ corrupt data /        │ worse                  │
//!    │                 ▼ non-finite fit        ▼                        │
//!    └───────── RetrainFailed          RolledBack ──▶ Stable ◀──────────┘
//! ```
//!
//! ## Crash safety
//!
//! Every lifecycle transition with a durable side effect is journaled
//! write-ahead to `lifecycle.jsonl` (the same newline-commit JSONL
//! discipline as the campaign journal): *intent* record → idempotent side
//! effect → *done* record. [`run_lifecycle`] is a deterministic replay of
//! `(seed, config)`; on resume, the replay's would-be events are matched
//! against the journal prefix — already-committed events are consumed
//! without re-appending, side effects whose done-marker is on disk are
//! skipped, and the run continues bit-identically from any boundary. The
//! [`LifecycleConfig::crash_after_appends`] chaos knob kills the run
//! immediately after the Nth new append commits, exactly like the
//! campaign's knob.
//!
//! ## Contracts
//!
//! *Never an unserved request*: every failure mode — corrupt retrain
//! data, non-finite fit, a canary worse than the incumbent, a publish
//! crash — degrades to the incumbent model and bumps
//! [`DegradationMetrics::lifecycle_fallbacks`]; every job in the stream
//! still executes and is recorded.
//!
//! *Determinism*: the report is a pure function of `(seed, config, fault
//! plans)`; telemetry is observation-only.

// Lifecycle is runtime infrastructure: degrade, never die.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use energy_model::artifact::fnv1a_64;
use energy_model::campaign::{run_campaign, CampaignConfig, DeviceSlot};
use energy_model::characterize::Workload;
use energy_model::persist::{read_journal, Journal, PersistError};
use energy_model::quarantine::{quarantine_results, QuarantinePolicy};
use energy_model::telemetry::Telemetry;
use energy_model::workflow::{experiment_frequencies, CharacterizedInput, CRONOS_STEPS};
use energy_model::{training_fingerprint, DomainSpecificModel};
use gpu_sim::{Device, DeviceSpec};
use ml::dataset::{Dataset, Matrix};
use serde::{Deserialize, Serialize};
use synergy::{DegradationMetrics, SynergyQueue};

use crate::policy::{choose_frequency, Policy};
use crate::registry::{ModelRegistry, RegistryError, RegistryEvent};
use crate::serving::{CacheStats, EngineConfig, PredictionEngine, PredictionRequest, ServeError};
use crate::sim::{
    build_templates, cronos_job_set, execute_job, generate_stream, ligen_job_set, schedule_fires,
    unit_draw, DecisionRecord, FallbackReason, GovernorConfig, Job, JobTemplate, ModelFaults,
    STREAM_LOAD_FAIL, STREAM_STALE,
};

/// Stream id of the canary traffic draw (sibling of the model-fault
/// streams in `sim.rs`; xor'd with the canary version so each canary gets
/// an independent slice).
const STREAM_CANARY: u64 = 13;

/// Journal schema version.
const LIFECYCLE_JOURNAL_VERSION: u32 = 1;

/// The lifecycle journal file inside the run directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join("lifecycle.jsonl")
}

// ---- Drift detection ----

/// Page–Hinkley detector knobs over the absolute-percentage-error stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Magnitude slack per sample: deviations below `delta` never
    /// accumulate, so a well-calibrated model idles at statistic ≈ 0.
    pub delta: f64,
    /// Trip threshold on the Page–Hinkley statistic.
    pub lambda: f64,
    /// Minimum samples observed before a trip may fire.
    pub min_samples: u64,
}

impl DriftConfig {
    /// The pinned detector: trips within a couple of observations of a
    /// sustained large residual shift, never on calibration noise.
    pub fn pinned() -> Self {
        DriftConfig {
            delta: 0.02,
            lambda: 0.6,
            min_samples: 4,
        }
    }

    /// A detector that never trips (`lambda = ∞`) — the no-lifecycle
    /// baseline and the differential-test configuration.
    pub fn disabled() -> Self {
        DriftConfig {
            lambda: f64::INFINITY,
            ..DriftConfig::pinned()
        }
    }
}

/// One-sided Page–Hinkley change detector over a non-negative residual
/// stream. Maintains the running mean `x̄`, the cumulative deviation
/// `Σ (xᵢ − x̄ᵢ − δ)`, and its running minimum; the statistic is the gap
/// between the two. A sustained upward shift in the residual level drives
/// the statistic past `λ`; a constant (even large) level does not, because
/// the running mean adapts and `δ` bleeds the accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftDetector {
    cfg: DriftConfig,
    n: u64,
    mean: f64,
    cum: f64,
    min_cum: f64,
    tripped: bool,
}

impl DriftDetector {
    /// A fresh detector.
    pub fn new(cfg: DriftConfig) -> Self {
        DriftDetector {
            cfg,
            n: 0,
            mean: 0.0,
            cum: 0.0,
            min_cum: 0.0,
            tripped: false,
        }
    }

    /// Feeds one residual observation; returns `true` exactly on the
    /// observation that trips the detector (the edge, not the level).
    /// A tripped detector latches — further observations are absorbed
    /// without re-tripping — until [`DriftDetector::reset`].
    pub fn observe(&mut self, ape: f64) -> bool {
        if self.tripped || !ape.is_finite() {
            return false;
        }
        self.n += 1;
        self.mean += (ape - self.mean) / self.n as f64;
        self.cum += ape - self.mean - self.cfg.delta;
        if self.cum < self.min_cum {
            self.min_cum = self.cum;
        }
        if self.n >= self.cfg.min_samples && self.statistic() > self.cfg.lambda {
            self.tripped = true;
        }
        self.tripped
    }

    /// The current Page–Hinkley statistic (`cum − min(cum)`, ≥ 0).
    pub fn statistic(&self) -> f64 {
        self.cum - self.min_cum
    }

    /// Observations absorbed since the last reset.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// Running mean of the observed residuals.
    pub fn mean_ape(&self) -> f64 {
        self.mean
    }

    /// Whether the detector is latched tripped.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Clears all state, keeping the configuration.
    pub fn reset(&mut self) {
        *self = DriftDetector::new(self.cfg);
    }
}

/// The residual of one served prediction: the worse of the time and
/// energy absolute percentage errors, or `None` when the comparison is
/// meaningless (failed job, no prediction, non-positive measurement).
pub fn residual_ape(
    predicted_time_s: f64,
    predicted_energy_j: f64,
    measured_time_s: f64,
    measured_energy_j: f64,
) -> Option<f64> {
    if !(predicted_time_s.is_finite()
        && predicted_energy_j.is_finite()
        && measured_time_s > 0.0
        && measured_energy_j > 0.0)
    {
        return None;
    }
    let t = ((measured_time_s - predicted_time_s) / measured_time_s).abs();
    let e = ((measured_energy_j - predicted_energy_j) / measured_energy_j).abs();
    Some(t.max(e))
}

/// Cumulative per-application drift accounting for the final report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DriftSummary {
    /// Residuals observed across all detector generations.
    pub observations: u64,
    /// Trips fired.
    pub trips: u64,
    /// Statistic of the current detector generation.
    pub statistic: f64,
    /// Mean residual of the current detector generation.
    pub mean_ape: f64,
}

/// Folds per-application residuals into one [`DriftDetector`] per model
/// and mirrors them into `governor.drift.*` telemetry. Purely
/// observational: telemetry armed or absent, `observe` returns the same
/// answers for the same stream.
pub struct ResidualTracker {
    cfg: DriftConfig,
    apps: BTreeMap<String, AppDrift>,
}

struct AppDrift {
    detector: DriftDetector,
    observations: u64,
    trips: u64,
}

impl ResidualTracker {
    /// A tracker minting one detector per application on first contact.
    pub fn new(cfg: DriftConfig) -> Self {
        ResidualTracker {
            cfg,
            apps: BTreeMap::new(),
        }
    }

    /// Feeds one residual for `app`; returns `true` on the trip edge.
    pub fn observe(&mut self, app: &str, ape: f64, telemetry: Option<&Telemetry>) -> bool {
        let entry = self
            .apps
            .entry(app.to_string())
            .or_insert_with(|| AppDrift {
                detector: DriftDetector::new(self.cfg),
                observations: 0,
                trips: 0,
            });
        entry.observations += 1;
        let tripped = entry.detector.observe(ape);
        if tripped {
            entry.trips += 1;
        }
        if let Some(t) = telemetry {
            let r = t.registry();
            r.counter("governor.drift.observations").add(1);
            r.gauge(&format!("governor.drift.statistic.{app}"))
                .set(entry.detector.statistic());
            r.gauge(&format!("governor.drift.mean_ape.{app}"))
                .set(entry.detector.mean_ape());
            if tripped {
                r.counter("governor.drift.trips").add(1);
            }
        }
        tripped
    }

    /// The detector currently watching `app`, if any residual arrived.
    pub fn detector(&self, app: &str) -> Option<&DriftDetector> {
        self.apps.get(app).map(|a| &a.detector)
    }

    /// Starts a fresh detector generation for `app` (post-verdict).
    pub fn reset(&mut self, app: &str) {
        if let Some(entry) = self.apps.get_mut(app) {
            entry.detector.reset();
        }
    }

    /// Cumulative per-application summaries.
    pub fn summary(&self) -> BTreeMap<String, DriftSummary> {
        self.apps
            .iter()
            .map(|(app, a)| {
                (
                    app.clone(),
                    DriftSummary {
                        observations: a.observations,
                        trips: a.trips,
                        statistic: a.detector.statistic(),
                        mean_ape: a.detector.mean_ape(),
                    },
                )
            })
            .collect()
    }
}

// ---- Journal ----

/// One committed lifecycle transition. The journal is the authoritative
/// record of every durable side effect; see the module docs for the
/// intent/done discipline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LifecycleEvent {
    /// First record: schema version + config fingerprint, rejecting
    /// resumes under a different configuration.
    Header {
        /// Journal schema version.
        version: u32,
        /// Fingerprint of the lifecycle configuration.
        fingerprint: u64,
    },
    /// A registry-health observation (corrupt version skipped, dangling
    /// canary pointer healed) surfaced during a load.
    Registry {
        /// The observation.
        event: RegistryEvent,
    },
    /// The drift detector tripped for `app`.
    DriftTripped {
        /// Application whose model drifted.
        app: String,
        /// Retrain sequence number for this app (1-based).
        seq: u32,
        /// Highest job id processed when the trip was handled.
        at_job: u64,
        /// Detector samples at trip time.
        samples: u64,
        /// Page–Hinkley statistic at trip time (`f64::to_bits`, exact).
        statistic_bits: u64,
    },
    /// A retrain attempt failed (corrupt data, non-finite fit, campaign
    /// error, budget exhausted); serving stays on the incumbent.
    RetrainFailed {
        /// Application involved.
        app: String,
        /// Retrain sequence number.
        seq: u32,
        /// What went wrong, rendered.
        reason: String,
    },
    /// Intent to publish a retrained model at `version` (write-ahead of
    /// the artifact write).
    PublishIntent {
        /// Application involved.
        app: String,
        /// Retrain sequence number.
        seq: u32,
        /// Version the publish will allocate.
        version: u32,
        /// Training fingerprint the artifact will carry.
        fingerprint: u64,
    },
    /// The artifact file for `version` is durably on disk.
    ArtifactWritten {
        /// Application involved.
        app: String,
        /// Retrain sequence number.
        seq: u32,
        /// Version written.
        version: u32,
    },
    /// The canary pointer durably names `version`; the canary is serving.
    CanaryOpened {
        /// Application involved.
        app: String,
        /// Retrain sequence number.
        seq: u32,
        /// Canary version.
        version: u32,
    },
    /// Intent to promote the canary (write-ahead of the pointer removal).
    PromoteIntent {
        /// Application involved.
        app: String,
        /// Canary version being promoted.
        version: u32,
        /// Highest job id processed at verdict time.
        at_job: u64,
        /// Canary-slice MAPE (`f64::to_bits`, exact).
        canary_mape_bits: u64,
        /// Incumbent-slice MAPE (`f64::to_bits`, exact).
        incumbent_mape_bits: u64,
    },
    /// The promote is durable: `version` is the stable latest.
    Promoted {
        /// Application involved.
        app: String,
        /// Promoted version.
        version: u32,
    },
    /// Intent to roll the canary back (write-ahead of the retire).
    RollbackIntent {
        /// Application involved.
        app: String,
        /// Canary version being rolled back.
        version: u32,
        /// Highest job id processed at verdict time.
        at_job: u64,
        /// Canary-slice MAPE (`f64::to_bits`, exact).
        canary_mape_bits: u64,
        /// Incumbent-slice MAPE (`f64::to_bits`, exact).
        incumbent_mape_bits: u64,
    },
    /// The rollback is durable: `version` is retired, the incumbent was
    /// never touched.
    RolledBack {
        /// Application involved.
        app: String,
        /// Retired version.
        version: u32,
    },
}

/// A typed lifecycle failure. Everything recoverable degrades inside
/// [`run_lifecycle`]; what escapes here is unrecoverable for *this
/// process* (a crash), not for the system — resume converges.
#[derive(Debug)]
pub enum LifecycleError {
    /// A registry operation failed in a way replay cannot absorb.
    Registry(RegistryError),
    /// The journal could not be read or written.
    Persist(PersistError),
    /// A lifecycle journal already lives here and `resume` is false.
    JournalExists {
        /// The existing journal.
        path: PathBuf,
    },
    /// The on-disk journal diverges from this configuration's replay.
    Corrupt {
        /// What diverged.
        message: String,
    },
    /// The `crash_after_appends` chaos knob fired: the process "crashed"
    /// immediately after the Nth journal append committed.
    InjectedCrash {
        /// Appends committed when the crash fired.
        appends: u64,
    },
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleError::Registry(e) => write!(f, "registry: {e}"),
            LifecycleError::Persist(e) => write!(f, "persist: {e}"),
            LifecycleError::JournalExists { path } => {
                write!(
                    f,
                    "lifecycle journal already exists at {} (pass resume=true)",
                    path.display()
                )
            }
            LifecycleError::Corrupt { message } => {
                write!(f, "lifecycle journal corrupt: {message}")
            }
            LifecycleError::InjectedCrash { appends } => {
                write!(f, "injected crash after {appends} journal appends")
            }
        }
    }
}

impl std::error::Error for LifecycleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LifecycleError::Registry(e) => Some(e),
            LifecycleError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RegistryError> for LifecycleError {
    fn from(e: RegistryError) -> Self {
        LifecycleError::Registry(e)
    }
}

impl From<PersistError> for LifecycleError {
    fn from(e: PersistError) -> Self {
        LifecycleError::Persist(e)
    }
}

/// The write-ahead journal plus the resume cursor over its prior
/// records. `commit` either consumes the matching prior record (resume)
/// or appends a new one; `needs_side_effect` answers whether the side
/// effect guarded by a done-marker still has to run.
struct LifecycleJournal {
    journal: Journal,
    prior: Vec<LifecycleEvent>,
    cursor: usize,
    seen: Vec<LifecycleEvent>,
    appends: u64,
    crash_after: Option<u64>,
}

impl LifecycleJournal {
    fn open(
        dir: &Path,
        fingerprint: u64,
        resume: bool,
        crash_after: Option<u64>,
    ) -> Result<Self, LifecycleError> {
        let jpath = journal_path(dir);
        let prior = if jpath.exists() {
            if !resume {
                return Err(LifecycleError::JournalExists { path: jpath });
            }
            let contents = read_journal::<LifecycleEvent>(&jpath)?;
            if contents.torn_tail {
                heal_torn_tail(&jpath)?;
            }
            contents.records
        } else {
            Vec::new()
        };
        let journal = Journal::open(&jpath)?;
        let mut jr = LifecycleJournal {
            journal,
            prior,
            cursor: 0,
            seen: Vec::new(),
            appends: 0,
            crash_after,
        };
        jr.commit(LifecycleEvent::Header {
            version: LIFECYCLE_JOURNAL_VERSION,
            fingerprint,
        })?;
        Ok(jr)
    }

    /// The next not-yet-consumed prior record, if resuming.
    fn prior_next(&self) -> Option<&LifecycleEvent> {
        self.prior.get(self.cursor)
    }

    /// Whether the side effect guarded by done-marker `event` still has
    /// to run: false only when the marker is already durable (next in the
    /// prior journal).
    fn needs_side_effect(&self, event: &LifecycleEvent) -> bool {
        self.prior_next() != Some(event)
    }

    fn commit(&mut self, event: LifecycleEvent) -> Result<(), LifecycleError> {
        if let Some(prior) = self.prior.get(self.cursor) {
            if *prior == event {
                self.cursor += 1;
                self.seen.push(event);
                return Ok(());
            }
            return Err(LifecycleError::Corrupt {
                message: format!(
                    "record {} diverges: on disk {prior:?}, replay produced {event:?}",
                    self.cursor
                ),
            });
        }
        self.journal.append(&event)?;
        self.seen.push(event);
        self.appends += 1;
        if self.crash_after == Some(self.appends) {
            return Err(LifecycleError::InjectedCrash {
                appends: self.appends,
            });
        }
        Ok(())
    }

    /// Every consumed prior record must be accounted for by the replay.
    fn finish(&self) -> Result<(), LifecycleError> {
        if self.cursor < self.prior.len() {
            return Err(LifecycleError::Corrupt {
                message: format!(
                    "journal holds {} records the replay never produced (first: {:?})",
                    self.prior.len() - self.cursor,
                    self.prior[self.cursor]
                ),
            });
        }
        Ok(())
    }
}

/// Truncates an uncommitted torn trailing line (same discipline as the
/// campaign journal: the newline is the commit mark).
fn heal_torn_tail(jpath: &Path) -> Result<(), LifecycleError> {
    let io = |e: std::io::Error| {
        LifecycleError::Persist(PersistError::Io {
            path: jpath.to_path_buf(),
            source: e,
        })
    };
    let bytes = fs::read(jpath).map_err(io)?;
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1) as u64;
    let f = fs::OpenOptions::new().write(true).open(jpath).map_err(io)?;
    f.set_len(keep).map_err(io)?;
    f.sync_all().map_err(io)?;
    Ok(())
}

// ---- Configuration ----

/// A hardware shift injected mid-stream: from `at_job` onward, jobs
/// execute on a device with `spec` instead of the run's original spec.
#[derive(Debug, Clone)]
pub struct DriftScenario {
    /// First job id executed on the drifted device.
    pub at_job: u64,
    /// The drifted device.
    pub spec: DeviceSpec,
}

/// An aged/degraded variant of `spec`: every *power* knob worsens (higher
/// dynamic and idle draw, steeper voltage curve, weaker clock gating)
/// while the timing model is untouched — measured times stay
/// bit-identical, deadlines stay valid, and only the energy landscape
/// (and with it the energy-optimal clock) moves. Exactly the failure a
/// time-accurate but energy-stale model cannot see.
pub fn efficiency_drift(spec: &DeviceSpec) -> DeviceSpec {
    let mut s = spec.clone();
    s.core_power_w *= 1.6;
    s.idle_power_w *= 1.3;
    s.mem_power_w *= 1.2;
    // Keep the cap from flattening the (now higher) curve.
    s.tdp_w *= 1.7;
    s.voltage.exponent *= 1.35;
    s.clock_gating_floor = (s.clock_gating_floor * 1.4).min(0.9);
    s
}

/// A forced drift trip — the test hook that drives the rollback scenario
/// (sabotaged retrain → worse canary → automatic rollback) without
/// relying on detector timing.
#[derive(Debug, Clone)]
pub struct ForcedTrip {
    /// Trip fires after the burst containing this job id.
    pub at_job: u64,
    /// Application to trip.
    pub app: String,
}

/// Configuration of one lifecycle run.
#[derive(Clone)]
pub struct LifecycleConfig {
    /// The underlying governor run (device, policy, stream, faults).
    pub governor: GovernorConfig,
    /// Drift detector knobs ([`DriftConfig::disabled`] turns the
    /// lifecycle into a plain governor run).
    pub drift: DriftConfig,
    /// Fraction of an app's traffic served by an open canary (hash-based,
    /// deterministic per job id).
    pub canary_fraction: f64,
    /// Canary-slice observations required before a verdict.
    pub min_canary_samples: u64,
    /// Incumbent-slice observations required before a verdict.
    pub min_incumbent_samples: u64,
    /// Promote iff `canary_mape ≤ incumbent_mape × promote_margin`.
    pub promote_margin: f64,
    /// Retrain budget across the whole run.
    pub max_retrains: u32,
    /// Optional injected hardware drift.
    pub scenario: Option<DriftScenario>,
    /// Optional forced trip (testing hook).
    pub force_trip: Option<ForcedTrip>,
    /// Device the retraining campaign characterizes. `None` = the
    /// *current* device (drifted once the scenario is active) — the live
    /// hardware. Overriding it is the sabotage hook for rollback tests.
    pub retrain_spec: Option<DeviceSpec>,
    /// Quarantine policy applied to retraining campaign results.
    pub quarantine: QuarantinePolicy,
    /// MAD multiple for the [`ml::Dataset::sanitized`] outlier gate.
    pub outlier_mads: Option<f64>,
    /// Minimum clean samples a retrain needs; fewer is "corrupt training
    /// data" and fails the retrain.
    pub min_train_points: usize,
    /// Chaos knob: abort immediately after the Nth new journal append.
    pub crash_after_appends: Option<u64>,
}

impl LifecycleConfig {
    /// The pinned lifecycle configuration over
    /// [`GovernorConfig::pinned`].
    pub fn pinned(policy: Policy) -> Self {
        LifecycleConfig {
            governor: GovernorConfig::pinned(policy),
            drift: DriftConfig::pinned(),
            canary_fraction: 0.5,
            min_canary_samples: 4,
            min_incumbent_samples: 2,
            promote_margin: 1.0,
            max_retrains: 2,
            scenario: None,
            force_trip: None,
            retrain_spec: None,
            quarantine: QuarantinePolicy::default(),
            outlier_mads: Some(8.0),
            min_train_points: 16,
            crash_after_appends: None,
        }
    }

    /// Identity of the run for the journal header: everything that shapes
    /// the replayed event stream.
    fn fingerprint(&self) -> u64 {
        use fmt::Write as _;
        let g = &self.governor;
        let mut desc = String::new();
        let _ = write!(
            desc,
            "spec={};policy={};n_jobs={};seed={};slack={:?};safety={};queue={};batch={};\
             fstride={};tstride={};",
            g.spec.name,
            g.policy.name(),
            g.n_jobs,
            g.seed,
            g.slack,
            g.deadline_safety,
            g.queue_capacity,
            g.max_batch,
            g.freq_stride,
            g.train_stride,
        );
        let _ = write!(
            desc,
            "drift={:x}/{:x}/{};frac={:x};margin={:x};min_c={};min_i={};max_retrains={};",
            self.drift.delta.to_bits(),
            self.drift.lambda.to_bits(),
            self.drift.min_samples,
            self.canary_fraction.to_bits(),
            self.promote_margin.to_bits(),
            self.min_canary_samples,
            self.min_incumbent_samples,
            self.max_retrains,
        );
        if let Some(sc) = &self.scenario {
            let _ = write!(desc, "scenario={}@{};", sc.spec.name, sc.at_job);
        }
        if let Some(ft) = &self.force_trip {
            let _ = write!(desc, "force={}@{};", ft.app, ft.at_job);
        }
        if let Some(spec) = &self.retrain_spec {
            let _ = write!(desc, "retrain_spec={};", spec.name);
        }
        let _ = write!(desc, "min_train={};", self.min_train_points);
        fnv1a_64(desc.as_bytes())
    }
}

// ---- Report ----

/// Which model channel served a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ServedChannel {
    /// The incumbent stable model.
    Stable,
    /// The canary model under evaluation.
    Canary,
}

/// One job's decision trail plus its lifecycle annotations.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LifecycleDecision {
    /// The governor-shaped decision record.
    pub record: DecisionRecord,
    /// Channel that served the prediction (stable when none was served).
    pub channel: ServedChannel,
    /// Model-predicted energy at the chosen clock, when served.
    pub predicted_energy_j: Option<f64>,
    /// Residual fed to the tracker, when measurable.
    pub ape: Option<f64>,
}

/// The result of one lifecycle run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LifecycleReport {
    /// Policy the run executed.
    pub policy: Policy,
    /// Device name (the original, pre-drift spec).
    pub device: String,
    /// Stream seed.
    pub seed: u64,
    /// Jobs processed.
    pub n_jobs: usize,
    /// Total measured wall time (s).
    pub total_time_s: f64,
    /// Total measured energy (J).
    pub total_energy_j: f64,
    /// Jobs that missed their deadline.
    pub deadline_misses: usize,
    /// `deadline_misses / n_jobs`.
    pub miss_rate: f64,
    /// Jobs that fell back to the default clock (or failed).
    pub fallbacks: usize,
    /// Jobs rejected at the admission queue.
    pub admission_rejected: usize,
    /// Prediction memo-cache counters.
    pub cache: CacheStats,
    /// Device + lifecycle degradation counters
    /// (`lifecycle_fallbacks` counts degraded lifecycle operations).
    pub degradation: DegradationMetrics,
    /// Per-job decisions in arrival order.
    pub decisions: Vec<LifecycleDecision>,
    /// The journaled lifecycle transitions, in commit order (header
    /// excluded).
    pub events: Vec<LifecycleEvent>,
    /// Cumulative per-application drift accounting.
    pub drift: BTreeMap<String, DriftSummary>,
    /// Retrains attempted (successful publishes and failures alike).
    pub retrains: u32,
    /// Canaries promoted.
    pub promotes: u32,
    /// Canaries rolled back.
    pub rollbacks: u32,
}

// ---- Per-app lifecycle state ----

#[derive(Debug, Clone, Copy, Default)]
struct ApeAccum {
    sum: f64,
    n: u64,
}

impl ApeAccum {
    fn add(&mut self, ape: f64) {
        self.sum += ape;
        self.n += 1;
    }

    fn mape(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.sum / self.n as f64
        }
    }
}

enum Phase {
    Stable,
    Canary {
        version: u32,
        model: Box<DomainSpecificModel>,
        canary: ApeAccum,
        incumbent: ApeAccum,
    },
}

struct AppState {
    phase: Phase,
    retrain_seq: u32,
    forced_used: bool,
}

impl AppState {
    fn new() -> Self {
        AppState {
            phase: Phase::Stable,
            retrain_seq: 0,
            forced_used: false,
        }
    }
}

fn canary_key(app: &str) -> String {
    format!("{app}#canary")
}

// ---- Retraining ----

fn retrain_seed(seed: u64, app: &str, seq: u32) -> u64 {
    let mut desc = String::new();
    let _ = fmt::Write::write_fmt(&mut desc, format_args!("retrain:{app}:{seq}"));
    seed ^ fnv1a_64(desc.as_bytes())
}

struct RetrainOutcome {
    model: DomainSpecificModel,
    fingerprint: u64,
}

/// Assembles a quarantine-cleaned, sanitize-gated training set from a
/// crash-resumable characterization campaign on `spec`, and fits a fresh
/// model. Returns a rendered reason on every failure mode — corrupt data
/// and non-finite fits degrade, they do not crash.
fn retrain_app(
    cfg: &LifecycleConfig,
    app: &str,
    seq: u32,
    spec: &DeviceSpec,
    dir: &Path,
) -> Result<RetrainOutcome, String> {
    let freqs = experiment_frequencies(spec, cfg.governor.train_stride);
    let campaign_dir = dir.join(format!("retrain-{app}-{seq:02}"));
    let ccfg = CampaignConfig::new(
        spec.clone(),
        vec![DeviceSlot::healthy("lifecycle-retrain")],
        freqs.clone(),
    );

    // The app's fixed job-configuration set is the training distribution.
    type TrainingSet = (Vec<Box<dyn Workload>>, Vec<Vec<f64>>, Vec<String>);
    let (workloads, features, labels): TrainingSet = match app {
        "cronos" => {
            let set = cronos_job_set();
            (
                set.iter()
                    .map(|c| {
                        Box::new(cronos::GpuCronos::new(
                            cronos::Grid::cubic(c.grid_x, c.grid_y, c.grid_z),
                            CRONOS_STEPS,
                        )) as Box<dyn Workload>
                    })
                    .collect(),
                set.iter().map(|c| c.features()).collect(),
                set.iter().map(|c| c.label()).collect(),
            )
        }
        "ligen" => {
            let set = ligen_job_set();
            (
                set.iter()
                    .map(|c| {
                        Box::new(ligen::GpuLigen::new(
                            c.ligands as u64,
                            c.atoms as u64,
                            c.fragments as u64,
                        )) as Box<dyn Workload>
                    })
                    .collect(),
                set.iter().map(|c| c.features()).collect(),
                set.iter().map(|c| c.label()).collect(),
            )
        }
        other => return Err(format!("unknown application {other:?}")),
    };
    let refs: Vec<&dyn Workload> = workloads.iter().map(|w| w.as_ref()).collect();

    // Campaigns resume from their own journal: a retrain interrupted by a
    // crash picks up measurement-for-measurement on replay.
    let outcome =
        run_campaign(&ccfg, &refs, &campaign_dir, true).map_err(|e| format!("campaign: {e}"))?;

    let (cleaned, _quarantine) = quarantine_results(&outcome.results, &cfg.quarantine);
    let mut samples = Vec::new();
    for ((characterization, feats), label) in cleaned.into_iter().zip(features.iter()).zip(labels) {
        let input = CharacterizedInput {
            features: Arc::new(feats.clone()),
            label,
            characterization,
        };
        samples.extend(input.samples());
    }

    // Sanitize gate: non-finite rows always go; MAD outliers go on both
    // the time and the energy target.
    let rows: Vec<Vec<f64>> = samples
        .iter()
        .map(|s| {
            let mut row = s.features.as_ref().clone();
            row.push(s.freq_mhz);
            row
        })
        .collect();
    let times: Vec<f64> = samples.iter().map(|s| s.time_s).collect();
    let energies: Vec<f64> = samples.iter().map(|s| s.energy_j).collect();
    let (_, time_report) =
        Dataset::new(Matrix::from_rows(&rows), times).sanitized(cfg.outlier_mads);
    let (_, energy_report) =
        Dataset::new(Matrix::from_rows(&rows), energies).sanitized(cfg.outlier_mads);
    let mut dropped = time_report.dropped_rows();
    dropped.extend(energy_report.dropped_rows());
    dropped.sort_unstable();
    dropped.dedup();
    for &i in dropped.iter().rev() {
        if i < samples.len() {
            samples.remove(i);
        }
    }

    if samples.len() < cfg.min_train_points {
        return Err(format!(
            "corrupt training data: {} clean samples, {} required",
            samples.len(),
            cfg.min_train_points
        ));
    }

    let seed = retrain_seed(cfg.governor.seed, app, seq);
    let model = DomainSpecificModel::train(&samples, spec.default_core_mhz, seed);

    // Finite-fit validation across the serving envelope.
    let probe_freqs = [
        freqs.first().copied().unwrap_or(spec.default_core_mhz),
        spec.default_core_mhz,
        freqs.last().copied().unwrap_or(spec.default_core_mhz),
    ];
    for feats in &features {
        for &f in &probe_freqs {
            let (t, e) = model.predict_time_energy(feats, f);
            if !(t.is_finite() && e.is_finite() && t > 0.0 && e > 0.0) {
                return Err(format!("non-finite fit: predicted ({t}, {e}) at {f} MHz"));
            }
        }
    }

    let fingerprint = training_fingerprint(&spec.name, spec.default_core_mhz, &freqs, seed);
    Ok(RetrainOutcome { model, fingerprint })
}

// ---- Model loading (hardened) ----

/// The lifecycle's lazy model loader: same fault semantics as the
/// governor's ([`ModelFaults`] schedules over a load-attempt counter) but
/// loading through the hardened corrupt-skipping walk, journaling every
/// [`RegistryEvent`] it surfaces.
struct HealthyLoader {
    expected_fingerprint: u64,
    attempts: u64,
    last_failure: BTreeMap<String, FallbackReason>,
}

impl HealthyLoader {
    fn new(expected_fingerprint: u64) -> Self {
        HealthyLoader {
            expected_fingerprint,
            attempts: 0,
            last_failure: BTreeMap::new(),
        }
    }

    fn ensure(
        &mut self,
        app: &'static str,
        faults: &ModelFaults,
        registry: &ModelRegistry,
        engine: &mut PredictionEngine,
        jr: &mut LifecycleJournal,
    ) -> Result<(), LifecycleError> {
        if engine.has_model(app) {
            return Ok(());
        }
        let index = self.attempts;
        self.attempts += 1;
        if schedule_fires(&faults.load_failures, faults.seed, STREAM_LOAD_FAIL, index) {
            self.last_failure
                .insert(app.to_string(), FallbackReason::LoadFailed);
            return Ok(());
        }
        let expected =
            if schedule_fires(&faults.stale_fingerprints, faults.seed, STREAM_STALE, index) {
                self.expected_fingerprint ^ 0x5DEE_CE66_ADD1_C7ED
            } else {
                self.expected_fingerprint
            };
        match registry.load_latest_healthy(app, Some(expected)) {
            Ok((model, _, _, events)) => {
                for event in events {
                    jr.commit(LifecycleEvent::Registry { event })?;
                }
                engine.install_model(app, model);
                self.last_failure.remove(app);
            }
            Err(RegistryError::NotFound { .. }) => {
                self.last_failure
                    .insert(app.to_string(), FallbackReason::ModelMissing);
            }
            Err(RegistryError::Artifact {
                source: energy_model::ArtifactError::Fingerprint { .. },
                ..
            }) => {
                self.last_failure
                    .insert(app.to_string(), FallbackReason::StaleArtifact);
            }
            Err(_) => {
                self.last_failure
                    .insert(app.to_string(), FallbackReason::LoadFailed);
            }
        }
        Ok(())
    }

    fn failure_for(&self, app: &str) -> FallbackReason {
        // The canary key maps back to its app for failure attribution.
        let base = app.split('#').next().unwrap_or(app);
        *self
            .last_failure
            .get(base)
            .unwrap_or(&FallbackReason::ModelMissing)
    }
}

// ---- The run ----

/// Runs the closed loop with the adaptive lifecycle armed. Crash-safe:
/// rerunning with `resume = true` after any abort (including the
/// [`LifecycleConfig::crash_after_appends`] injected crash) replays
/// deterministically, consumes the journal prefix, and converges to the
/// bit-identical report of an uninterrupted run.
pub fn run_lifecycle(
    cfg: &LifecycleConfig,
    registry: &ModelRegistry,
    dir: &Path,
    resume: bool,
) -> Result<LifecycleReport, LifecycleError> {
    let gov = &cfg.governor;
    let mut jr = LifecycleJournal::open(dir, cfg.fingerprint(), resume, cfg.crash_after_appends)?;

    // WAL recovery before replay: a crash between the rollback's two
    // registry steps (retire rename, pointer clear) leaves a dangling
    // canary pointer. Complete any rollback intent without its
    // done-marker now, so the replayed loads observe a
    // protocol-consistent registry (the done-marker itself is appended
    // when replay reaches it).
    for (i, ev) in jr.prior.iter().enumerate() {
        if let LifecycleEvent::RollbackIntent { app, version, .. } = ev {
            let done = jr.prior[i + 1..].iter().any(|e| {
                matches!(
                    e,
                    LifecycleEvent::RolledBack { app: a, version: v } if a == app && v == version
                )
            });
            if !done {
                registry.rollback_version(app, *version)?;
            }
        }
    }

    let templates = build_templates(&gov.spec);
    let bursts = generate_stream(gov.seed, gov.n_jobs, gov.slack, &templates);
    // Drifted twins of the templates (same shapes, same labels): traces
    // recorded against the drifted device so execution prices its power
    // model. Times are untouched by construction of the drift scenario.
    let drift_templates: Option<Vec<JobTemplate>> =
        cfg.scenario.as_ref().map(|sc| build_templates(&sc.spec));

    let serve_freqs = experiment_frequencies(&gov.spec, gov.freq_stride);
    let mut engine = PredictionEngine::new(EngineConfig {
        freqs: serve_freqs,
        queue_capacity: gov.queue_capacity,
        max_batch: gov.max_batch,
    });
    let expected_fp = {
        let train_freqs = experiment_frequencies(&gov.spec, gov.train_stride);
        training_fingerprint(
            &gov.spec.name,
            gov.spec.default_core_mhz,
            &train_freqs,
            gov.seed,
        )
    };
    let mut loader = HealthyLoader::new(expected_fp);

    let mut device = Device::with_faults(gov.spec.clone(), gov.device_faults.clone());
    device.set_trace_capacity(Some(0));
    let mut queue = SynergyQueue::for_device(device);
    let mut drift_queue: Option<SynergyQueue> = cfg.scenario.as_ref().map(|sc| {
        let mut d = Device::with_faults(sc.spec.clone(), gov.device_faults.clone());
        d.set_trace_capacity(Some(0));
        SynergyQueue::for_device(d)
    });

    let mut tracker = ResidualTracker::new(cfg.drift);
    let mut states: BTreeMap<&'static str, AppState> = BTreeMap::new();
    let mut decisions: Vec<LifecycleDecision> = Vec::with_capacity(gov.n_jobs);
    let mut admission_rejected = 0usize;
    let mut lifecycle_fallbacks = 0u64;
    let mut retrains = 0u32;
    let mut promotes = 0u32;
    let mut rollbacks = 0u32;

    for burst in &bursts {
        let burst_max_id = burst.iter().map(|j| j.id).max().unwrap_or(0);
        // Admission: the whole burst hits the queue before any draining.
        // Jobs of an app with an open canary are routed to the canary
        // channel by a deterministic hash draw on their id.
        let mut rejected: Vec<&Job> = Vec::new();
        let mut routes: BTreeMap<u64, ServedChannel> = BTreeMap::new();
        for job in burst {
            let template = &templates[job.template];
            loader.ensure(
                template.app,
                &gov.model_faults,
                registry,
                &mut engine,
                &mut jr,
            )?;
            let channel = match states.get(template.app).map(|s| &s.phase) {
                Some(Phase::Canary { version, .. })
                    if unit_draw(gov.seed, STREAM_CANARY ^ u64::from(*version), job.id)
                        < cfg.canary_fraction =>
                {
                    ServedChannel::Canary
                }
                _ => ServedChannel::Stable,
            };
            routes.insert(job.id, channel);
            let route_app = match channel {
                ServedChannel::Canary => canary_key(template.app),
                ServedChannel::Stable => template.app.to_string(),
            };
            let request = PredictionRequest {
                job_id: job.id,
                app: route_app,
                features: template.features.clone(),
            };
            if engine.try_enqueue(request).is_err() {
                rejected.push(job);
            }
        }

        // Rejected jobs still run — at the default clock. Never an
        // unserved request.
        for job in rejected {
            admission_rejected += 1;
            let (exec_template, exec_queue) = execution_target(
                job,
                &templates,
                drift_templates.as_deref(),
                cfg.scenario.as_ref(),
                &mut queue,
                drift_queue.as_mut(),
            );
            let record = execute_job(
                exec_template,
                job,
                None,
                None,
                Some(FallbackReason::AdmissionRejected),
                exec_queue,
            );
            decisions.push(LifecycleDecision {
                record,
                channel: ServedChannel::Stable,
                predicted_energy_j: None,
                ape: None,
            });
        }

        // Serve and execute in batches until the burst's queue drains.
        while engine.queue_len() > 0 {
            let served = engine.drain_batch();
            for (request, result) in served {
                let Some(job) = burst.iter().find(|j| j.id == request.job_id) else {
                    continue;
                };
                let template = &templates[job.template];
                let channel = routes
                    .get(&job.id)
                    .copied()
                    .unwrap_or(ServedChannel::Stable);
                let (requested, predicted_time, predicted_energy, fallback) = match result {
                    Ok(profile) => {
                        let planned_deadline = job.deadline_s * gov.deadline_safety;
                        match choose_frequency(gov.policy, &profile, planned_deadline) {
                            Some(freq) => {
                                let point = profile.pareto.iter().find(|p| p.freq_mhz == freq);
                                (
                                    Some(freq),
                                    point.map(|p| profile.default_time_s / p.speedup),
                                    point.map(|p| p.norm_energy * profile.default_energy_j),
                                    None,
                                )
                            }
                            None => (
                                None,
                                Some(profile.default_time_s),
                                Some(profile.default_energy_j),
                                None,
                            ),
                        }
                    }
                    Err(ServeError::ModelUnavailable { ref app }) => {
                        (None, None, None, Some(loader.failure_for(app)))
                    }
                    Err(ServeError::FeatureWidth { .. } | ServeError::ConfigWidth { .. }) => {
                        (None, None, None, Some(FallbackReason::StaleArtifact))
                    }
                };
                let (exec_template, exec_queue) = execution_target(
                    job,
                    &templates,
                    drift_templates.as_deref(),
                    cfg.scenario.as_ref(),
                    &mut queue,
                    drift_queue.as_mut(),
                );
                let record = execute_job(
                    exec_template,
                    job,
                    requested,
                    predicted_time,
                    fallback,
                    exec_queue,
                );

                // Residual: only a clean, completed, predicted execution
                // is a model-quality observation.
                let ape = if record.completed && record.fallback.is_none() {
                    match (predicted_time, predicted_energy) {
                        (Some(pt), Some(pe)) => {
                            residual_ape(pt, pe, record.measured_time_s, record.measured_energy_j)
                        }
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some(ape) = ape {
                    match states
                        .entry(template.app)
                        .or_insert_with(AppState::new)
                        .phase
                    {
                        Phase::Stable => {
                            tracker.observe(template.app, ape, gov.telemetry.as_deref());
                        }
                        Phase::Canary {
                            ref mut canary,
                            ref mut incumbent,
                            ..
                        } => match channel {
                            ServedChannel::Canary => canary.add(ape),
                            ServedChannel::Stable => incumbent.add(ape),
                        },
                    }
                }

                decisions.push(LifecycleDecision {
                    record,
                    channel,
                    predicted_energy_j: predicted_energy,
                    ape,
                });
            }
        }

        // Burst boundary: handle trips, then canary verdicts, in
        // deterministic app order.
        process_trips(
            cfg,
            registry,
            dir,
            &mut jr,
            &mut engine,
            &mut tracker,
            &mut states,
            burst_max_id,
            &mut retrains,
            &mut lifecycle_fallbacks,
        )?;
        process_verdicts(
            cfg,
            registry,
            &mut jr,
            &mut engine,
            &mut tracker,
            &mut states,
            burst_max_id,
            &mut promotes,
            &mut rollbacks,
            &mut lifecycle_fallbacks,
        )?;
    }

    jr.finish()?;

    decisions.sort_by_key(|d| d.record.job_id);
    let deadline_misses = decisions.iter().filter(|d| !d.record.met_deadline).count();
    let fallbacks = decisions
        .iter()
        .filter(|d| d.record.fallback.is_some())
        .count();
    let mut degradation = queue.degradation();
    if let Some(dq) = &drift_queue {
        degradation.merge(&dq.degradation());
    }
    degradation.lifecycle_fallbacks += lifecycle_fallbacks;

    let events: Vec<LifecycleEvent> = jr
        .seen
        .iter()
        .filter(|e| !matches!(e, LifecycleEvent::Header { .. }))
        .cloned()
        .collect();

    let report = LifecycleReport {
        policy: gov.policy,
        device: gov.spec.name.clone(),
        seed: gov.seed,
        n_jobs: decisions.len(),
        total_time_s: decisions.iter().map(|d| d.record.measured_time_s).sum(),
        total_energy_j: decisions.iter().map(|d| d.record.measured_energy_j).sum(),
        deadline_misses,
        miss_rate: if decisions.is_empty() {
            0.0
        } else {
            deadline_misses as f64 / decisions.len() as f64
        },
        fallbacks,
        admission_rejected,
        cache: engine.cache_stats(),
        degradation,
        decisions,
        events,
        drift: tracker.summary(),
        retrains,
        promotes,
        rollbacks,
    };

    // Telemetry is observation-only; the report above is already final.
    if let Some(telemetry) = &gov.telemetry {
        let r = telemetry.registry();
        r.counter("governor.jobs_total").add(report.n_jobs as u64);
        r.counter("governor.deadline_misses")
            .add(report.deadline_misses as u64);
        r.counter("governor.lifecycle.retrains")
            .add(u64::from(report.retrains));
        r.counter("governor.lifecycle.promotes")
            .add(u64::from(report.promotes));
        r.counter("governor.lifecycle.rollbacks")
            .add(u64::from(report.rollbacks));
        r.counter("governor.lifecycle.fallbacks")
            .add(report.degradation.lifecycle_fallbacks);
        r.gauge("governor.total_energy_j")
            .set(report.total_energy_j);
        r.gauge("governor.total_time_s").set(report.total_time_s);
        r.gauge("governor.miss_rate").set(report.miss_rate);
    }

    Ok(report)
}

/// Picks the template/queue a job executes on: the drifted pair once the
/// scenario is active for this job id, the original pair otherwise.
fn execution_target<'a>(
    job: &Job,
    templates: &'a [JobTemplate],
    drift_templates: Option<&'a [JobTemplate]>,
    scenario: Option<&DriftScenario>,
    queue: &'a mut SynergyQueue,
    drift_queue: Option<&'a mut SynergyQueue>,
) -> (&'a JobTemplate, &'a mut SynergyQueue) {
    match (scenario, drift_templates, drift_queue) {
        (Some(sc), Some(dt), Some(dq)) if job.id >= sc.at_job => (&dt[job.template], dq),
        _ => (&templates[job.template], queue),
    }
}

/// Burst-boundary trip handling: forced trips, detector trips, the
/// retrain, and the journaled canary publish.
#[allow(clippy::too_many_arguments)]
fn process_trips(
    cfg: &LifecycleConfig,
    registry: &ModelRegistry,
    dir: &Path,
    jr: &mut LifecycleJournal,
    engine: &mut PredictionEngine,
    tracker: &mut ResidualTracker,
    states: &mut BTreeMap<&'static str, AppState>,
    at_job: u64,
    retrains: &mut u32,
    lifecycle_fallbacks: &mut u64,
) -> Result<(), LifecycleError> {
    // Deterministic order: BTreeMap iteration.
    let apps: Vec<&'static str> = states.keys().copied().collect();
    for app in apps {
        let forced = cfg.force_trip.as_ref().is_some_and(|ft| {
            ft.app == app && at_job >= ft.at_job && !states.get(app).is_some_and(|s| s.forced_used)
        });
        let detector_tripped = tracker.detector(app).is_some_and(DriftDetector::tripped);
        let stable = states
            .get(app)
            .is_some_and(|s| matches!(s.phase, Phase::Stable));
        if !stable || !(forced || detector_tripped) {
            continue;
        }
        let Some(state) = states.get_mut(app) else {
            continue;
        };
        if forced {
            state.forced_used = true;
        }
        state.retrain_seq += 1;
        let seq = state.retrain_seq;
        let (samples, statistic) = tracker
            .detector(app)
            .map(|d| (d.samples(), d.statistic()))
            .unwrap_or((0, 0.0));
        jr.commit(LifecycleEvent::DriftTripped {
            app: app.to_string(),
            seq,
            at_job,
            samples,
            statistic_bits: statistic.to_bits(),
        })?;
        tracker.reset(app);

        if *retrains >= cfg.max_retrains {
            jr.commit(LifecycleEvent::RetrainFailed {
                app: app.to_string(),
                seq,
                reason: format!("retrain budget exhausted ({} used)", cfg.max_retrains),
            })?;
            *lifecycle_fallbacks += 1;
            continue;
        }
        *retrains += 1;

        // The retrain characterizes the *current* hardware: the drifted
        // device once the scenario is active, unless sabotaged by the
        // retrain_spec override.
        let effective_spec = match (&cfg.retrain_spec, &cfg.scenario) {
            (Some(spec), _) => spec.clone(),
            (None, Some(sc)) if at_job >= sc.at_job => sc.spec.clone(),
            _ => cfg.governor.spec.clone(),
        };

        match retrain_app(cfg, app, seq, &effective_spec, dir) {
            Ok(outcome) => {
                let version = publish_canary(registry, jr, app, seq, &outcome)?;
                engine.install_model(&canary_key(app), outcome.model.clone());
                if let Some(state) = states.get_mut(app) {
                    state.phase = Phase::Canary {
                        version,
                        model: Box::new(outcome.model),
                        canary: ApeAccum::default(),
                        incumbent: ApeAccum::default(),
                    };
                }
            }
            Err(reason) => {
                jr.commit(LifecycleEvent::RetrainFailed {
                    app: app.to_string(),
                    seq,
                    reason,
                })?;
                *lifecycle_fallbacks += 1;
            }
        }
    }
    Ok(())
}

/// The journaled write-ahead canary publish: intent → artifact →
/// pointer, each step idempotent, each boundary resumable.
fn publish_canary(
    registry: &ModelRegistry,
    jr: &mut LifecycleJournal,
    app: &str,
    seq: u32,
    outcome: &RetrainOutcome,
) -> Result<u32, LifecycleError> {
    // On resume, the version allocated before the crash is authoritative
    // — re-deriving it after the artifact write would double-allocate.
    let version = match jr.prior_next() {
        Some(LifecycleEvent::PublishIntent {
            app: a,
            seq: s,
            version,
            ..
        }) if a == app && *s == seq => *version,
        _ => registry.next_version(app)?,
    };
    jr.commit(LifecycleEvent::PublishIntent {
        app: app.to_string(),
        seq,
        version,
        fingerprint: outcome.fingerprint,
    })?;

    let written = LifecycleEvent::ArtifactWritten {
        app: app.to_string(),
        seq,
        version,
    };
    if jr.needs_side_effect(&written) {
        registry.publish_at(app, version, &outcome.model, outcome.fingerprint)?;
    }
    jr.commit(written)?;

    let opened = LifecycleEvent::CanaryOpened {
        app: app.to_string(),
        seq,
        version,
    };
    if jr.needs_side_effect(&opened) {
        registry.set_canary(app, version)?;
    }
    jr.commit(opened)?;
    Ok(version)
}

/// Burst-boundary verdicts: once both slices have enough observations,
/// promote or roll back, journaled write-ahead and cache-invalidated.
#[allow(clippy::too_many_arguments)]
fn process_verdicts(
    cfg: &LifecycleConfig,
    registry: &ModelRegistry,
    jr: &mut LifecycleJournal,
    engine: &mut PredictionEngine,
    tracker: &mut ResidualTracker,
    states: &mut BTreeMap<&'static str, AppState>,
    at_job: u64,
    promotes: &mut u32,
    rollbacks: &mut u32,
    lifecycle_fallbacks: &mut u64,
) -> Result<(), LifecycleError> {
    let apps: Vec<&'static str> = states.keys().copied().collect();
    for app in apps {
        let Some(state) = states.get_mut(app) else {
            continue;
        };
        let Phase::Canary {
            version,
            ref model,
            canary,
            incumbent,
        } = state.phase
        else {
            continue;
        };
        if canary.n < cfg.min_canary_samples || incumbent.n < cfg.min_incumbent_samples {
            continue;
        }
        let canary_mape = canary.mape();
        let incumbent_mape = incumbent.mape();
        let promote = canary_mape <= incumbent_mape * cfg.promote_margin;
        if promote {
            jr.commit(LifecycleEvent::PromoteIntent {
                app: app.to_string(),
                version,
                at_job,
                canary_mape_bits: canary_mape.to_bits(),
                incumbent_mape_bits: incumbent_mape.to_bits(),
            })?;
            let done = LifecycleEvent::Promoted {
                app: app.to_string(),
                version,
            };
            if jr.needs_side_effect(&done) {
                registry.promote_version(app, version)?;
            }
            jr.commit(done)?;
            // Serving advance: the promoted model replaces the incumbent
            // under the stable key (invalidating its cached profiles in
            // every shard), and the canary channel closes.
            let model = model.as_ref().clone();
            engine.install_model(app, model);
            engine.remove_model(&canary_key(app));
            *promotes += 1;
        } else {
            jr.commit(LifecycleEvent::RollbackIntent {
                app: app.to_string(),
                version,
                at_job,
                canary_mape_bits: canary_mape.to_bits(),
                incumbent_mape_bits: incumbent_mape.to_bits(),
            })?;
            let done = LifecycleEvent::RolledBack {
                app: app.to_string(),
                version,
            };
            if jr.needs_side_effect(&done) {
                registry.rollback_version(app, version)?;
            }
            jr.commit(done)?;
            // The incumbent keeps serving untouched; only the canary
            // channel (and its cached profiles) disappears.
            engine.remove_model(&canary_key(app));
            *rollbacks += 1;
            *lifecycle_fallbacks += 1;
        }
        state.phase = Phase::Stable;
        tracker.reset(app);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn detector_ignores_constant_streams() {
        let mut d = DriftDetector::new(DriftConfig::pinned());
        for _ in 0..500 {
            assert!(!d.observe(0.0));
        }
        let mut d = DriftDetector::new(DriftConfig::pinned());
        for _ in 0..500 {
            assert!(!d.observe(0.05));
        }
        assert!(!d.tripped());
    }

    #[test]
    fn detector_trips_on_sustained_shift_and_latches() {
        let mut d = DriftDetector::new(DriftConfig::pinned());
        for _ in 0..10 {
            d.observe(0.01);
        }
        let mut tripped_at = None;
        for i in 0..20 {
            if d.observe(0.5) {
                tripped_at = Some(i);
                break;
            }
        }
        let at = tripped_at.expect("sustained 50% residual must trip");
        assert!(at < 5, "tripped only after {at} drift samples");
        // Latched: the edge fires once.
        assert!(!d.observe(0.5));
        assert!(d.tripped());
        d.reset();
        assert!(!d.tripped());
        assert_eq!(d.samples(), 0);
    }

    #[test]
    fn residual_ape_takes_the_worse_axis_and_rejects_nonsense() {
        let ape = residual_ape(1.0, 10.0, 1.0, 20.0).unwrap();
        assert!((ape - 0.5).abs() < 1e-12);
        let ape = residual_ape(2.0, 10.0, 1.0, 10.0).unwrap();
        assert!((ape - 1.0).abs() < 1e-12);
        assert!(residual_ape(f64::NAN, 10.0, 1.0, 10.0).is_none());
        assert!(residual_ape(1.0, 10.0, 0.0, 10.0).is_none());
    }

    #[test]
    fn efficiency_drift_touches_only_power() {
        let spec = DeviceSpec::v100();
        let drifted = efficiency_drift(&spec);
        assert_eq!(spec.name, drifted.name);
        assert_eq!(spec.default_core_mhz, drifted.default_core_mhz);
        assert!(drifted.core_power_w > spec.core_power_w);
        assert!(drifted.tdp_w > spec.tdp_w);
    }
}
