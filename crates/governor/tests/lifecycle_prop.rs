//! Property suite for the drift detector: the Page–Hinkley layer must
//! never cry wolf on a healthy residual stream, must always catch a
//! sustained bias, and must replay bit-identically under the same seed —
//! with or without telemetry armed.

use energy_model::telemetry::Telemetry;
use governor::{DriftConfig, DriftDetector, ResidualTracker};
use proptest::prelude::*;

/// Deterministic unit draws for residual streams (splitmix64 finalizer).
fn unit(seed: u64, i: u64) -> f64 {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A zero-residual stream is the healthiest possible model; the
    /// detector must never trip on it, at any length.
    #[test]
    fn never_trips_on_zero_residuals(n in 1usize..512) {
        let mut d = DriftDetector::new(DriftConfig::pinned());
        for _ in 0..n {
            prop_assert!(!d.observe(0.0));
        }
        prop_assert!(!d.tripped());
    }

    /// Any constant APE level is a *calibration* offset, not drift: the
    /// running mean adapts and the statistic stays flat.
    #[test]
    fn never_trips_on_constant_streams(level in 0.0f64..2.0, n in 1usize..512) {
        let mut d = DriftDetector::new(DriftConfig::pinned());
        for _ in 0..n {
            prop_assert!(!d.observe(level));
        }
        prop_assert!(!d.tripped());
    }

    /// A quiet stream with small noise stays below the trip line.
    #[test]
    fn never_trips_on_small_noise(seed in 0u64..u64::MAX, n in 1usize..256) {
        let mut d = DriftDetector::new(DriftConfig::pinned());
        for i in 0..n {
            // APE jitter in [0, 0.02): under the pinned delta slack.
            d.observe(0.02 * unit(seed, i as u64));
        }
        prop_assert!(!d.tripped());
    }

    /// After any quiet burn-in, a sustained bias of at least 0.2 APE must
    /// trip the detector — and once tripped it latches until reset.
    #[test]
    fn always_trips_under_sustained_bias(
        seed in 0u64..u64::MAX,
        quiet in 4u64..64,
        bias in 0.2f64..1.5,
    ) {
        let cfg = DriftConfig::pinned();
        let mut d = DriftDetector::new(cfg);
        for i in 0..quiet {
            d.observe(0.01 * unit(seed, i));
        }
        prop_assert!(!d.tripped());
        // The PH statistic gains ~(bias - delta) per biased sample once
        // the mean lags; this bound is generous.
        let budget = quiet + 16 + (8.0 * cfg.lambda / (bias - cfg.delta)).ceil() as u64;
        let mut tripped_at = None;
        for i in 0..budget {
            let ape = bias + 0.01 * unit(seed ^ 0xD1F7, i);
            if d.observe(ape) {
                tripped_at = Some(i);
                break;
            }
        }
        prop_assert!(tripped_at.is_some(), "no trip within {budget} biased samples");
        prop_assert!(d.tripped());
        // Latched: further observations are absorbed (the edge fired
        // once) and the detector stays tripped until reset.
        prop_assert!(!d.observe(bias));
        prop_assert!(d.tripped());
        d.reset();
        prop_assert!(!d.tripped());
    }

    /// Same seed, same stream → bit-identical detector trajectory, and
    /// arming telemetry on the tracker changes nothing about it.
    #[test]
    fn replay_is_bit_identical_with_and_without_telemetry(
        seed in 0u64..u64::MAX,
        n in 1usize..256,
        bias_at in 0usize..256,
    ) {
        let stream: Vec<f64> = (0..n)
            .map(|i| {
                let base = 0.02 * unit(seed, i as u64);
                if i >= bias_at { base + 0.4 } else { base }
            })
            .collect();

        let mut quiet = ResidualTracker::new(DriftConfig::pinned());
        let telemetry = Telemetry::new();
        let mut armed = ResidualTracker::new(DriftConfig::pinned());
        for ape in &stream {
            let a = quiet.observe("app", *ape, None);
            let b = armed.observe("app", *ape, Some(&telemetry));
            prop_assert_eq!(a, b);
        }
        let qs = quiet.summary();
        let as_ = armed.summary();
        prop_assert_eq!(qs.len(), as_.len());
        for (q, a) in qs.values().zip(as_.values()) {
            prop_assert_eq!(q.observations, a.observations);
            prop_assert_eq!(q.trips, a.trips);
            prop_assert_eq!(q.statistic.to_bits(), a.statistic.to_bits());
            prop_assert_eq!(q.mean_ape.to_bits(), a.mean_ape.to_bits());
        }

        // And a third, fully independent replay of the same stream is
        // bit-identical sample for sample.
        let mut replay = DriftDetector::new(DriftConfig::pinned());
        let mut first = DriftDetector::new(DriftConfig::pinned());
        for ape in &stream {
            let x = first.observe(*ape);
            let y = replay.observe(*ape);
            prop_assert_eq!(x, y);
            prop_assert_eq!(first.statistic().to_bits(), replay.statistic().to_bits());
        }
    }
}
