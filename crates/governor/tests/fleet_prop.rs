//! Property tests of the fleet scheduler, run against a deliberately
//! *under*-populated registry: only the V100 class has model artifacts,
//! so every path that can push a job onto an MI100 — placement overflow,
//! cross-class stealing, failure rescheduling, eviction drains — must
//! exercise the device-affinity guard.
//!
//! Two invariants, for arbitrary steal/eviction interleavings:
//!
//! * **Job conservation** — every submitted job id appears in the
//!   decision trail exactly once (completed or recorded as failed),
//!   no matter how many times it was stolen, rescheduled, or orphaned
//!   by an eviction.
//! * **Steal safety** — a job never executes on a device class that has
//!   no matching model artifact with a model-chosen clock: on such a
//!   class the requested clock is always `None`, and a job that arrived
//!   carrying a foreign clock decision records an explicit
//!   `AffinityDegraded` fallback. The `affinity_fallbacks` counter
//!   reconciles with the journal, event for event.

use std::path::PathBuf;
use std::sync::OnceLock;

use energy_model::BreakerConfig;
use governor::{
    run_fleet, train_and_publish_fleet, FallbackReason, FleetConfig, FleetDevice, FleetEvent,
    ModelRegistry, Placement, Policy, StealPolicy,
};
use gpu_sim::{DeviceSpec, FaultPlan, Schedule};
use proptest::prelude::*;

/// The class left without artifacts in the shared registry.
const BARE_CLASS: &str = "AMD MI100";

/// The fleet shape every case runs: two modelled V100s, two bare MI100s.
fn base_cfg() -> FleetConfig {
    let mut cfg = FleetConfig::pinned();
    cfg.devices = vec![
        FleetDevice::new("v100-0", DeviceSpec::v100()),
        FleetDevice::new("v100-1", DeviceSpec::v100()),
        FleetDevice::new("mi100-0", DeviceSpec::mi100()),
        FleetDevice::new("mi100-1", DeviceSpec::mi100()),
    ];
    // Coarser strides keep each generated case cheap; the training
    // stride must match the fixture so fingerprints verify.
    cfg.freq_stride = 4;
    cfg.train_stride = 8;
    cfg
}

/// Shared registry holding *only* the V100 artifacts: train a V100-only
/// fleet's models once, leaving the MI100 class deliberately bare.
fn v100_only_registry() -> &'static ModelRegistry {
    static SHARED: OnceLock<ModelRegistry> = OnceLock::new();
    SHARED.get_or_init(|| {
        let dir: PathBuf =
            std::env::temp_dir().join(format!("fleet-prop-registry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ModelRegistry::open(&dir);
        let mut v100_only = base_cfg();
        v100_only.devices.truncate(2);
        train_and_publish_fleet(&v100_only, &registry).expect("train and publish V100 artifacts");
        registry
    })
}

/// One generated fleet scenario.
#[derive(Debug, Clone)]
struct Scenario {
    n_jobs: usize,
    steal: StealPolicy,
    queue_capacity: usize,
    max_attempts: u32,
    failure_threshold: u32,
    /// Per-device launch-failure probability (0 = clean).
    fail_probs: Vec<f64>,
    fault_seed: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        6usize..14,
        prop_oneof![
            Just(StealPolicy::Disabled),
            Just(StealPolicy::WithinClass),
            Just(StealPolicy::Anywhere),
        ],
        prop_oneof![Just(1usize), Just(2), Just(8)],
        2u32..6,
        1u32..3,
        proptest::collection::vec(prop_oneof![Just(0.0), Just(0.4), Just(1.0)], 4..5),
        0u64..1000,
    )
        .prop_map(
            |(
                n_jobs,
                steal,
                queue_capacity,
                max_attempts,
                failure_threshold,
                fail_probs,
                fault_seed,
            )| {
                Scenario {
                    n_jobs,
                    steal,
                    queue_capacity,
                    max_attempts,
                    failure_threshold,
                    fail_probs,
                    fault_seed,
                }
            },
        )
}

fn scenario_cfg(s: &Scenario) -> FleetConfig {
    let mut cfg = base_cfg();
    cfg.n_jobs = s.n_jobs;
    cfg.steal = s.steal;
    cfg.placement = Placement::MinPredictedEnergy;
    cfg.policy = Policy::MinEnergyUnderDeadline;
    cfg.queue_capacity = s.queue_capacity;
    cfg.max_attempts = s.max_attempts;
    cfg.breaker = BreakerConfig {
        failure_threshold: s.failure_threshold,
        cooldown_ticks: 1,
        max_trips: 1,
    };
    for (device, &p) in cfg.devices.iter_mut().zip(&s.fail_probs) {
        if p > 0.0 {
            device.faults = Some(FaultPlan::seeded(s.fault_seed).fail_launches(Schedule::Prob(p)));
        }
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every job id appears in the decision trail exactly once, across
    /// arbitrary steal policies, admission pressure, launch failures,
    /// reschedules, and (up to total) evictions.
    #[test]
    fn job_conservation_across_interleavings(s in arb_scenario()) {
        let cfg = scenario_cfg(&s);
        let report = run_fleet(&cfg, v100_only_registry());

        prop_assert_eq!(report.decisions.len(), cfg.n_jobs);
        let mut ids: Vec<u64> =
            report.decisions.iter().map(|d| d.record.job_id).collect();
        ids.sort_unstable();
        let expected: Vec<u64> = (0..cfg.n_jobs as u64).collect();
        prop_assert_eq!(ids, expected);

        // Fleet bookkeeping reconciles with the journal regardless of
        // the interleaving.
        let stolen = report.journal.iter()
            .filter(|e| matches!(e, FleetEvent::Stolen { .. })).count() as u64;
        prop_assert_eq!(stolen, report.jobs_stolen);
        let rescheduled = report.journal.iter()
            .filter(|e| matches!(e, FleetEvent::Rescheduled { .. })).count() as u64;
        prop_assert_eq!(rescheduled, report.items_rescheduled);
        let evicted = report.journal.iter()
            .filter(|e| matches!(e, FleetEvent::Tripped { evicted: true, .. })).count() as u64;
        prop_assert_eq!(evicted, report.devices_evicted);
        prop_assert!(report.devices_evicted <= cfg.devices.len() as u64);
    }

    /// No job ever executes on the artifact-less MI100 class with a
    /// model-chosen clock; carried-in clock decisions are explicitly
    /// affinity-degraded, and the counter matches the journal.
    #[test]
    fn steal_safety_enforces_device_affinity(s in arb_scenario()) {
        let cfg = scenario_cfg(&s);
        let report = run_fleet(&cfg, v100_only_registry());

        for d in &report.decisions {
            if d.class == BARE_CLASS {
                prop_assert!(
                    d.record.requested_mhz.is_none(),
                    "job {} ran on {} with clock {:?} despite no artifact",
                    d.record.job_id, d.class, d.record.requested_mhz
                );
                // Execution on a bare class via the prediction path is
                // always an accounted degradation of some kind.
                prop_assert!(
                    d.record.fallback.is_some(),
                    "job {} ran on {} with no recorded fallback",
                    d.record.job_id, d.class
                );
            }
            if d.record.fallback == Some(FallbackReason::AffinityDegraded) {
                prop_assert!(d.record.requested_mhz.is_none());
                prop_assert_eq!(d.class.as_str(), BARE_CLASS);
            }
        }

        let degraded = report.journal.iter()
            .filter(|e| matches!(e, FleetEvent::AffinityDegraded { .. })).count() as u64;
        prop_assert_eq!(degraded, report.affinity_fallbacks);
        prop_assert_eq!(report.degradation.affinity_fallbacks, report.affinity_fallbacks);

        // The V100 side keeps its modelled clocks: every requested clock
        // in the run sits in the V100 supported table.
        let v100 = DeviceSpec::v100();
        for d in &report.decisions {
            if let Some(freq) = d.record.requested_mhz {
                prop_assert_eq!(d.class.as_str(), "NVIDIA V100");
                prop_assert!(v100.core_freqs.contains(freq));
            }
        }
    }
}
