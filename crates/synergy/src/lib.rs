//! # synergy — portable energy profiling and frequency scaling
//!
//! Stand-in for the SYnergy API (Fan et al., SC'23) used by the paper: a
//! vendor-neutral layer that lets SYCL-style applications profile energy and
//! set per-kernel core frequencies on NVIDIA (NVML), AMD (ROCm-SMI), and
//! Intel (Level Zero) GPUs. Here it wraps the simulated vendor APIs from
//! [`gpu_sim`].
//!
//! The pieces:
//!
//! * [`backend`] — the vendor dispatch trait and the NVML/ROCm adapters;
//! * [`queue`] — a profiled submission queue with per-kernel frequency
//!   policies (the SYCL `queue` analogue the applications submit to);
//! * [`energy`] — scoped energy/time measurement around arbitrary work;
//! * [`replay`] — record a workload's kernel sequence once, replay it
//!   cheaply at every sweep frequency (`submit_batch` + price memoization);
//! * [`scaling`] — frequency-selection policies;
//! * [`metrics`] — target-metric frequency selection (min-energy, EDP,
//!   max-performance, bounded-slowdown), the hook the paper's future-work
//!   section plugs its domain-specific models into.
//!
//! ```
//! use synergy::queue::SynergyQueue;
//! use gpu_sim::{Device, DeviceSpec, KernelProfile};
//!
//! let mut q = SynergyQueue::nvidia(Device::new(DeviceSpec::v100()));
//! let k = KernelProfile::compute_bound("dock", 1 << 18, 500.0);
//! let ev = q.submit(&k);
//! println!("{} ran in {:.3} ms using {:.1} J", k.name, ev.time_s * 1e3, ev.energy_j);
//! ```

pub mod backend;
pub mod energy;
pub mod metrics;
pub mod queue;
pub mod replay;
pub mod scaling;

pub use backend::{Backend, BackendError, DefaultConfig};
pub use metrics::{DegradationMetrics, EnergyCounterHealer};
pub use queue::{ProfiledEvent, RetryPolicy, SubmitError, SynergyQueue};
pub use replay::{KernelTrace, TraceSegment};
pub use scaling::FrequencyPolicy;
