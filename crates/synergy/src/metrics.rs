//! Target-metric frequency selection and degradation accounting.
//!
//! SYnergy lets users declare an energy target metric (min-energy, EDP,
//! ED²P, bounded performance loss) and picks the frequency that optimizes
//! it. The paper's future-work section plugs its domain-specific models into
//! exactly this hook: given predicted `(frequency, time, energy)` triples,
//! select the frequency for the chosen metric.
//!
//! This module also carries the queue's *degradation* bookkeeping: the
//! [`DegradationMetrics`] counters a [`crate::queue::SynergyQueue`] keeps
//! while riding out injected (or real) management-API faults, and the
//! [`EnergyCounterHealer`] that turns a wrapping/resetting raw energy
//! counter into a monotone one.

use serde::{Deserialize, Serialize};

/// One (frequency, time, energy) operating point — measured or predicted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Core frequency (MHz).
    pub freq_mhz: f64,
    /// Execution time (s).
    pub time_s: f64,
    /// Energy (J).
    pub energy_j: f64,
}

/// The metric to optimize when choosing a frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TargetMetric {
    /// Minimize energy.
    MinEnergy,
    /// Minimize execution time.
    MaxPerformance,
    /// Minimize energy-delay product `E·T`.
    Edp,
    /// Minimize energy-delay-squared product `E·T²`.
    Ed2p,
    /// Minimize energy subject to `time ≤ (1 + max_slowdown) · best_time`.
    /// E.g. `max_slowdown = 0.05` tolerates a 5 % performance loss.
    BoundedSlowdown {
        /// Tolerated relative slowdown vs the fastest point (≥ 0).
        max_slowdown: f64,
    },
}

/// Selects the operating point optimizing `metric`. Returns `None` for an
/// empty input or if no point satisfies a `BoundedSlowdown` constraint
/// (impossible, since the fastest point always does, but typed defensively).
pub fn select(points: &[OperatingPoint], metric: TargetMetric) -> Option<OperatingPoint> {
    if points.is_empty() {
        return None;
    }
    let by_key = |key: fn(&OperatingPoint) -> f64| {
        points
            .iter()
            .copied()
            .min_by(|a, b| key(a).total_cmp(&key(b)))
    };
    match metric {
        TargetMetric::MinEnergy => by_key(|p| p.energy_j),
        TargetMetric::MaxPerformance => by_key(|p| p.time_s),
        TargetMetric::Edp => by_key(|p| p.energy_j * p.time_s),
        TargetMetric::Ed2p => by_key(|p| p.energy_j * p.time_s * p.time_s),
        TargetMetric::BoundedSlowdown { max_slowdown } => {
            assert!(max_slowdown >= 0.0, "slowdown bound must be ≥ 0");
            let t_best = by_key(|p| p.time_s)?.time_s;
            points
                .iter()
                .copied()
                .filter(|p| p.time_s <= t_best * (1.0 + max_slowdown))
                .min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))
        }
    }
}

/// Per-queue counters of everything the retry/healing machinery had to do.
/// All-zero means the run saw a perfect device — exactly the state a
/// characterization sweep requires before trusting a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DegradationMetrics {
    /// Operations retried after a transient error.
    pub retries: u64,
    /// Clock requests the driver rejected.
    pub frequency_rejections: u64,
    /// Launches dropped by a transient device failure.
    pub launch_failures: u64,
    /// Launches held below the requested clock by a fault-injected throttle
    /// window. Deterministic TDP / power-cap throttling is *not* counted —
    /// that is reproducible physics of the requested configuration, not
    /// degradation (see `LaunchRecord::fault_throttled`).
    pub throttled_launches: u64,
    /// Energy-counter rewinds transparently healed.
    pub counter_rewinds_healed: u64,
    /// Submissions that only completed after falling back to the default
    /// clock configuration.
    pub default_clock_fallbacks: u64,
    /// Total simulated time spent in retry backoff waits (ns, summed from
    /// whole backoff steps; integer so `Eq`/all-zero checks stay exact).
    pub backoff_ns: u64,
    /// Measurements that blew the supervisor's watchdog deadline and were
    /// discarded. Only a campaign supervisor raises this; a plain queue
    /// never does.
    pub watchdog_misses: u64,
    /// Work items a campaign re-scheduled onto another device after a
    /// permanent failure. Only a campaign supervisor raises this.
    pub items_rescheduled: u64,
    /// Devices a campaign's circuit breakers permanently evicted. Only a
    /// campaign supervisor raises this.
    pub devices_evicted: u64,
    /// Jobs that ran on a device class with no matching model artifact
    /// and were degraded to the default clock to keep predictions
    /// device-faithful. Only a fleet scheduler raises this.
    pub affinity_fallbacks: u64,
    /// Lifecycle operations (retrain, canary publish, promote) that failed
    /// and degraded serving back to the incumbent model. Only a model
    /// lifecycle supervisor raises this; the request itself is still
    /// served.
    pub lifecycle_fallbacks: u64,
    /// Memory-clock requests that kept failing and were degraded to the
    /// vendor default memory clock (the top of the table) so the lattice
    /// point could still be measured — on the wrong memory axis, which is
    /// why characterization flags such samples.
    pub mem_clock_fallbacks: u64,
    /// Power-cap requests that kept failing and were degraded to the
    /// uncapped (TDP-only) configuration.
    pub power_cap_fallbacks: u64,
    /// Interconnect transfers that completed at degraded link bandwidth
    /// (lane retrain / width downgrade). The data arrived — slower and
    /// costlier than a healthy link — so distributed runs carrying this
    /// counter are correct but not clean. Serde-defaulted so audit records
    /// serialized before the link model existed still load.
    #[serde(default)]
    pub link_degradations: u64,
    /// Distributed runs that lost an interconnect link outright and fell
    /// back to fewer devices (ultimately a single device). Only a
    /// distributed driver raises this.
    #[serde(default)]
    pub link_fallbacks: u64,
}

impl DegradationMetrics {
    /// True when nothing degraded: every operation succeeded first try at
    /// the requested clock and the energy counter never rewound.
    pub fn is_clean(&self) -> bool {
        *self == DegradationMetrics::default()
    }

    /// Total simulated backoff time in seconds.
    pub fn backoff_s(&self) -> f64 {
        self.backoff_ns as f64 * 1e-9
    }

    /// Folds another set of counters into this one, field by field. This is
    /// how a campaign aggregates the per-measurement counters of every
    /// accepted sweep point into one fleet-level audit record.
    pub fn merge(&mut self, other: &DegradationMetrics) {
        self.retries += other.retries;
        self.frequency_rejections += other.frequency_rejections;
        self.launch_failures += other.launch_failures;
        self.throttled_launches += other.throttled_launches;
        self.counter_rewinds_healed += other.counter_rewinds_healed;
        self.default_clock_fallbacks += other.default_clock_fallbacks;
        self.backoff_ns += other.backoff_ns;
        self.watchdog_misses += other.watchdog_misses;
        self.items_rescheduled += other.items_rescheduled;
        self.devices_evicted += other.devices_evicted;
        self.affinity_fallbacks += other.affinity_fallbacks;
        self.lifecycle_fallbacks += other.lifecycle_fallbacks;
        self.mem_clock_fallbacks += other.mem_clock_fallbacks;
        self.power_cap_fallbacks += other.power_cap_fallbacks;
        self.link_degradations += other.link_degradations;
        self.link_fallbacks += other.link_fallbacks;
    }
}

/// Turns a raw device energy counter that may wrap or reset (as
/// `rsmi_dev_energy_count_get` does in practice) into a monotone
/// non-decreasing reading, by folding every observed rewind into a running
/// offset. The healed value can lose the energy accrued between the last
/// observation and the rewind — exactly the information a real wrap
/// destroys — but it never runs backwards.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyCounterHealer {
    last_raw_j: f64,
    offset_j: f64,
    rewinds: u64,
}

impl EnergyCounterHealer {
    /// A healer that has observed nothing yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one raw counter reading; returns the healed monotone value.
    pub fn observe(&mut self, raw_j: f64) -> f64 {
        if raw_j < self.last_raw_j {
            self.offset_j += self.last_raw_j;
            self.rewinds += 1;
        }
        self.last_raw_j = raw_j;
        self.offset_j + raw_j
    }

    /// The healed value of the most recent observation.
    pub fn healed_j(&self) -> f64 {
        self.offset_j + self.last_raw_j
    }

    /// How many rewinds have been folded away.
    pub fn rewinds(&self) -> u64 {
        self.rewinds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<OperatingPoint> {
        vec![
            OperatingPoint {
                freq_mhz: 500.0,
                time_s: 4.0,
                energy_j: 90.0,
            },
            OperatingPoint {
                freq_mhz: 800.0,
                time_s: 2.5,
                energy_j: 80.0,
            },
            OperatingPoint {
                freq_mhz: 1100.0,
                time_s: 2.0,
                energy_j: 95.0,
            },
            OperatingPoint {
                freq_mhz: 1400.0,
                time_s: 1.8,
                energy_j: 130.0,
            },
        ]
    }

    #[test]
    fn min_energy_selects_800() {
        let p = select(&pts(), TargetMetric::MinEnergy).unwrap();
        assert_eq!(p.freq_mhz, 800.0);
    }

    #[test]
    fn max_performance_selects_1400() {
        let p = select(&pts(), TargetMetric::MaxPerformance).unwrap();
        assert_eq!(p.freq_mhz, 1400.0);
    }

    #[test]
    fn edp_balances() {
        let p = select(&pts(), TargetMetric::Edp).unwrap();
        // EDPs: 360, 200, 190, 234 → 1100 MHz wins.
        assert_eq!(p.freq_mhz, 1100.0);
    }

    #[test]
    fn ed2p_leans_toward_performance() {
        let p = select(&pts(), TargetMetric::Ed2p).unwrap();
        // ED²Ps: 1440, 500, 380, 421 → 1100 MHz wins.
        assert_eq!(p.freq_mhz, 1100.0);
    }

    #[test]
    fn bounded_slowdown_respects_constraint() {
        // 12% slowdown bound over 1.8 s allows times ≤ 2.016 s → only the
        // two fastest points qualify; the cheaper of those is 1100 MHz.
        let p = select(&pts(), TargetMetric::BoundedSlowdown { max_slowdown: 0.12 }).unwrap();
        assert_eq!(p.freq_mhz, 1100.0);
    }

    #[test]
    fn bounded_slowdown_zero_is_max_performance() {
        let p = select(&pts(), TargetMetric::BoundedSlowdown { max_slowdown: 0.0 }).unwrap();
        assert_eq!(p.freq_mhz, 1400.0);
    }

    #[test]
    fn empty_input_returns_none() {
        assert_eq!(select(&[], TargetMetric::MinEnergy), None);
    }

    #[test]
    fn healer_passes_monotone_counters_through() {
        let mut h = EnergyCounterHealer::new();
        assert_eq!(h.observe(1.0), 1.0);
        assert_eq!(h.observe(5.0), 5.0);
        assert_eq!(h.observe(5.0), 5.0);
        assert_eq!(h.rewinds(), 0);
    }

    #[test]
    fn healer_folds_rewinds_into_offset() {
        let mut h = EnergyCounterHealer::new();
        h.observe(10.0);
        // Counter reset: raw drops to 2 → healed keeps climbing.
        assert_eq!(h.observe(2.0), 12.0);
        assert_eq!(h.observe(7.0), 17.0);
        assert_eq!(h.rewinds(), 1);
        // Second reset.
        assert_eq!(h.observe(0.0), 17.0);
        assert_eq!(h.rewinds(), 2);
        assert_eq!(h.healed_j(), 17.0);
    }

    #[test]
    fn clean_metrics_report_clean() {
        let mut m = DegradationMetrics::default();
        assert!(m.is_clean());
        m.throttled_launches = 1;
        assert!(!m.is_clean());
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = DegradationMetrics {
            retries: 1,
            frequency_rejections: 2,
            launch_failures: 3,
            throttled_launches: 4,
            counter_rewinds_healed: 5,
            default_clock_fallbacks: 6,
            backoff_ns: 7,
            watchdog_misses: 8,
            items_rescheduled: 9,
            devices_evicted: 10,
            affinity_fallbacks: 11,
            lifecycle_fallbacks: 12,
            mem_clock_fallbacks: 13,
            power_cap_fallbacks: 14,
            link_degradations: 15,
            link_fallbacks: 16,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.retries, 2);
        assert_eq!(a.frequency_rejections, 4);
        assert_eq!(a.launch_failures, 6);
        assert_eq!(a.throttled_launches, 8);
        assert_eq!(a.counter_rewinds_healed, 10);
        assert_eq!(a.default_clock_fallbacks, 12);
        assert_eq!(a.backoff_ns, 14);
        assert_eq!(a.watchdog_misses, 16);
        assert_eq!(a.items_rescheduled, 18);
        assert_eq!(a.devices_evicted, 20);
        assert_eq!(a.affinity_fallbacks, 22);
        assert_eq!(a.lifecycle_fallbacks, 24);
        assert_eq!(a.mem_clock_fallbacks, 26);
        assert_eq!(a.power_cap_fallbacks, 28);
        assert_eq!(a.link_degradations, 30);
        assert_eq!(a.link_fallbacks, 32);
        // Merging a clean record is a no-op.
        let before = a;
        a.merge(&DegradationMetrics::default());
        assert_eq!(a, before);
    }
}
