//! Target-metric frequency selection.
//!
//! SYnergy lets users declare an energy target metric (min-energy, EDP,
//! ED²P, bounded performance loss) and picks the frequency that optimizes
//! it. The paper's future-work section plugs its domain-specific models into
//! exactly this hook: given predicted `(frequency, time, energy)` triples,
//! select the frequency for the chosen metric.

/// One (frequency, time, energy) operating point — measured or predicted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Core frequency (MHz).
    pub freq_mhz: f64,
    /// Execution time (s).
    pub time_s: f64,
    /// Energy (J).
    pub energy_j: f64,
}

/// The metric to optimize when choosing a frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TargetMetric {
    /// Minimize energy.
    MinEnergy,
    /// Minimize execution time.
    MaxPerformance,
    /// Minimize energy-delay product `E·T`.
    Edp,
    /// Minimize energy-delay-squared product `E·T²`.
    Ed2p,
    /// Minimize energy subject to `time ≤ (1 + max_slowdown) · best_time`.
    /// E.g. `max_slowdown = 0.05` tolerates a 5 % performance loss.
    BoundedSlowdown {
        /// Tolerated relative slowdown vs the fastest point (≥ 0).
        max_slowdown: f64,
    },
}

/// Selects the operating point optimizing `metric`. Returns `None` for an
/// empty input or if no point satisfies a `BoundedSlowdown` constraint
/// (impossible, since the fastest point always does, but typed defensively).
pub fn select(points: &[OperatingPoint], metric: TargetMetric) -> Option<OperatingPoint> {
    if points.is_empty() {
        return None;
    }
    let by_key = |key: fn(&OperatingPoint) -> f64| {
        points
            .iter()
            .copied()
            .min_by(|a, b| key(a).partial_cmp(&key(b)).expect("finite metric"))
    };
    match metric {
        TargetMetric::MinEnergy => by_key(|p| p.energy_j),
        TargetMetric::MaxPerformance => by_key(|p| p.time_s),
        TargetMetric::Edp => by_key(|p| p.energy_j * p.time_s),
        TargetMetric::Ed2p => by_key(|p| p.energy_j * p.time_s * p.time_s),
        TargetMetric::BoundedSlowdown { max_slowdown } => {
            assert!(max_slowdown >= 0.0, "slowdown bound must be ≥ 0");
            let t_best = by_key(|p| p.time_s)?.time_s;
            points
                .iter()
                .copied()
                .filter(|p| p.time_s <= t_best * (1.0 + max_slowdown))
                .min_by(|a, b| a.energy_j.partial_cmp(&b.energy_j).expect("finite"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<OperatingPoint> {
        vec![
            OperatingPoint {
                freq_mhz: 500.0,
                time_s: 4.0,
                energy_j: 90.0,
            },
            OperatingPoint {
                freq_mhz: 800.0,
                time_s: 2.5,
                energy_j: 80.0,
            },
            OperatingPoint {
                freq_mhz: 1100.0,
                time_s: 2.0,
                energy_j: 95.0,
            },
            OperatingPoint {
                freq_mhz: 1400.0,
                time_s: 1.8,
                energy_j: 130.0,
            },
        ]
    }

    #[test]
    fn min_energy_selects_800() {
        let p = select(&pts(), TargetMetric::MinEnergy).unwrap();
        assert_eq!(p.freq_mhz, 800.0);
    }

    #[test]
    fn max_performance_selects_1400() {
        let p = select(&pts(), TargetMetric::MaxPerformance).unwrap();
        assert_eq!(p.freq_mhz, 1400.0);
    }

    #[test]
    fn edp_balances() {
        let p = select(&pts(), TargetMetric::Edp).unwrap();
        // EDPs: 360, 200, 190, 234 → 1100 MHz wins.
        assert_eq!(p.freq_mhz, 1100.0);
    }

    #[test]
    fn ed2p_leans_toward_performance() {
        let p = select(&pts(), TargetMetric::Ed2p).unwrap();
        // ED²Ps: 1440, 500, 380, 421 → 1100 MHz wins.
        assert_eq!(p.freq_mhz, 1100.0);
    }

    #[test]
    fn bounded_slowdown_respects_constraint() {
        // 12% slowdown bound over 1.8 s allows times ≤ 2.016 s → only the
        // two fastest points qualify; the cheaper of those is 1100 MHz.
        let p = select(&pts(), TargetMetric::BoundedSlowdown { max_slowdown: 0.12 }).unwrap();
        assert_eq!(p.freq_mhz, 1100.0);
    }

    #[test]
    fn bounded_slowdown_zero_is_max_performance() {
        let p = select(&pts(), TargetMetric::BoundedSlowdown { max_slowdown: 0.0 }).unwrap();
        assert_eq!(p.freq_mhz, 1400.0);
    }

    #[test]
    fn empty_input_returns_none() {
        assert_eq!(select(&[], TargetMetric::MinEnergy), None);
    }
}
