//! Scoped energy measurement.
//!
//! The paper profiles whole-application energy "through the SYnergy API"
//! (§5.1): read the device energy counter, run the phase, read it again.
//! [`measure`] and [`measure_median`] package that pattern, including the
//! five-repetition robust aggregation the paper uses against outliers.

use crate::queue::SynergyQueue;
use serde::{Deserialize, Serialize};

/// An energy/time measurement of one profiled region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Wall-clock time of the region (s).
    pub time_s: f64,
    /// Energy consumed by the region (J).
    pub energy_j: f64,
}

impl Measurement {
    /// Average power over the region (W). Zero-duration regions report 0.
    pub fn avg_power_w(&self) -> f64 {
        if self.time_s > 0.0 {
            self.energy_j / self.time_s
        } else {
            0.0
        }
    }
}

/// Measures the kernels a closure submits to `queue`.
///
/// Returns the closure's result plus the time/energy delta of everything it
/// submitted.
pub fn measure<R>(
    queue: &mut SynergyQueue,
    f: impl FnOnce(&mut SynergyQueue) -> R,
) -> (R, Measurement) {
    let t0 = queue.total_time_s();
    let e0 = queue.total_energy_j();
    let out = f(queue);
    let m = Measurement {
        time_s: queue.total_time_s() - t0,
        energy_j: queue.total_energy_j() - e0,
    };
    (out, m)
}

/// Runs a region `reps` times and returns the median-by-energy measurement —
/// the paper's "each experiment is repeated five times to reduce the impact
/// of any outliers" (§5.1).
///
/// # Panics
/// Panics if `reps == 0`.
pub fn measure_median<R>(
    queue: &mut SynergyQueue,
    reps: usize,
    mut f: impl FnMut(&mut SynergyQueue) -> R,
) -> Measurement {
    assert!(reps > 0, "need at least one repetition");
    let mut samples: Vec<Measurement> = (0..reps)
        .map(|_| {
            let (_r, m) = measure(queue, &mut f);
            m
        })
        .collect();
    samples.sort_by(|a, b| a.energy_j.total_cmp(&b.energy_j));
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, DeviceSpec, KernelProfile};

    fn queue() -> SynergyQueue {
        SynergyQueue::nvidia(Device::new(DeviceSpec::v100()))
    }

    #[test]
    fn measure_captures_submitted_work() {
        let mut q = queue();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let (n, m) = measure(&mut q, |q| {
            q.submit(&k);
            q.submit(&k);
            2
        });
        assert_eq!(n, 2);
        assert!(m.time_s > 0.0);
        assert!(m.energy_j > 0.0);
        assert!(m.avg_power_w() > 0.0);
    }

    #[test]
    fn measure_isolates_regions() {
        let mut q = queue();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        q.submit(&k); // outside the measured region
        let (_, m) = measure(&mut q, |q| {
            q.submit(&k);
        });
        let single = q.total_energy_j() / 2.0;
        assert!((m.energy_j - single).abs() < single * 1e-9);
    }

    #[test]
    fn median_of_identical_runs_matches_single() {
        let mut q = queue();
        let k = KernelProfile::memory_bound("k", 1_000_000, 32.0);
        let m5 = measure_median(&mut q, 5, |q| {
            q.submit(&k);
        });
        let (_, m1) = measure(&mut q, |q| {
            q.submit(&k);
        });
        assert!((m5.energy_j - m1.energy_j).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_measurement_power_is_zero() {
        let m = Measurement {
            time_s: 0.0,
            energy_j: 0.0,
        };
        assert_eq!(m.avg_power_w(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_panics() {
        let mut q = queue();
        let _ = measure_median(&mut q, 0, |_q| {});
    }
}
