//! Record-once / re-price-everywhere kernel traces.
//!
//! A frequency sweep runs the *same* workload at every candidate clock. The
//! expensive part of each run is not deciding *what* to launch — the kernel
//! sequence of a simulated workload is identical at every frequency — but
//! re-executing the submission machinery launch by launch. A
//! [`KernelTrace`] separates the two: the workload is **recorded** once
//! into a run-length-encoded kernel sequence, and every sweep point then
//! **replays** that sequence through [`SynergyQueue::submit_batch`], which
//! prices each distinct `(kernel, frequency)` pair once and re-uses it.
//!
//! Replay preserves the exact submission order of the original workload
//! (run-length segments only group launches that were already
//! consecutive), so the queue's floating-point accumulators see the same
//! additions in the same order and the replayed measurements are
//! bit-identical to the directly-run workload — noiseless and under seeded
//! measurement noise alike.

use gpu_sim::device::LaunchRecord;
use gpu_sim::kernel::KernelProfile;
use gpu_sim::{DeviceSpec, Vendor};

use std::sync::{Arc, Mutex};

use crate::backend::{Backend, BackendError, DefaultConfig};
use crate::energy::Measurement;
use crate::queue::{SubmitError, SynergyQueue};

/// One run-length segment of a trace period: `count` consecutive launches
/// of the kernel at `kernel_index` (into [`KernelTrace::kernels`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSegment {
    /// Index into the trace's unique-kernel table.
    pub kernel_index: usize,
    /// Consecutive launches of that kernel.
    pub count: u64,
}

/// The run-length-encoded kernel sequence of one workload execution:
/// a `period` of segments repeated `repeats` times over a small table of
/// unique kernels.
///
/// Periodic workloads collapse losslessly — a Cronos run is one
/// four-kernel substep period repeated `steps × substeps` times; a LiGen
/// batch is a two-kernel period run once.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTrace {
    kernels: Vec<KernelProfile>,
    period: Vec<TraceSegment>,
    repeats: u64,
}

impl KernelTrace {
    /// Builds a trace from its parts.
    ///
    /// # Panics
    /// Panics if a segment indexes past `kernels`, has a zero count, or if
    /// a non-empty period has `repeats == 0`.
    pub fn new(kernels: Vec<KernelProfile>, period: Vec<TraceSegment>, repeats: u64) -> Self {
        for seg in &period {
            assert!(
                seg.kernel_index < kernels.len(),
                "segment indexes kernel {} of {}",
                seg.kernel_index,
                kernels.len()
            );
            assert!(seg.count > 0, "zero-length segment");
        }
        assert!(
            period.is_empty() || repeats > 0,
            "non-empty period needs repeats ≥ 1"
        );
        KernelTrace {
            kernels,
            period,
            repeats,
        }
    }

    /// Records whatever `run` submits to a queue over `spec`, without
    /// executing anything: launches cost zero and touch no device. The
    /// captured sequence is run-length encoded and folded into its
    /// smallest repeating period.
    ///
    /// Workloads whose submission stream depends on measured results would
    /// record a single iteration of that feedback loop; the workloads here
    /// are all open-loop, which is what makes record/replay exact.
    pub fn record(spec: &DeviceSpec, run: impl FnOnce(&mut SynergyQueue)) -> Self {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut queue = SynergyQueue::new(Box::new(RecordingBackend {
            spec: spec.clone(),
            log: Arc::clone(&log),
        }));
        run(&mut queue);
        let submissions = std::mem::take(&mut *log.lock().expect("recording log poisoned"));
        Self::from_submissions(&submissions)
    }

    /// Builds a trace from an explicit submission sequence.
    pub fn from_submissions(submissions: &[KernelProfile]) -> Self {
        let mut kernels: Vec<KernelProfile> = Vec::new();
        let mut segments: Vec<TraceSegment> = Vec::new();
        for k in submissions {
            let idx = match kernels.iter().position(|seen| seen == k) {
                Some(i) => i,
                None => {
                    kernels.push(k.clone());
                    kernels.len() - 1
                }
            };
            match segments.last_mut() {
                Some(last) if last.kernel_index == idx => last.count += 1,
                _ => segments.push(TraceSegment {
                    kernel_index: idx,
                    count: 1,
                }),
            }
        }
        let (period, repeats) = fold_smallest_period(segments);
        KernelTrace {
            kernels,
            period,
            repeats,
        }
    }

    /// The distinct kernels of the trace, in first-appearance order.
    pub fn kernels(&self) -> &[KernelProfile] {
        &self.kernels
    }

    /// One period of the run-length-encoded sequence.
    pub fn period(&self) -> &[TraceSegment] {
        &self.period
    }

    /// How many times the period repeats.
    pub fn repeats(&self) -> u64 {
        self.repeats
    }

    /// Total kernel launches one replay performs.
    pub fn total_launches(&self) -> u64 {
        self.period.iter().map(|s| s.count).sum::<u64>() * self.repeats
    }

    /// Replays the trace on `queue` under its active policy, returning the
    /// aggregate measurement of everything replayed — the drop-in
    /// equivalent of running the recorded workload directly.
    pub fn replay_on(&self, queue: &mut SynergyQueue) -> Measurement {
        let mut time_s = 0.0;
        let mut energy_j = 0.0;
        for _ in 0..self.repeats {
            for seg in &self.period {
                let m = queue.submit_batch(&self.kernels[seg.kernel_index], seg.count);
                time_s += m.time_s;
                energy_j += m.energy_j;
            }
        }
        Measurement { time_s, energy_j }
    }

    /// Fallible [`KernelTrace::replay_on`]: returns the first permanent
    /// failure the queue's retry policy could not ride out. Everything
    /// submitted before the failure stays in the queue's totals.
    pub fn try_replay_on(&self, queue: &mut SynergyQueue) -> Result<Measurement, SubmitError> {
        let mut time_s = 0.0;
        let mut energy_j = 0.0;
        for _ in 0..self.repeats {
            for seg in &self.period {
                let m = queue.try_submit_batch(&self.kernels[seg.kernel_index], seg.count)?;
                time_s += m.time_s;
                energy_j += m.energy_j;
            }
        }
        Ok(Measurement { time_s, energy_j })
    }
}

/// Folds a segment sequence into its smallest repeating period, returning
/// `(period, repeats)`. `[a b c, a b c] → ([a b c], 2)`; aperiodic input
/// comes back unchanged with `repeats = 1`.
fn fold_smallest_period(segments: Vec<TraceSegment>) -> (Vec<TraceSegment>, u64) {
    let n = segments.len();
    if n == 0 {
        return (segments, 0);
    }
    for p in 1..=n / 2 {
        if !n.is_multiple_of(p) {
            continue;
        }
        if (p..n).all(|i| segments[i] == segments[i % p]) {
            let repeats = (n / p) as u64;
            let mut period = segments;
            period.truncate(p);
            return (period, repeats);
        }
    }
    (segments, 1)
}

/// A [`Backend`] that executes nothing: it logs every submitted kernel so
/// [`KernelTrace::record`] can capture a workload's submission sequence at
/// zero simulation cost.
struct RecordingBackend {
    spec: DeviceSpec,
    log: Arc<Mutex<Vec<KernelProfile>>>,
}

impl Backend for RecordingBackend {
    fn device_name(&self) -> String {
        format!("{} (recorder)", self.spec.name)
    }

    fn vendor(&self) -> Vendor {
        self.spec.vendor
    }

    fn supported_core_frequencies(&self) -> Vec<f64> {
        self.spec.core_freqs.iter().collect()
    }

    fn default_config(&self) -> DefaultConfig {
        match self.spec.vendor {
            Vendor::Nvidia => DefaultConfig::FixedMhz(self.spec.default_core_mhz),
            Vendor::Amd | Vendor::Intel => DefaultConfig::Auto,
        }
    }

    fn energy_counter_j(&self) -> f64 {
        0.0
    }

    fn launch(
        &mut self,
        kernel: &KernelProfile,
        _freq_mhz: Option<f64>,
    ) -> Result<LaunchRecord, BackendError> {
        self.log
            .lock()
            .expect("recording log poisoned")
            .push(kernel.clone());
        Ok(LaunchRecord {
            time_s: 0.0,
            energy_j: 0.0,
            avg_power_w: 0.0,
            core_mhz: 0.0,
            mem_mhz: 0.0,
            throttled: false,
            fault_throttled: false,
        })
    }

    fn set_frequency(&mut self, freq_mhz: Option<f64>) -> Result<f64, BackendError> {
        // The recorder executes nothing; report the clock that would apply.
        Ok(freq_mhz.unwrap_or(self.spec.default_core_mhz))
    }

    fn supported_memory_frequencies(&self) -> Vec<f64> {
        self.spec.mem_freqs.iter().collect()
    }

    fn set_memory_frequency(&mut self, mem_mhz: Option<f64>) -> Result<f64, BackendError> {
        Ok(mem_mhz.unwrap_or(self.spec.mem_freqs.max()))
    }

    fn set_power_cap(&mut self, cap_w: Option<f64>) -> Result<Option<f64>, BackendError> {
        Ok(cap_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;

    fn k(name: &str, items: u64) -> KernelProfile {
        KernelProfile::compute_bound(name, items, 100.0)
    }

    #[test]
    fn records_and_rle_encodes() {
        let spec = DeviceSpec::v100();
        let (a, b) = (k("a", 1 << 20), k("b", 1 << 18));
        let trace = KernelTrace::record(&spec, |q| {
            for _ in 0..3 {
                q.submit(&a);
                q.submit(&a);
                q.submit(&b);
            }
        });
        assert_eq!(trace.kernels().len(), 2);
        assert_eq!(
            trace.period(),
            &[
                TraceSegment {
                    kernel_index: 0,
                    count: 2
                },
                TraceSegment {
                    kernel_index: 1,
                    count: 1
                },
            ]
        );
        assert_eq!(trace.repeats(), 3);
        assert_eq!(trace.total_launches(), 9);
    }

    #[test]
    fn aperiodic_sequences_survive_unchanged() {
        let seq = [k("a", 1), k("b", 2), k("a", 1)];
        let trace = KernelTrace::from_submissions(&seq);
        assert_eq!(trace.repeats(), 1);
        assert_eq!(trace.period().len(), 3);
        assert_eq!(trace.kernels().len(), 2, "duplicate kernels deduplicate");
        assert_eq!(trace.total_launches(), 3);
    }

    #[test]
    fn empty_recording_is_empty() {
        let trace = KernelTrace::record(&DeviceSpec::v100(), |_q| {});
        assert_eq!(trace.total_launches(), 0);
        let mut q = SynergyQueue::for_spec(DeviceSpec::v100());
        let m = trace.replay_on(&mut q);
        assert_eq!(m.time_s, 0.0);
        assert_eq!(q.submission_count(), 0);
    }

    #[test]
    fn replay_matches_direct_run_bitwise() {
        let spec = DeviceSpec::v100();
        let (a, b) = (k("a", 1 << 20), k("b", 1 << 18));
        let run = |q: &mut SynergyQueue| {
            for _ in 0..4 {
                q.submit(&a);
                q.submit(&b);
                q.submit(&b);
            }
        };
        let trace = KernelTrace::record(&spec, run);

        let mut direct = SynergyQueue::nvidia(Device::new(spec.clone()));
        run(&mut direct);
        let mut replayed = SynergyQueue::nvidia(Device::new(spec));
        let m = trace.replay_on(&mut replayed);

        assert_eq!(replayed.total_time_s(), direct.total_time_s());
        assert_eq!(replayed.total_energy_j(), direct.total_energy_j());
        assert_eq!(replayed.submission_count(), direct.submission_count());
        assert_eq!(m.time_s, direct.total_time_s());
    }

    #[test]
    fn recording_costs_nothing() {
        let spec = DeviceSpec::v100();
        let a = k("a", 1 << 20);
        let mut recorded_energy = None;
        let _ = KernelTrace::record(&spec, |q| {
            q.submit(&a);
            recorded_energy = Some(q.total_energy_j());
        });
        assert_eq!(recorded_energy, Some(0.0));
    }

    #[test]
    #[should_panic(expected = "segment indexes kernel")]
    fn out_of_range_segment_panics() {
        let _ = KernelTrace::new(
            vec![k("a", 1)],
            vec![TraceSegment {
                kernel_index: 1,
                count: 1,
            }],
            1,
        );
    }
}
