//! The profiled submission queue.
//!
//! [`SynergyQueue`] is the application-facing object: Cronos and LiGen
//! submit [`KernelProfile`]s to it exactly where the real codes submit SYCL
//! kernels to a `synergy::queue`. Every submission is profiled (time and
//! energy, like SYnergy's event-based profiling) and the queue's
//! [`FrequencyPolicy`] decides the core clock for each kernel.

use gpu_sim::device::{Device, LaunchRecord};
use gpu_sim::kernel::KernelProfile;
use gpu_sim::level_zero::ZeDevice;
use gpu_sim::nvml::NvmlDevice;
use gpu_sim::rocm::RocmDevice;
use gpu_sim::{DeviceSpec, Vendor};

use crate::backend::{
    Backend, BackendError, DefaultConfig, LevelZeroBackend, NvmlBackend, RocmBackend,
};
use crate::energy::Measurement;
use crate::metrics::{DegradationMetrics, EnergyCounterHealer};
use crate::scaling::FrequencyPolicy;

use std::sync::Arc;

use parking_lot::Mutex;

/// Profiling data for one completed submission (the SYCL event analogue,
/// extended with SYnergy's energy counter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfiledEvent {
    /// Kernel wall-clock time (s).
    pub time_s: f64,
    /// Kernel energy (J).
    pub energy_j: f64,
    /// Core clock the kernel ran at (MHz).
    pub core_mhz: f64,
    /// Whether the effective clock was throttled below the requested one.
    pub throttled: bool,
}

impl From<LaunchRecord> for ProfiledEvent {
    fn from(r: LaunchRecord) -> Self {
        ProfiledEvent {
            time_s: r.time_s,
            energy_j: r.energy_j,
            core_mhz: r.core_mhz,
            throttled: r.throttled,
        }
    }
}

/// How a queue rides out transient management-API failures: bounded retries
/// with deterministic exponential backoff, then (optionally) one last round
/// at the vendor default clock before giving up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries per clock configuration after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry (simulated seconds).
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff per successive failure.
    pub backoff_factor: f64,
    /// After exhausting retries at the requested clock, try the default
    /// clock configuration (degraded but measurable) before failing.
    pub fallback_to_default: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_s: 1e-4,
            backoff_factor: 2.0,
            fallback_to_default: true,
        }
    }
}

impl RetryPolicy {
    /// Fail on the first error: no retries, no fallback.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base_s: 0.0,
            backoff_factor: 1.0,
            fallback_to_default: false,
        }
    }

    /// Deterministic backoff before the retry following failure number
    /// `failure_index` (0-based).
    pub fn backoff_s(&self, failure_index: u32) -> f64 {
        self.backoff_base_s * self.backoff_factor.powi(failure_index as i32)
    }

    /// Hard upper bound on launch attempts for a single submission — the
    /// bound the retry loop provably terminates within.
    pub fn max_attempts_per_launch(&self) -> u32 {
        (1 + u32::from(self.fallback_to_default)) * (self.max_retries + 1)
    }
}

/// A submission the retry policy could not complete.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitError {
    /// Kernel that was being submitted.
    pub kernel: String,
    /// Launch attempts made before giving up.
    pub attempts: u32,
    /// The error of the final attempt.
    pub last_error: BackendError,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submission of '{}' abandoned after {} attempt(s): {}",
            self.kernel, self.attempts, self.last_error
        )
    }
}

impl std::error::Error for SubmitError {}

/// A profiled, frequency-scaling submission queue over one device.
pub struct SynergyQueue {
    backend: Box<dyn Backend>,
    policy: FrequencyPolicy,
    retry: RetryPolicy,
    degradation: DegradationMetrics,
    healer: EnergyCounterHealer,
    submissions: u64,
    total_time_s: f64,
    total_energy_j: f64,
    transfer_count: u64,
    transfer_bytes: u64,
    transfer_time_s: f64,
    transfer_energy_j: f64,
    watchdog_deadline_s: Option<f64>,
}

impl SynergyQueue {
    /// Builds a queue over an arbitrary backend.
    pub fn new(backend: Box<dyn Backend>) -> Self {
        SynergyQueue {
            backend,
            policy: FrequencyPolicy::DeviceDefault,
            retry: RetryPolicy::default(),
            degradation: DegradationMetrics::default(),
            healer: EnergyCounterHealer::new(),
            submissions: 0,
            total_time_s: 0.0,
            total_energy_j: 0.0,
            transfer_count: 0,
            transfer_bytes: 0,
            transfer_time_s: 0.0,
            transfer_energy_j: 0.0,
            watchdog_deadline_s: None,
        }
    }

    /// Queue over an NVIDIA device (NVML backend).
    ///
    /// # Panics
    /// Panics if the device is not an NVIDIA GPU.
    pub fn nvidia(device: Device) -> Self {
        assert_eq!(
            device.spec().vendor,
            Vendor::Nvidia,
            "SynergyQueue::nvidia needs an NVIDIA device"
        );
        let shared = Arc::new(Mutex::new(device));
        SynergyQueue::new(Box::new(NvmlBackend::new(NvmlDevice::from_shared(shared))))
    }

    /// Queue over an AMD device (ROCm-SMI backend).
    ///
    /// # Panics
    /// Panics if the device is not an AMD GPU.
    pub fn amd(device: Device) -> Self {
        assert_eq!(
            device.spec().vendor,
            Vendor::Amd,
            "SynergyQueue::amd needs an AMD device"
        );
        let shared = Arc::new(Mutex::new(device));
        SynergyQueue::new(Box::new(RocmBackend::new(RocmDevice::from_shared(shared))))
    }

    /// Queue over an Intel device (Level Zero backend).
    ///
    /// # Panics
    /// Panics if the device is not an Intel GPU.
    pub fn intel(device: Device) -> Self {
        assert_eq!(
            device.spec().vendor,
            Vendor::Intel,
            "SynergyQueue::intel needs an Intel device"
        );
        let shared = Arc::new(Mutex::new(device));
        SynergyQueue::new(Box::new(LevelZeroBackend::new(ZeDevice::from_shared(
            shared,
        ))))
    }

    /// Queue over any simulated device, dispatching on its vendor.
    pub fn for_device(device: Device) -> Self {
        match device.spec().vendor {
            Vendor::Nvidia => SynergyQueue::nvidia(device),
            Vendor::Amd => SynergyQueue::amd(device),
            Vendor::Intel => SynergyQueue::intel(device),
        }
    }

    /// Queue over a fresh device built from `spec`.
    pub fn for_spec(spec: DeviceSpec) -> Self {
        SynergyQueue::for_device(Device::new(spec))
    }

    /// Sets the frequency policy for subsequent submissions.
    pub fn set_policy(&mut self, policy: FrequencyPolicy) {
        self.policy = policy;
    }

    /// The active frequency policy.
    pub fn policy(&self) -> &FrequencyPolicy {
        &self.policy
    }

    /// Sets the retry policy for subsequent submissions.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Arms (or disarms, with `None`) a watchdog deadline on the queue's
    /// cumulative busy time. The queue never aborts work itself — launches
    /// in flight always complete — but once [`SynergyQueue::total_time_s`]
    /// exceeds the deadline, [`SynergyQueue::watchdog_tripped`] reports it,
    /// and a supervisor (the campaign scheduler) treats the measurement as
    /// a deadline miss: the device is suspect, the sample is discarded.
    pub fn set_watchdog_deadline(&mut self, deadline_s: Option<f64>) {
        if let Some(d) = deadline_s {
            assert!(d > 0.0, "watchdog deadline must be positive");
        }
        self.watchdog_deadline_s = deadline_s;
    }

    /// The armed watchdog deadline, if any (simulated seconds of busy time).
    pub fn watchdog_deadline_s(&self) -> Option<f64> {
        self.watchdog_deadline_s
    }

    /// True once the queue's cumulative busy time has exceeded the armed
    /// watchdog deadline. Always false while disarmed.
    pub fn watchdog_tripped(&self) -> bool {
        self.watchdog_deadline_s
            .is_some_and(|d| self.total_time_s > d)
    }

    /// The queue's degradation counters: everything the retry/healing
    /// machinery had to paper over so far.
    pub fn degradation(&self) -> DegradationMetrics {
        self.degradation
    }

    /// Audits one gang-shrink event in
    /// [`DegradationMetrics::link_fallbacks`]. A lost link is not healed
    /// per transfer attempt (it is non-transient), so the distributed
    /// driver that degrades to fewer devices records the fallback here on
    /// the queue that absorbed the work.
    pub fn note_link_fallback(&mut self) {
        self.degradation.link_fallbacks += 1;
    }

    /// The device's cumulative energy (J) with counter rewinds healed away
    /// — monotone non-decreasing across submissions even when the raw
    /// counter wraps or resets.
    pub fn device_energy_j(&mut self) -> f64 {
        self.observe_counter();
        self.healer.healed_j()
    }

    /// Device name.
    pub fn device_name(&self) -> String {
        self.backend.device_name()
    }

    /// Device vendor.
    pub fn vendor(&self) -> Vendor {
        self.backend.vendor()
    }

    /// Supported core frequencies, ascending (MHz).
    pub fn supported_frequencies(&self) -> Vec<f64> {
        self.backend.supported_core_frequencies()
    }

    /// The device's default frequency configuration.
    pub fn default_config(&self) -> DefaultConfig {
        self.backend.default_config()
    }

    /// Supported memory frequencies, ascending (MHz). Empty when the
    /// backend exposes no controllable memory domain.
    pub fn supported_memory_frequencies(&self) -> Vec<f64> {
        self.backend.supported_memory_frequencies()
    }

    /// Sets the device memory clock (`None` = vendor default, the top of
    /// the table), riding out transient rejections under the retry policy.
    /// When the requested clock keeps failing and the policy allows
    /// fallback, the queue restores the default memory clock instead —
    /// degraded but measurable — and records it in
    /// [`DegradationMetrics::mem_clock_fallbacks`].
    pub fn set_memory_frequency(&mut self, mem_mhz: Option<f64>) -> Result<f64, BackendError> {
        let mut failures = 0u32;
        loop {
            match self.backend.set_memory_frequency(mem_mhz) {
                Ok(m) => return Ok(m),
                Err(e) => {
                    self.note_error(&e);
                    if e.is_transient() && failures < self.retry.max_retries {
                        self.backoff(failures);
                        failures += 1;
                        self.degradation.retries += 1;
                    } else if self.retry.fallback_to_default && mem_mhz.is_some() {
                        // Restoring the default is idempotent when the
                        // rejected request never moved the clock, so this
                        // succeeds without consuming a management op.
                        let m = self.backend.set_memory_frequency(None)?;
                        self.degradation.mem_clock_fallbacks += 1;
                        return Ok(m);
                    } else {
                        return Err(e);
                    }
                }
            }
        }
    }

    /// Sets (or clears, with `None`) the operator power cap, riding out
    /// transient rejections under the retry policy. An unreachable cap
    /// degrades to the uncapped (TDP-only) configuration when fallback is
    /// allowed, recorded in [`DegradationMetrics::power_cap_fallbacks`].
    pub fn set_power_cap(&mut self, cap_w: Option<f64>) -> Result<Option<f64>, BackendError> {
        let mut failures = 0u32;
        loop {
            match self.backend.set_power_cap(cap_w) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    self.note_error(&e);
                    if e.is_transient() && failures < self.retry.max_retries {
                        self.backoff(failures);
                        failures += 1;
                        self.degradation.retries += 1;
                    } else if self.retry.fallback_to_default && cap_w.is_some() {
                        let c = self.backend.set_power_cap(None)?;
                        self.degradation.power_cap_fallbacks += 1;
                        return Ok(c);
                    } else {
                        return Err(e);
                    }
                }
            }
        }
    }

    /// The operator power cap currently in force, if any.
    pub fn power_cap_w(&self) -> Option<f64> {
        self.backend.power_cap()
    }

    /// Submits a kernel under the active policy and returns its profile.
    ///
    /// # Panics
    /// Panics if the retry policy gives up — use [`SynergyQueue::try_submit`]
    /// to handle permanent failure without unwinding.
    pub fn submit(&mut self, kernel: &KernelProfile) -> ProfiledEvent {
        self.try_submit(kernel)
            .unwrap_or_else(|e| panic!("{e} (use try_submit to handle this)"))
    }

    /// Submits a kernel at an explicit frequency, bypassing the policy
    /// (`None` = device default).
    ///
    /// # Panics
    /// Panics if the retry policy gives up — use
    /// [`SynergyQueue::try_submit_at`] to handle permanent failure.
    pub fn submit_at(&mut self, kernel: &KernelProfile, freq_mhz: Option<f64>) -> ProfiledEvent {
        self.try_submit_at(kernel, freq_mhz)
            .unwrap_or_else(|e| panic!("{e} (use try_submit_at to handle this)"))
    }

    /// Fallible [`SynergyQueue::submit`]: rides out transient faults under
    /// the retry policy and returns an error only on permanent failure.
    pub fn try_submit(&mut self, kernel: &KernelProfile) -> Result<ProfiledEvent, SubmitError> {
        let freq = self.policy.frequency_for(&kernel.name);
        self.try_submit_inner(kernel, freq)
    }

    /// Fallible [`SynergyQueue::submit_at`].
    pub fn try_submit_at(
        &mut self,
        kernel: &KernelProfile,
        freq_mhz: Option<f64>,
    ) -> Result<ProfiledEvent, SubmitError> {
        self.try_submit_inner(kernel, freq_mhz)
    }

    /// Submits `n` back-to-back launches of `kernel` under the active
    /// policy, resolving the policy and pricing the kernel **once** for the
    /// whole batch. Returns the batch's aggregate measurement.
    ///
    /// The queue's running totals accumulate launch by launch in submission
    /// order, so `submit_batch(k, n)` leaves every counter bit-identical to
    /// `n` separate `submit(k)` calls (floating-point addition is
    /// order-sensitive; the batch path keeps the order and drops only the
    /// per-launch cost-model evaluations). This is the fast path the
    /// trace-replay sweep engine drives.
    ///
    /// # Panics
    /// Panics if the retry policy gives up — use
    /// [`SynergyQueue::try_submit_batch`] to handle permanent failure.
    pub fn submit_batch(&mut self, kernel: &KernelProfile, n: u64) -> Measurement {
        self.try_submit_batch(kernel, n)
            .unwrap_or_else(|e| panic!("{e} (use try_submit_batch to handle this)"))
    }

    /// Fallible [`SynergyQueue::submit_batch`]: retries the *remainder* of
    /// the batch after a transient fault (completed launches are never
    /// re-run), falling back to the default clock when the requested one
    /// keeps failing. The retry budget resets whenever an attempt makes
    /// progress, so the loop is bounded by
    /// `(n + 1) × max_attempts_per_launch` backend calls.
    pub fn try_submit_batch(
        &mut self,
        kernel: &KernelProfile,
        n: u64,
    ) -> Result<Measurement, SubmitError> {
        let freq = self.policy.frequency_for(&kernel.name);
        let mut batch_time_s = 0.0;
        let mut batch_energy_j = 0.0;
        let mut remaining = n;
        let mut attempts = 0u32;
        let mut failures_since_progress = 0u32;
        let mut active_freq = freq;
        let mut fell_back = false;
        loop {
            let mut done_this_call = 0u64;
            let result = {
                let SynergyQueue {
                    backend,
                    total_time_s,
                    total_energy_j,
                    ..
                } = self;
                backend.launch_batch(kernel, active_freq, remaining, &mut |time_s, energy_j| {
                    *total_time_s += time_s;
                    *total_energy_j += energy_j;
                    batch_time_s += time_s;
                    batch_energy_j += energy_j;
                    done_this_call += 1;
                })
            };
            self.submissions += done_this_call;
            attempts = attempts.saturating_add(1);
            match result {
                Ok(throttled) => {
                    self.degradation.throttled_launches += throttled;
                    if fell_back {
                        self.degradation.default_clock_fallbacks += 1;
                    }
                    self.observe_counter();
                    return Ok(Measurement {
                        time_s: batch_time_s,
                        energy_j: batch_energy_j,
                    });
                }
                Err(e) => {
                    remaining -= done_this_call;
                    if done_this_call > 0 {
                        failures_since_progress = 0;
                    }
                    self.note_error(&e);
                    self.observe_counter();
                    if !e.is_transient() {
                        return Err(self.submit_error(kernel, attempts, e));
                    }
                    if failures_since_progress < self.retry.max_retries {
                        self.backoff(failures_since_progress);
                        failures_since_progress += 1;
                        self.degradation.retries += 1;
                    } else if self.retry.fallback_to_default && active_freq.is_some() {
                        active_freq = None;
                        fell_back = true;
                        failures_since_progress = 0;
                        self.degradation.retries += 1;
                    } else {
                        return Err(self.submit_error(kernel, attempts, e));
                    }
                }
            }
        }
    }

    fn try_submit_inner(
        &mut self,
        kernel: &KernelProfile,
        freq: Option<f64>,
    ) -> Result<ProfiledEvent, SubmitError> {
        let mut attempts = 0u32;
        let mut failures = 0u32;
        let rounds: &[Option<f64>] = if self.retry.fallback_to_default && freq.is_some() {
            &[freq, None]
        } else {
            &[freq]
        };
        let mut last_error = None;
        'rounds: for (round, &f) in rounds.iter().enumerate() {
            for retry in 0..=self.retry.max_retries {
                if attempts > 0 {
                    // A previous attempt failed; wait deterministically
                    // before this one.
                    self.backoff(failures - 1);
                    self.degradation.retries += 1;
                }
                attempts += 1;
                match self.backend.launch(kernel, f) {
                    Ok(rec) => {
                        if round > 0 {
                            self.degradation.default_clock_fallbacks += 1;
                        }
                        if rec.fault_throttled {
                            self.degradation.throttled_launches += 1;
                        }
                        self.submissions += 1;
                        self.total_time_s += rec.time_s;
                        self.total_energy_j += rec.energy_j;
                        self.observe_counter();
                        return Ok(rec.into());
                    }
                    Err(e) => {
                        failures += 1;
                        self.note_error(&e);
                        self.observe_counter();
                        let transient = e.is_transient();
                        last_error = Some(e);
                        if !transient {
                            // Retrying the identical call cannot help;
                            // a different clock round still might.
                            let _ = retry;
                            continue 'rounds;
                        }
                    }
                }
            }
        }
        let e = last_error.expect("at least one attempt was made");
        Err(self.submit_error(kernel, attempts, e))
    }

    fn submit_error(&self, kernel: &KernelProfile, attempts: u32, e: BackendError) -> SubmitError {
        SubmitError {
            kernel: kernel.name.clone(),
            attempts,
            last_error: e,
        }
    }

    fn note_error(&mut self, e: &BackendError) {
        match e {
            BackendError::FrequencyRejected { .. } => self.degradation.frequency_rejections += 1,
            BackendError::LaunchFailed { .. } => self.degradation.launch_failures += 1,
            // A lost link is accounted by the distributed driver that
            // falls back (DegradationMetrics::link_fallbacks), not per
            // failed transfer attempt.
            BackendError::LinkLost => {}
            BackendError::Management(_) => {}
        }
    }

    /// Reads the raw device counter and folds any rewind into the healer.
    fn observe_counter(&mut self) {
        let raw = self.backend.energy_counter_j();
        self.healer.observe(raw);
        self.degradation.counter_rewinds_healed = self.healer.rewinds();
    }

    /// Charges one deterministic backoff wait to the device as idle time.
    fn backoff(&mut self, failure_index: u32) {
        let dt = self.retry.backoff_s(failure_index);
        if dt > 0.0 {
            self.backend.idle_wait(dt);
            self.degradation.backoff_ns += (dt * 1e9).round() as u64;
        }
    }

    /// Lets device time pass without work, accumulating it (and the idle
    /// energy the device charges for it) into the queue's totals. A
    /// distributed driver parks laggard devices here at its lockstep
    /// barriers so barrier waits show up as honest idle energy.
    ///
    /// # Panics
    /// Panics on negative `dt_s`.
    pub fn idle_wait(&mut self, dt_s: f64) {
        assert!(dt_s >= 0.0, "time cannot run backwards");
        if dt_s == 0.0 {
            return;
        }
        let before = self.device_energy_j();
        self.backend.idle_wait(dt_s);
        let after = self.device_energy_j();
        self.total_time_s += dt_s;
        self.total_energy_j += (after - before).max(0.0);
    }

    /// Moves `bytes` over the device's peer-to-peer interconnect port (one
    /// directed halo message of a domain-decomposed solver), accumulating
    /// the transfer's time and energy into the queue's totals.
    ///
    /// A degraded transfer (link retrained to a fraction of its lanes)
    /// still completes and is recorded in
    /// [`DegradationMetrics::link_degradations`]; a *lost* link is
    /// non-transient, so the retry policy does not loop — the error is
    /// returned at once for the distributed driver to shrink the gang.
    pub fn try_submit_transfer(&mut self, bytes: u64) -> Result<Measurement, SubmitError> {
        match self.backend.transfer(bytes) {
            Ok(rec) => {
                if rec.degraded {
                    self.degradation.link_degradations += 1;
                }
                self.transfer_count += 1;
                self.transfer_bytes += bytes;
                self.transfer_time_s += rec.time_s;
                self.transfer_energy_j += rec.energy_j;
                self.total_time_s += rec.time_s;
                self.total_energy_j += rec.energy_j;
                self.observe_counter();
                Ok(Measurement {
                    time_s: rec.time_s,
                    energy_j: rec.energy_j,
                })
            }
            Err(e) => {
                self.note_error(&e);
                self.observe_counter();
                Err(SubmitError {
                    kernel: "link::transfer".to_string(),
                    attempts: 1,
                    last_error: e,
                })
            }
        }
    }

    /// Infallible [`SynergyQueue::try_submit_transfer`].
    ///
    /// # Panics
    /// Panics when the transfer fails (lost link / no interconnect) — use
    /// [`SynergyQueue::try_submit_transfer`] to handle that without
    /// unwinding.
    pub fn submit_transfer(&mut self, bytes: u64) -> Measurement {
        self.try_submit_transfer(bytes)
            .unwrap_or_else(|e| panic!("{e} (use try_submit_transfer to handle this)"))
    }

    /// Interconnect transfers completed so far.
    pub fn transfer_count(&self) -> u64 {
        self.transfer_count
    }

    /// Bytes moved over the interconnect so far.
    pub fn transfer_bytes(&self) -> u64 {
        self.transfer_bytes
    }

    /// Time spent in interconnect transfers (s), a subset of
    /// [`SynergyQueue::total_time_s`].
    pub fn transfer_time_s(&self) -> f64 {
        self.transfer_time_s
    }

    /// Energy spent in interconnect transfers (J), a subset of
    /// [`SynergyQueue::total_energy_j`].
    pub fn transfer_energy_j(&self) -> f64 {
        self.transfer_energy_j
    }

    /// Number of kernels submitted so far.
    pub fn submission_count(&self) -> u64 {
        self.submissions
    }

    /// Sum of kernel times (s) over the queue's lifetime.
    pub fn total_time_s(&self) -> f64 {
        self.total_time_s
    }

    /// Sum of kernel energies (J) over the queue's lifetime.
    pub fn total_energy_j(&self) -> f64 {
        self.total_energy_j
    }

    /// Resets the queue's aggregate counters (device counters keep running).
    pub fn reset_counters(&mut self) {
        self.submissions = 0;
        self.total_time_s = 0.0;
        self.total_energy_j = 0.0;
        self.transfer_count = 0;
        self.transfer_bytes = 0;
        self.transfer_time_s = 0.0;
        self.transfer_energy_j = 0.0;
    }
}

impl std::fmt::Debug for SynergyQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynergyQueue")
            .field("device", &self.backend.device_name())
            .field("submissions", &self.submissions)
            .field("total_time_s", &self.total_time_s)
            .field("total_energy_j", &self.total_energy_j)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, DeviceSpec, KernelProfile};

    fn v100_queue() -> SynergyQueue {
        SynergyQueue::nvidia(Device::new(DeviceSpec::v100()))
    }

    #[test]
    fn submit_accumulates_counters() {
        let mut q = v100_queue();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let e1 = q.submit(&k);
        let e2 = q.submit(&k);
        assert_eq!(q.submission_count(), 2);
        assert!((q.total_time_s() - e1.time_s - e2.time_s).abs() < 1e-15);
        assert!((q.total_energy_j() - e1.energy_j - e2.energy_j).abs() < 1e-12);
    }

    #[test]
    fn fixed_policy_changes_clock() {
        let mut q = v100_queue();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let def = q.submit(&k);
        q.set_policy(FrequencyPolicy::Fixed(600.0));
        let slow = q.submit(&k);
        assert!(slow.core_mhz < def.core_mhz);
        assert!(slow.time_s > def.time_s);
    }

    #[test]
    fn per_kernel_policy_dispatches_by_name() {
        let mut q = v100_queue();
        q.set_policy(FrequencyPolicy::per_kernel([("a", 500.0)], None));
        let ka = KernelProfile::compute_bound("a", 1_000_000, 100.0);
        let kb = KernelProfile::compute_bound("b", 1_000_000, 100.0);
        let ea = q.submit(&ka);
        let eb = q.submit(&kb);
        assert!(ea.core_mhz < 520.0);
        assert!((eb.core_mhz - 1312.1).abs() < 1.0);
    }

    #[test]
    fn vendor_dispatch() {
        let q = SynergyQueue::for_spec(DeviceSpec::mi100());
        assert_eq!(q.vendor(), Vendor::Amd);
        assert_eq!(q.default_config(), DefaultConfig::Auto);
        let q2 = SynergyQueue::for_spec(DeviceSpec::v100());
        assert_eq!(q2.vendor(), Vendor::Nvidia);
    }

    #[test]
    #[should_panic(expected = "needs an NVIDIA device")]
    fn nvidia_constructor_rejects_amd() {
        let _ = SynergyQueue::nvidia(Device::new(DeviceSpec::mi100()));
    }

    #[test]
    fn intel_queue_round_trips() {
        let mut q = SynergyQueue::for_spec(DeviceSpec::max1100());
        assert_eq!(q.vendor(), Vendor::Intel);
        assert_eq!(q.default_config(), DefaultConfig::Auto);
        let k = KernelProfile::compute_bound("k", 1 << 20, 200.0);
        let ev = q.submit(&k);
        assert_eq!(ev.core_mhz, 1450.0);
        q.set_policy(FrequencyPolicy::Fixed(700.0));
        let slow = q.submit(&k);
        assert!(slow.core_mhz < 750.0);
        assert!(slow.time_s > ev.time_s);
    }

    #[test]
    fn submit_at_bypasses_policy() {
        let mut q = v100_queue();
        q.set_policy(FrequencyPolicy::Fixed(1597.0));
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let ev = q.submit_at(&k, Some(135.0));
        assert!(ev.core_mhz < 200.0);
    }

    #[test]
    fn submit_batch_matches_serial_submits_bitwise() {
        for spec in [
            DeviceSpec::v100(),
            DeviceSpec::mi100(),
            DeviceSpec::max1100(),
        ] {
            let mut serial = SynergyQueue::for_spec(spec.clone());
            let mut batched = SynergyQueue::for_spec(spec);
            let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
            for q in [&mut serial, &mut batched] {
                q.set_policy(FrequencyPolicy::Fixed(800.0));
            }
            for _ in 0..6 {
                serial.submit(&k);
            }
            let m = batched.submit_batch(&k, 6);
            assert_eq!(batched.total_time_s(), serial.total_time_s());
            assert_eq!(batched.total_energy_j(), serial.total_energy_j());
            assert_eq!(batched.submission_count(), 6);
            assert_eq!(m.time_s, serial.total_time_s());
            assert_eq!(m.energy_j, serial.total_energy_j());
        }
    }

    #[test]
    fn submit_batch_default_policy_matches_vendor_baseline() {
        for spec in [
            DeviceSpec::v100(),
            DeviceSpec::mi100(),
            DeviceSpec::max1100(),
        ] {
            let mut serial = SynergyQueue::for_spec(spec.clone());
            let mut batched = SynergyQueue::for_spec(spec);
            let k = KernelProfile::memory_bound("k", 2_000_000, 48.0);
            for _ in 0..3 {
                serial.submit(&k);
            }
            batched.submit_batch(&k, 3);
            assert_eq!(batched.total_time_s(), serial.total_time_s());
            assert_eq!(batched.total_energy_j(), serial.total_energy_j());
        }
    }

    #[test]
    fn submit_batch_of_zero_is_a_noop() {
        let mut q = v100_queue();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let m = q.submit_batch(&k, 0);
        assert_eq!(m.time_s, 0.0);
        assert_eq!(q.submission_count(), 0);
    }

    #[test]
    fn reset_counters_clears_aggregates() {
        let mut q = v100_queue();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        q.submit(&k);
        q.reset_counters();
        assert_eq!(q.submission_count(), 0);
        assert_eq!(q.total_energy_j(), 0.0);
    }

    #[test]
    fn mem_clock_and_power_cap_actuators_round_trip() {
        let mut q = v100_queue();
        assert_eq!(
            q.supported_memory_frequencies(),
            vec![703.0, 810.0, 958.0, 1107.0]
        );
        assert_eq!(q.set_memory_frequency(Some(810.0)).unwrap(), 810.0);
        assert_eq!(q.set_memory_frequency(None).unwrap(), 1107.0);
        assert_eq!(q.set_power_cap(Some(100.0)).unwrap(), Some(100.0));
        assert_eq!(q.power_cap_w(), Some(100.0));
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let capped = q.submit(&k);
        assert!(capped.throttled, "a 100 W cap binds at the default clock");
        assert_eq!(q.set_power_cap(None).unwrap(), None);
        assert_eq!(q.power_cap_w(), None);
    }

    #[test]
    fn rejected_mem_clock_set_falls_back_to_default() {
        use gpu_sim::{FaultPlan, Schedule};
        let plan = FaultPlan::seeded(7).reject_set_frequency(Schedule::Prob(1.0));
        let mut q = SynergyQueue::nvidia(Device::with_faults(DeviceSpec::v100(), plan));
        // Every mem-clock change is rejected; restoring the default is
        // idempotent (the clock never moved) and therefore succeeds.
        let m = q.set_memory_frequency(Some(703.0)).unwrap();
        assert_eq!(m, 1107.0, "fell back to the default memory clock");
        let d = q.degradation();
        assert_eq!(d.mem_clock_fallbacks, 1);
        assert!(d.retries >= 1);
        assert!(d.frequency_rejections >= 1);
        assert!(!d.is_clean());
    }

    #[test]
    fn rejected_power_cap_set_falls_back_to_uncapped() {
        use gpu_sim::{FaultPlan, Schedule};
        let plan = FaultPlan::seeded(11).reject_set_frequency(Schedule::Prob(1.0));
        let mut q = SynergyQueue::nvidia(Device::with_faults(DeviceSpec::v100(), plan));
        assert_eq!(q.set_power_cap(Some(150.0)).unwrap(), None);
        assert_eq!(q.degradation().power_cap_fallbacks, 1);
        assert_eq!(q.power_cap_w(), None);
    }

    #[test]
    fn transfer_accumulates_totals_and_telemetry() {
        let mut q = v100_queue();
        let m = q.submit_transfer(150_000_000);
        assert!(m.time_s > 0.0 && m.energy_j > 0.0);
        assert_eq!(q.transfer_count(), 1);
        assert_eq!(q.transfer_bytes(), 150_000_000);
        assert_eq!(q.transfer_time_s(), m.time_s);
        assert_eq!(q.transfer_energy_j(), m.energy_j);
        assert_eq!(q.total_time_s(), m.time_s);
        assert_eq!(q.total_energy_j(), m.energy_j);
        assert_eq!(q.submission_count(), 0, "a transfer is not a kernel");
        assert!(q.degradation().is_clean());
        q.reset_counters();
        assert_eq!(q.transfer_count(), 0);
        assert_eq!(q.transfer_bytes(), 0);
    }

    #[test]
    fn degraded_transfer_is_audited_and_lost_link_is_fatal() {
        use gpu_sim::{FaultPlan, Schedule};
        let plan = FaultPlan::none()
            .degrade_link(Schedule::once(0), 0.5)
            .fail_link(Schedule::once(1));
        let mut q = SynergyQueue::nvidia(Device::with_faults(DeviceSpec::v100(), plan));
        let slow = q.try_submit_transfer(150_000_000).unwrap();
        assert_eq!(q.degradation().link_degradations, 1);
        let healthy_t = DeviceSpec::v100().link.transfer_time_s(150_000_000, 1.0);
        assert!(slow.time_s > 1.5 * healthy_t);
        let err = q.try_submit_transfer(150_000_000).unwrap_err();
        assert_eq!(err.last_error, BackendError::LinkLost);
        assert!(!err.last_error.is_transient(), "lost links are not retried");
        assert_eq!(err.attempts, 1);
        // The failed transfer left the totals untouched.
        assert_eq!(q.transfer_count(), 1);
        assert_eq!(q.total_time_s(), slow.time_s);
    }

    #[test]
    fn idle_wait_charges_idle_power_to_the_totals() {
        let mut q = v100_queue();
        q.idle_wait(2.0);
        assert_eq!(q.total_time_s(), 2.0);
        let expected = DeviceSpec::v100().idle_power_w * 2.0;
        assert!((q.total_energy_j() - expected).abs() < 1e-9);
        q.idle_wait(0.0);
        assert_eq!(q.total_time_s(), 2.0);
    }

    #[test]
    fn watchdog_trips_only_past_the_deadline() {
        let mut q = v100_queue();
        let k = KernelProfile::compute_bound("k", 1 << 22, 100.0);
        assert!(!q.watchdog_tripped(), "disarmed watchdog never trips");
        q.set_watchdog_deadline(Some(1e9));
        q.submit(&k);
        assert!(!q.watchdog_tripped(), "generous deadline must not trip");
        q.set_watchdog_deadline(Some(q.total_time_s() / 2.0));
        assert!(q.watchdog_tripped(), "busy time exceeds the deadline");
        q.set_watchdog_deadline(None);
        assert!(!q.watchdog_tripped(), "disarming clears the trip");
    }
}
