//! The profiled submission queue.
//!
//! [`SynergyQueue`] is the application-facing object: Cronos and LiGen
//! submit [`KernelProfile`]s to it exactly where the real codes submit SYCL
//! kernels to a `synergy::queue`. Every submission is profiled (time and
//! energy, like SYnergy's event-based profiling) and the queue's
//! [`FrequencyPolicy`] decides the core clock for each kernel.

use gpu_sim::device::{Device, LaunchRecord};
use gpu_sim::kernel::KernelProfile;
use gpu_sim::level_zero::ZeDevice;
use gpu_sim::nvml::NvmlDevice;
use gpu_sim::rocm::RocmDevice;
use gpu_sim::{DeviceSpec, Vendor};

use crate::backend::{Backend, DefaultConfig, LevelZeroBackend, NvmlBackend, RocmBackend};
use crate::energy::Measurement;
use crate::scaling::FrequencyPolicy;

use std::sync::Arc;

use parking_lot::Mutex;

/// Profiling data for one completed submission (the SYCL event analogue,
/// extended with SYnergy's energy counter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfiledEvent {
    /// Kernel wall-clock time (s).
    pub time_s: f64,
    /// Kernel energy (J).
    pub energy_j: f64,
    /// Core clock the kernel ran at (MHz).
    pub core_mhz: f64,
}

impl From<LaunchRecord> for ProfiledEvent {
    fn from(r: LaunchRecord) -> Self {
        ProfiledEvent {
            time_s: r.time_s,
            energy_j: r.energy_j,
            core_mhz: r.core_mhz,
        }
    }
}

/// A profiled, frequency-scaling submission queue over one device.
pub struct SynergyQueue {
    backend: Box<dyn Backend>,
    policy: FrequencyPolicy,
    submissions: u64,
    total_time_s: f64,
    total_energy_j: f64,
}

impl SynergyQueue {
    /// Builds a queue over an arbitrary backend.
    pub fn new(backend: Box<dyn Backend>) -> Self {
        SynergyQueue {
            backend,
            policy: FrequencyPolicy::DeviceDefault,
            submissions: 0,
            total_time_s: 0.0,
            total_energy_j: 0.0,
        }
    }

    /// Queue over an NVIDIA device (NVML backend).
    ///
    /// # Panics
    /// Panics if the device is not an NVIDIA GPU.
    pub fn nvidia(device: Device) -> Self {
        assert_eq!(
            device.spec().vendor,
            Vendor::Nvidia,
            "SynergyQueue::nvidia needs an NVIDIA device"
        );
        let shared = Arc::new(Mutex::new(device));
        SynergyQueue::new(Box::new(NvmlBackend::new(NvmlDevice::from_shared(shared))))
    }

    /// Queue over an AMD device (ROCm-SMI backend).
    ///
    /// # Panics
    /// Panics if the device is not an AMD GPU.
    pub fn amd(device: Device) -> Self {
        assert_eq!(
            device.spec().vendor,
            Vendor::Amd,
            "SynergyQueue::amd needs an AMD device"
        );
        let shared = Arc::new(Mutex::new(device));
        SynergyQueue::new(Box::new(RocmBackend::new(RocmDevice::from_shared(shared))))
    }

    /// Queue over an Intel device (Level Zero backend).
    ///
    /// # Panics
    /// Panics if the device is not an Intel GPU.
    pub fn intel(device: Device) -> Self {
        assert_eq!(
            device.spec().vendor,
            Vendor::Intel,
            "SynergyQueue::intel needs an Intel device"
        );
        let shared = Arc::new(Mutex::new(device));
        SynergyQueue::new(Box::new(LevelZeroBackend::new(ZeDevice::from_shared(
            shared,
        ))))
    }

    /// Queue over any simulated device, dispatching on its vendor.
    pub fn for_device(device: Device) -> Self {
        match device.spec().vendor {
            Vendor::Nvidia => SynergyQueue::nvidia(device),
            Vendor::Amd => SynergyQueue::amd(device),
            Vendor::Intel => SynergyQueue::intel(device),
        }
    }

    /// Queue over a fresh device built from `spec`.
    pub fn for_spec(spec: DeviceSpec) -> Self {
        SynergyQueue::for_device(Device::new(spec))
    }

    /// Sets the frequency policy for subsequent submissions.
    pub fn set_policy(&mut self, policy: FrequencyPolicy) {
        self.policy = policy;
    }

    /// The active frequency policy.
    pub fn policy(&self) -> &FrequencyPolicy {
        &self.policy
    }

    /// Device name.
    pub fn device_name(&self) -> String {
        self.backend.device_name()
    }

    /// Device vendor.
    pub fn vendor(&self) -> Vendor {
        self.backend.vendor()
    }

    /// Supported core frequencies, ascending (MHz).
    pub fn supported_frequencies(&self) -> Vec<f64> {
        self.backend.supported_core_frequencies()
    }

    /// The device's default frequency configuration.
    pub fn default_config(&self) -> DefaultConfig {
        self.backend.default_config()
    }

    /// Submits a kernel under the active policy and returns its profile.
    pub fn submit(&mut self, kernel: &KernelProfile) -> ProfiledEvent {
        let freq = self.policy.frequency_for(&kernel.name);
        self.submit_inner(kernel, freq)
    }

    /// Submits a kernel at an explicit frequency, bypassing the policy
    /// (`None` = device default).
    pub fn submit_at(&mut self, kernel: &KernelProfile, freq_mhz: Option<f64>) -> ProfiledEvent {
        self.submit_inner(kernel, freq_mhz)
    }

    /// Submits `n` back-to-back launches of `kernel` under the active
    /// policy, resolving the policy and pricing the kernel **once** for the
    /// whole batch. Returns the batch's aggregate measurement.
    ///
    /// The queue's running totals accumulate launch by launch in submission
    /// order, so `submit_batch(k, n)` leaves every counter bit-identical to
    /// `n` separate `submit(k)` calls (floating-point addition is
    /// order-sensitive; the batch path keeps the order and drops only the
    /// per-launch cost-model evaluations). This is the fast path the
    /// trace-replay sweep engine drives.
    pub fn submit_batch(&mut self, kernel: &KernelProfile, n: u64) -> Measurement {
        let freq = self.policy.frequency_for(&kernel.name);
        let mut batch_time_s = 0.0;
        let mut batch_energy_j = 0.0;
        {
            let SynergyQueue {
                backend,
                total_time_s,
                total_energy_j,
                ..
            } = self;
            backend.launch_batch(kernel, freq, n, &mut |time_s, energy_j| {
                *total_time_s += time_s;
                *total_energy_j += energy_j;
                batch_time_s += time_s;
                batch_energy_j += energy_j;
            });
        }
        self.submissions += n;
        Measurement {
            time_s: batch_time_s,
            energy_j: batch_energy_j,
        }
    }

    fn submit_inner(&mut self, kernel: &KernelProfile, freq: Option<f64>) -> ProfiledEvent {
        let rec = self.backend.launch(kernel, freq);
        self.submissions += 1;
        self.total_time_s += rec.time_s;
        self.total_energy_j += rec.energy_j;
        rec.into()
    }

    /// Number of kernels submitted so far.
    pub fn submission_count(&self) -> u64 {
        self.submissions
    }

    /// Sum of kernel times (s) over the queue's lifetime.
    pub fn total_time_s(&self) -> f64 {
        self.total_time_s
    }

    /// Sum of kernel energies (J) over the queue's lifetime.
    pub fn total_energy_j(&self) -> f64 {
        self.total_energy_j
    }

    /// Resets the queue's aggregate counters (device counters keep running).
    pub fn reset_counters(&mut self) {
        self.submissions = 0;
        self.total_time_s = 0.0;
        self.total_energy_j = 0.0;
    }
}

impl std::fmt::Debug for SynergyQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynergyQueue")
            .field("device", &self.backend.device_name())
            .field("submissions", &self.submissions)
            .field("total_time_s", &self.total_time_s)
            .field("total_energy_j", &self.total_energy_j)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, DeviceSpec, KernelProfile};

    fn v100_queue() -> SynergyQueue {
        SynergyQueue::nvidia(Device::new(DeviceSpec::v100()))
    }

    #[test]
    fn submit_accumulates_counters() {
        let mut q = v100_queue();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let e1 = q.submit(&k);
        let e2 = q.submit(&k);
        assert_eq!(q.submission_count(), 2);
        assert!((q.total_time_s() - e1.time_s - e2.time_s).abs() < 1e-15);
        assert!((q.total_energy_j() - e1.energy_j - e2.energy_j).abs() < 1e-12);
    }

    #[test]
    fn fixed_policy_changes_clock() {
        let mut q = v100_queue();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let def = q.submit(&k);
        q.set_policy(FrequencyPolicy::Fixed(600.0));
        let slow = q.submit(&k);
        assert!(slow.core_mhz < def.core_mhz);
        assert!(slow.time_s > def.time_s);
    }

    #[test]
    fn per_kernel_policy_dispatches_by_name() {
        let mut q = v100_queue();
        q.set_policy(FrequencyPolicy::per_kernel([("a", 500.0)], None));
        let ka = KernelProfile::compute_bound("a", 1_000_000, 100.0);
        let kb = KernelProfile::compute_bound("b", 1_000_000, 100.0);
        let ea = q.submit(&ka);
        let eb = q.submit(&kb);
        assert!(ea.core_mhz < 520.0);
        assert!((eb.core_mhz - 1312.1).abs() < 1.0);
    }

    #[test]
    fn vendor_dispatch() {
        let q = SynergyQueue::for_spec(DeviceSpec::mi100());
        assert_eq!(q.vendor(), Vendor::Amd);
        assert_eq!(q.default_config(), DefaultConfig::Auto);
        let q2 = SynergyQueue::for_spec(DeviceSpec::v100());
        assert_eq!(q2.vendor(), Vendor::Nvidia);
    }

    #[test]
    #[should_panic(expected = "needs an NVIDIA device")]
    fn nvidia_constructor_rejects_amd() {
        let _ = SynergyQueue::nvidia(Device::new(DeviceSpec::mi100()));
    }

    #[test]
    fn intel_queue_round_trips() {
        let mut q = SynergyQueue::for_spec(DeviceSpec::max1100());
        assert_eq!(q.vendor(), Vendor::Intel);
        assert_eq!(q.default_config(), DefaultConfig::Auto);
        let k = KernelProfile::compute_bound("k", 1 << 20, 200.0);
        let ev = q.submit(&k);
        assert_eq!(ev.core_mhz, 1450.0);
        q.set_policy(FrequencyPolicy::Fixed(700.0));
        let slow = q.submit(&k);
        assert!(slow.core_mhz < 750.0);
        assert!(slow.time_s > ev.time_s);
    }

    #[test]
    fn submit_at_bypasses_policy() {
        let mut q = v100_queue();
        q.set_policy(FrequencyPolicy::Fixed(1597.0));
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let ev = q.submit_at(&k, Some(135.0));
        assert!(ev.core_mhz < 200.0);
    }

    #[test]
    fn submit_batch_matches_serial_submits_bitwise() {
        for spec in [DeviceSpec::v100(), DeviceSpec::mi100(), DeviceSpec::max1100()] {
            let mut serial = SynergyQueue::for_spec(spec.clone());
            let mut batched = SynergyQueue::for_spec(spec);
            let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
            for q in [&mut serial, &mut batched] {
                q.set_policy(FrequencyPolicy::Fixed(800.0));
            }
            for _ in 0..6 {
                serial.submit(&k);
            }
            let m = batched.submit_batch(&k, 6);
            assert_eq!(batched.total_time_s(), serial.total_time_s());
            assert_eq!(batched.total_energy_j(), serial.total_energy_j());
            assert_eq!(batched.submission_count(), 6);
            assert_eq!(m.time_s, serial.total_time_s());
            assert_eq!(m.energy_j, serial.total_energy_j());
        }
    }

    #[test]
    fn submit_batch_default_policy_matches_vendor_baseline() {
        for spec in [DeviceSpec::v100(), DeviceSpec::mi100(), DeviceSpec::max1100()] {
            let mut serial = SynergyQueue::for_spec(spec.clone());
            let mut batched = SynergyQueue::for_spec(spec);
            let k = KernelProfile::memory_bound("k", 2_000_000, 48.0);
            for _ in 0..3 {
                serial.submit(&k);
            }
            batched.submit_batch(&k, 3);
            assert_eq!(batched.total_time_s(), serial.total_time_s());
            assert_eq!(batched.total_energy_j(), serial.total_energy_j());
        }
    }

    #[test]
    fn submit_batch_of_zero_is_a_noop() {
        let mut q = v100_queue();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let m = q.submit_batch(&k, 0);
        assert_eq!(m.time_s, 0.0);
        assert_eq!(q.submission_count(), 0);
    }

    #[test]
    fn reset_counters_clears_aggregates() {
        let mut q = v100_queue();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        q.submit(&k);
        q.reset_counters();
        assert_eq!(q.submission_count(), 0);
        assert_eq!(q.total_energy_j(), 0.0);
    }
}
