//! Frequency-selection policies.
//!
//! SYnergy supports both whole-application frequency scaling and per-kernel
//! scaling (the paper's future-work section selects a different frequency
//! for each kernel). A [`FrequencyPolicy`] decides which core clock a given
//! kernel submission runs at.

use std::collections::HashMap;

/// Policy mapping kernel submissions to core frequencies.
#[derive(Debug, Clone, Default)]
pub enum FrequencyPolicy {
    /// Run everything at the vendor default configuration (fixed default
    /// clock on NVIDIA, auto governor on AMD).
    #[default]
    DeviceDefault,
    /// Pin every kernel to one frequency (MHz).
    Fixed(f64),
    /// Per-kernel frequencies by kernel name, with a fallback for kernels
    /// not in the map (`None` = device default).
    PerKernel {
        /// Kernel-name → frequency (MHz) assignments.
        table: HashMap<String, f64>,
        /// Frequency for unlisted kernels; `None` means device default.
        fallback: Option<f64>,
    },
}

impl FrequencyPolicy {
    /// Builds a per-kernel policy from `(name, mhz)` pairs with a fallback.
    pub fn per_kernel<I, S>(assignments: I, fallback: Option<f64>) -> Self
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        FrequencyPolicy::PerKernel {
            table: assignments
                .into_iter()
                .map(|(k, v)| (k.into(), v))
                .collect(),
            fallback,
        }
    }

    /// The frequency this policy assigns to `kernel_name`; `None` means the
    /// device default configuration.
    pub fn frequency_for(&self, kernel_name: &str) -> Option<f64> {
        match self {
            FrequencyPolicy::DeviceDefault => None,
            FrequencyPolicy::Fixed(f) => Some(*f),
            FrequencyPolicy::PerKernel { table, fallback } => {
                table.get(kernel_name).copied().or(*fallback)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_defers_to_device() {
        assert_eq!(FrequencyPolicy::default().frequency_for("x"), None);
    }

    #[test]
    fn fixed_policy_applies_everywhere() {
        let p = FrequencyPolicy::Fixed(900.0);
        assert_eq!(p.frequency_for("a"), Some(900.0));
        assert_eq!(p.frequency_for("b"), Some(900.0));
    }

    #[test]
    fn per_kernel_lookup_with_fallback() {
        let p = FrequencyPolicy::per_kernel([("stencil", 800.0), ("reduce", 600.0)], Some(1000.0));
        assert_eq!(p.frequency_for("stencil"), Some(800.0));
        assert_eq!(p.frequency_for("reduce"), Some(600.0));
        assert_eq!(p.frequency_for("unknown"), Some(1000.0));
    }

    #[test]
    fn per_kernel_without_fallback_uses_default() {
        let p = FrequencyPolicy::per_kernel([("stencil", 800.0)], None);
        assert_eq!(p.frequency_for("unknown"), None);
    }
}
