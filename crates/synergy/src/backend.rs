//! Vendor backend dispatch.
//!
//! SYnergy hides NVML / ROCm-SMI / Level Zero behind one interface; this
//! module does the same over the simulated vendor layers. The essential
//! vendor asymmetry the paper leans on is preserved: NVIDIA devices have a
//! *fixed default clock* while AMD devices default to an *auto* governor, so
//! [`Backend::default_config`] returns a [`DefaultConfig`] rather than a
//! number.

use gpu_sim::device::LaunchRecord;
use gpu_sim::faults::FaultError;
use gpu_sim::kernel::KernelProfile;
use gpu_sim::level_zero::{ZeDevice, ZeError};
use gpu_sim::link::TransferRecord;
use gpu_sim::nvml::{NvmlDevice, NvmlError};
use gpu_sim::rocm::{PerfLevel, RocmDevice, RsmiError};
use gpu_sim::Vendor;

/// What "default frequency configuration" means on this device — the
/// baseline every speedup/normalized-energy figure in the paper divides by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DefaultConfig {
    /// A fixed default core clock in MHz (NVIDIA application clocks).
    FixedMhz(f64),
    /// The vendor's automatic DVFS governor (AMD performance level "auto").
    Auto,
}

/// A vendor-neutral management/execution error — the common shape of
/// `NVML_ERROR_*`, `RSMI_STATUS_*`, and `ZE_RESULT_ERROR_*` codes that the
/// retry machinery in [`crate::queue`] handles uniformly.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The driver refused a clock change; the previous clock is still
    /// active (NVML `NO_PERMISSION`, ROCm-SMI `BUSY`, L0 `NOT_AVAILABLE`).
    FrequencyRejected {
        /// The clock that was requested (MHz).
        requested_mhz: f64,
    },
    /// A transient device failure dropped the launch before it executed
    /// (NVML `GPU_IS_LOST`, ROCm-SMI `UNKNOWN_ERROR`, L0 `DEVICE_LOST`).
    LaunchFailed {
        /// Name of the kernel that failed to launch.
        kernel: String,
    },
    /// The peer-to-peer interconnect dropped mid-transfer (NVLink fatal
    /// error / xGMI retrain failure). Not retryable: the link stays down,
    /// so distributed drivers must shrink the gang instead.
    LinkLost,
    /// Any other vendor-layer management error (invalid index/clock, …) —
    /// not retryable.
    Management(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::FrequencyRejected { requested_mhz } => {
                write!(f, "clock request {requested_mhz} MHz rejected")
            }
            BackendError::LaunchFailed { kernel } => {
                write!(f, "transient failure launching '{kernel}'")
            }
            BackendError::LinkLost => write!(f, "interconnect link lost"),
            BackendError::Management(msg) => write!(f, "management error: {msg}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl BackendError {
    /// Whether retrying the same operation can plausibly succeed.
    pub fn is_transient(&self) -> bool {
        !matches!(self, BackendError::Management(_) | BackendError::LinkLost)
    }
}

impl From<FaultError> for BackendError {
    fn from(e: FaultError) -> Self {
        match e {
            FaultError::FrequencyRejected { requested_mhz } => {
                BackendError::FrequencyRejected { requested_mhz }
            }
            FaultError::LaunchFailed { kernel } => BackendError::LaunchFailed { kernel },
            FaultError::LinkLost => BackendError::LinkLost,
        }
    }
}

impl From<NvmlError> for BackendError {
    fn from(e: NvmlError) -> Self {
        match e {
            NvmlError::NoPermission { requested_mhz } => {
                BackendError::FrequencyRejected { requested_mhz }
            }
            NvmlError::GpuLost(kernel) => BackendError::LaunchFailed { kernel },
            NvmlError::LinkLost => BackendError::LinkLost,
            other => BackendError::Management(other.to_string()),
        }
    }
}

impl From<RsmiError> for BackendError {
    fn from(e: RsmiError) -> Self {
        match e {
            RsmiError::Busy { requested_mhz } => BackendError::FrequencyRejected { requested_mhz },
            RsmiError::UnknownError(kernel) => BackendError::LaunchFailed { kernel },
            RsmiError::LinkLost => BackendError::LinkLost,
            other => BackendError::Management(other.to_string()),
        }
    }
}

impl From<ZeError> for BackendError {
    fn from(e: ZeError) -> Self {
        match e {
            ZeError::NotAvailable { requested_mhz } => {
                BackendError::FrequencyRejected { requested_mhz }
            }
            ZeError::DeviceLost(kernel) => BackendError::LaunchFailed { kernel },
            ZeError::LinkLost => BackendError::LinkLost,
            other => BackendError::Management(other.to_string()),
        }
    }
}

/// A vendor-specific management + execution backend.
pub trait Backend: Send {
    /// Device marketing name.
    fn device_name(&self) -> String;
    /// Device vendor.
    fn vendor(&self) -> Vendor;
    /// All core frequencies the device supports, ascending (MHz).
    fn supported_core_frequencies(&self) -> Vec<f64>;
    /// The device's default configuration.
    fn default_config(&self) -> DefaultConfig;
    /// Cumulative device energy counter (J). This is the *raw* counter — it
    /// can rewind when the device resets it; [`crate::metrics`] has the
    /// wrap-healing accumulator.
    fn energy_counter_j(&self) -> f64;
    /// Runs a kernel at `freq`; `None` means the default configuration
    /// (fixed default clock or auto governor, per vendor). A
    /// [`BackendError::FrequencyRejected`] or [`BackendError::LaunchFailed`]
    /// leaves every device counter untouched (the launch never ran).
    fn launch(
        &mut self,
        kernel: &KernelProfile,
        freq_mhz: Option<f64>,
    ) -> Result<LaunchRecord, BackendError>;
    /// Applies a clock configuration without launching anything; `None`
    /// restores the vendor default. Returns the effective clock (MHz).
    fn set_frequency(&mut self, freq_mhz: Option<f64>) -> Result<f64, BackendError>;
    /// All memory frequencies the device supports, ascending (MHz). A
    /// backend without a controllable memory domain reports an empty list —
    /// lattice sweeps then collapse to the core axis.
    fn supported_memory_frequencies(&self) -> Vec<f64> {
        Vec::new()
    }
    /// Applies a memory clock; `None` restores the vendor default (the top
    /// supported memory clock). Returns the effective memory clock (MHz).
    /// Like [`Backend::set_frequency`] this is a management request the
    /// driver may reject, leaving the previous memory clock active.
    fn set_memory_frequency(&mut self, mem_mhz: Option<f64>) -> Result<f64, BackendError> {
        let _ = mem_mhz;
        Err(BackendError::Management(
            "memory clock control not supported".into(),
        ))
    }
    /// Sets (or clears, with `None`) the operator power cap in watts.
    /// Returns the cap actually applied. A binding cap throttles the
    /// effective core clock — it never discounts energy for free.
    fn set_power_cap(&mut self, cap_w: Option<f64>) -> Result<Option<f64>, BackendError> {
        let _ = cap_w;
        Err(BackendError::Management(
            "power cap control not supported".into(),
        ))
    }
    /// The operator power cap currently in force, if any.
    fn power_cap(&self) -> Option<f64> {
        None
    }
    /// Lets device time pass without work — the retry machinery charges its
    /// backoff waits here so they show up as idle energy, like a real pause
    /// between NVML calls would.
    fn idle_wait(&mut self, _dt_s: f64) {}

    /// Moves `bytes` over the device's peer-to-peer interconnect port
    /// (halo exchange of a domain-decomposed solver). Time and energy are
    /// charged to this device's counters through its memory-power path. A
    /// backend without an interconnect reports a non-transient
    /// [`BackendError::Management`]; a dropped link is the non-transient
    /// [`BackendError::LinkLost`].
    fn transfer(&mut self, bytes: u64) -> Result<TransferRecord, BackendError> {
        let _ = bytes;
        Err(BackendError::Management(
            "interconnect transfers not supported".into(),
        ))
    }

    /// Runs `n` back-to-back launches of `kernel` at `freq` (`None` = the
    /// vendor default configuration), reporting each launch's
    /// `(time_s, energy_j)` to `sink` in submission order. Returns the
    /// number of launches whose clock was throttled below the request. On
    /// error, `sink` has seen every launch that completed before the fault.
    ///
    /// The default implementation just loops [`Backend::launch`]. The
    /// vendor backends override it to resolve the effective clock once and
    /// delegate to [`gpu_sim::Device::launch_batch`] under a single device
    /// lock, which prices the kernel once for the whole batch; the
    /// observable measurements are bit-identical to `n` separate `launch`
    /// calls either way.
    fn launch_batch(
        &mut self,
        kernel: &KernelProfile,
        freq_mhz: Option<f64>,
        n: u64,
        sink: &mut dyn FnMut(f64, f64),
    ) -> Result<u64, BackendError> {
        let mut throttled = 0;
        for _ in 0..n {
            let rec = self.launch(kernel, freq_mhz)?;
            throttled += u64::from(rec.fault_throttled);
            sink(rec.time_s, rec.energy_j);
        }
        Ok(throttled)
    }
}

/// NVML-backed (NVIDIA) implementation.
#[derive(Debug, Clone)]
pub struct NvmlBackend {
    device: NvmlDevice,
}

impl NvmlBackend {
    /// Wraps an NVML device handle.
    pub fn new(device: NvmlDevice) -> Self {
        NvmlBackend { device }
    }
}

impl Backend for NvmlBackend {
    fn device_name(&self) -> String {
        self.device.name()
    }

    fn vendor(&self) -> Vendor {
        Vendor::Nvidia
    }

    fn supported_core_frequencies(&self) -> Vec<f64> {
        // The mem table is ascending; the graphics-clock query wants any
        // supported memory clock, so use the top (default) one.
        let mem = *self
            .device
            .supported_memory_clocks()
            .last()
            .expect("non-empty memory clock table");
        self.device
            .supported_graphics_clocks(mem)
            .expect("own memory clock is supported")
    }

    fn default_config(&self) -> DefaultConfig {
        let shared = self.device.shared();
        let mhz = shared.lock().spec().default_core_mhz;
        DefaultConfig::FixedMhz(mhz)
    }

    fn energy_counter_j(&self) -> f64 {
        self.device.total_energy_consumption_mj() as f64 * 1e-3
    }

    fn launch(
        &mut self,
        kernel: &KernelProfile,
        freq_mhz: Option<f64>,
    ) -> Result<LaunchRecord, BackendError> {
        let shared = self.device.shared();
        let mut dev = shared.lock();
        let f = freq_mhz.unwrap_or(dev.spec().default_core_mhz);
        dev.launch_at(kernel, f).map_err(BackendError::from)
    }

    fn set_frequency(&mut self, freq_mhz: Option<f64>) -> Result<f64, BackendError> {
        match freq_mhz {
            Some(f) => {
                // Keep the memory clock where it is: applications clocks
                // set both domains, and a mem-clock change here would
                // clobber a lattice point's memory setting (the idempotent
                // mem request consumes no management op).
                let mem = self.device.clock_info_memory();
                let (_, c) = self.device.set_applications_clocks(mem, f)?;
                Ok(c)
            }
            None => {
                self.device.reset_applications_clocks();
                Ok(self.device.clock_info_graphics())
            }
        }
    }

    fn supported_memory_frequencies(&self) -> Vec<f64> {
        self.device.supported_memory_clocks()
    }

    fn set_memory_frequency(&mut self, mem_mhz: Option<f64>) -> Result<f64, BackendError> {
        let target = mem_mhz.unwrap_or_else(|| {
            *self
                .device
                .supported_memory_clocks()
                .last()
                .expect("non-empty memory clock table")
        });
        let shared = self.device.shared();
        let mut dev = shared.lock();
        dev.set_mem_mhz(target).map_err(BackendError::from)
    }

    fn set_power_cap(&mut self, cap_w: Option<f64>) -> Result<Option<f64>, BackendError> {
        self.device
            .set_power_management_limit_w(cap_w)
            .map_err(BackendError::from)
    }

    fn power_cap(&self) -> Option<f64> {
        self.device.power_management_limit_w()
    }

    fn idle_wait(&mut self, dt_s: f64) {
        self.device.lock_device().idle_advance(dt_s);
    }

    fn transfer(&mut self, bytes: u64) -> Result<TransferRecord, BackendError> {
        self.device
            .lock_device()
            .transfer(bytes)
            .map_err(BackendError::from)
    }

    fn launch_batch(
        &mut self,
        kernel: &KernelProfile,
        freq_mhz: Option<f64>,
        n: u64,
        sink: &mut dyn FnMut(f64, f64),
    ) -> Result<u64, BackendError> {
        let mut dev = self.device.lock_device();
        // NVIDIA's default configuration is the fixed application clock.
        let f = freq_mhz.unwrap_or(dev.spec().default_core_mhz);
        dev.launch_batch(kernel, f, n, sink)
            .map_err(BackendError::from)
    }
}

/// ROCm-SMI-backed (AMD) implementation.
#[derive(Debug, Clone)]
pub struct RocmBackend {
    device: RocmDevice,
}

impl RocmBackend {
    /// Wraps a ROCm-SMI device handle.
    pub fn new(device: RocmDevice) -> Self {
        RocmBackend { device }
    }
}

impl Backend for RocmBackend {
    fn device_name(&self) -> String {
        self.device.name()
    }

    fn vendor(&self) -> Vendor {
        Vendor::Amd
    }

    fn supported_core_frequencies(&self) -> Vec<f64> {
        self.device.supported_core_clocks()
    }

    fn default_config(&self) -> DefaultConfig {
        DefaultConfig::Auto
    }

    fn energy_counter_j(&self) -> f64 {
        self.device.energy_count_uj() as f64 * 1e-6
    }

    fn launch(
        &mut self,
        kernel: &KernelProfile,
        freq_mhz: Option<f64>,
    ) -> Result<LaunchRecord, BackendError> {
        match freq_mhz {
            Some(f) => {
                let shared = self.device.shared();
                let mut dev = shared.lock();
                dev.launch_at(kernel, f).map_err(BackendError::from)
            }
            // Default on AMD = the auto governor decides.
            None => self.device.launch(kernel).map_err(BackendError::from),
        }
    }

    fn set_frequency(&mut self, freq_mhz: Option<f64>) -> Result<f64, BackendError> {
        match freq_mhz {
            Some(f) => Ok(self.device.set_clk_freq(f)?),
            None => {
                self.device.set_perf_level(PerfLevel::Auto)?;
                Ok(self.device.current_clk_freq())
            }
        }
    }

    fn supported_memory_frequencies(&self) -> Vec<f64> {
        self.device.supported_mem_clocks()
    }

    fn set_memory_frequency(&mut self, mem_mhz: Option<f64>) -> Result<f64, BackendError> {
        let target = mem_mhz.unwrap_or_else(|| {
            *self
                .device
                .supported_mem_clocks()
                .last()
                .expect("non-empty memory clock table")
        });
        Ok(self.device.set_mem_clk_freq(target)?)
    }

    fn set_power_cap(&mut self, cap_w: Option<f64>) -> Result<Option<f64>, BackendError> {
        Ok(self.device.set_power_cap_w(cap_w)?)
    }

    fn power_cap(&self) -> Option<f64> {
        self.device.power_cap_w()
    }

    fn idle_wait(&mut self, dt_s: f64) {
        self.device.lock_device().idle_advance(dt_s);
    }

    fn transfer(&mut self, bytes: u64) -> Result<TransferRecord, BackendError> {
        self.device
            .lock_device()
            .transfer(bytes)
            .map_err(BackendError::from)
    }

    fn launch_batch(
        &mut self,
        kernel: &KernelProfile,
        freq_mhz: Option<f64>,
        n: u64,
        sink: &mut dyn FnMut(f64, f64),
    ) -> Result<u64, BackendError> {
        // `current_clk_freq` resolves the active performance level exactly
        // like `RocmDevice::launch` does (auto governor → default clock,
        // pinned levels → the pinned clock).
        let f = freq_mhz.unwrap_or_else(|| self.device.current_clk_freq());
        let mut dev = self.device.lock_device();
        dev.launch_batch(kernel, f, n, sink)
            .map_err(BackendError::from)
    }
}

/// Level-Zero-backed (Intel) implementation.
#[derive(Debug, Clone)]
pub struct LevelZeroBackend {
    device: ZeDevice,
}

impl LevelZeroBackend {
    /// Wraps a Level Zero sysman handle.
    pub fn new(device: ZeDevice) -> Self {
        LevelZeroBackend { device }
    }
}

impl Backend for LevelZeroBackend {
    fn device_name(&self) -> String {
        self.device.name()
    }

    fn vendor(&self) -> Vendor {
        Vendor::Intel
    }

    fn supported_core_frequencies(&self) -> Vec<f64> {
        self.device.available_clocks()
    }

    fn default_config(&self) -> DefaultConfig {
        // Intel, like AMD, defaults to a governor (full frequency range).
        DefaultConfig::Auto
    }

    fn energy_counter_j(&self) -> f64 {
        self.device.energy_counter_uj() as f64 * 1e-6
    }

    fn launch(
        &mut self,
        kernel: &KernelProfile,
        freq_mhz: Option<f64>,
    ) -> Result<LaunchRecord, BackendError> {
        match freq_mhz {
            // Per-kernel pinning = collapse the range around the request.
            Some(f) => {
                let shared = self.device.shared();
                let mut dev = shared.lock();
                dev.launch_at(kernel, f).map_err(BackendError::from)
            }
            None => self.device.launch(kernel).map_err(BackendError::from),
        }
    }

    fn set_frequency(&mut self, freq_mhz: Option<f64>) -> Result<f64, BackendError> {
        match freq_mhz {
            Some(f) => {
                let (lo, _) = self.device.set_frequency_range(f, f)?;
                Ok(lo)
            }
            None => {
                self.device.reset_frequency_range();
                Ok(self.device.governor_frequency())
            }
        }
    }

    fn supported_memory_frequencies(&self) -> Vec<f64> {
        self.device.available_memory_clocks()
    }

    fn set_memory_frequency(&mut self, mem_mhz: Option<f64>) -> Result<f64, BackendError> {
        let target = mem_mhz.unwrap_or_else(|| {
            *self
                .device
                .available_memory_clocks()
                .last()
                .expect("non-empty memory clock table")
        });
        Ok(self.device.set_memory_frequency(target)?)
    }

    fn set_power_cap(&mut self, cap_w: Option<f64>) -> Result<Option<f64>, BackendError> {
        Ok(self.device.set_power_limit_w(cap_w)?)
    }

    fn power_cap(&self) -> Option<f64> {
        self.device.power_limit_w()
    }

    fn idle_wait(&mut self, dt_s: f64) {
        self.device.lock_device().idle_advance(dt_s);
    }

    fn transfer(&mut self, bytes: u64) -> Result<TransferRecord, BackendError> {
        self.device
            .lock_device()
            .transfer(bytes)
            .map_err(BackendError::from)
    }

    fn launch_batch(
        &mut self,
        kernel: &KernelProfile,
        freq_mhz: Option<f64>,
        n: u64,
        sink: &mut dyn FnMut(f64, f64),
    ) -> Result<u64, BackendError> {
        // The sysman governor runs the clock the range midpoint allows —
        // the same resolution `ZeDevice::launch` applies per launch.
        let f = freq_mhz.unwrap_or_else(|| self.device.governor_frequency());
        let mut dev = self.device.lock_device();
        dev.launch_batch(kernel, f, n, sink)
            .map_err(BackendError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, DeviceSpec};

    #[test]
    fn nvml_backend_reports_fixed_default() {
        let b = NvmlBackend::new(NvmlDevice::v100());
        assert_eq!(b.vendor(), Vendor::Nvidia);
        match b.default_config() {
            DefaultConfig::FixedMhz(f) => assert!((f - 1312.1).abs() < 1.0),
            other => panic!("expected fixed default, got {other:?}"),
        }
        assert_eq!(b.supported_core_frequencies().len(), 196);
    }

    #[test]
    fn rocm_backend_reports_auto_default() {
        let b = RocmBackend::new(RocmDevice::mi100());
        assert_eq!(b.vendor(), Vendor::Amd);
        assert_eq!(b.default_config(), DefaultConfig::Auto);
    }

    #[test]
    fn level_zero_backend_reports_auto_default() {
        let b = LevelZeroBackend::new(ZeDevice::max1100());
        assert_eq!(b.vendor(), Vendor::Intel);
        assert_eq!(b.default_config(), DefaultConfig::Auto);
        assert_eq!(b.supported_core_frequencies().len(), 26);
    }

    #[test]
    fn level_zero_launch_paths() {
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let mut b = LevelZeroBackend::new(ZeDevice::max1100());
        assert_eq!(b.launch(&k, None).unwrap().core_mhz, 1450.0);
        let rec = b.launch(&k, Some(600.0)).unwrap();
        assert!((rec.core_mhz - 600.0).abs() < 30.0);
    }

    #[test]
    fn launch_with_explicit_frequency_uses_it() {
        let mut b = NvmlBackend::new(NvmlDevice::v100());
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let rec = b.launch(&k, Some(500.0)).unwrap();
        assert!((rec.core_mhz - 500.0).abs() < 10.0);
    }

    #[test]
    fn launch_default_uses_vendor_baseline() {
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let mut nv = NvmlBackend::new(NvmlDevice::v100());
        assert!((nv.launch(&k, None).unwrap().core_mhz - 1312.1).abs() < 1.0);
        let mut amd = RocmBackend::new(RocmDevice::mi100());
        assert_eq!(amd.launch(&k, None).unwrap().core_mhz, 1450.0);
    }

    #[test]
    fn energy_counter_advances() {
        let mut b = RocmBackend::new(RocmDevice::mi100());
        let before = b.energy_counter_j();
        let k = KernelProfile::memory_bound("k", 5_000_000, 32.0);
        b.launch(&k, None).unwrap();
        assert!(b.energy_counter_j() > before);
    }

    #[test]
    fn lattice_actuators_round_trip_on_every_vendor() {
        let mut backends: Vec<Box<dyn Backend>> = vec![
            Box::new(NvmlBackend::new(NvmlDevice::v100())),
            Box::new(RocmBackend::new(RocmDevice::mi100())),
            Box::new(LevelZeroBackend::new(ZeDevice::max1100())),
        ];
        for b in &mut backends {
            let mems = b.supported_memory_frequencies();
            assert!(
                mems.len() >= 3,
                "{} must expose a real memory-clock axis",
                b.device_name()
            );
            assert!(mems.windows(2).all(|w| w[0] < w[1]), "ascending table");
            let lo = mems[0];
            assert_eq!(b.set_memory_frequency(Some(lo)).unwrap(), lo);
            assert_eq!(
                b.set_memory_frequency(None).unwrap(),
                *mems.last().unwrap(),
                "None restores the top (default) memory clock"
            );
            assert_eq!(b.set_power_cap(Some(200.0)).unwrap(), Some(200.0));
            assert_eq!(b.power_cap(), Some(200.0));
            assert_eq!(b.set_power_cap(None).unwrap(), None);
            assert_eq!(b.power_cap(), None);
        }
    }

    #[test]
    fn nvml_core_set_preserves_memory_clock() {
        let mut b = NvmlBackend::new(NvmlDevice::v100());
        b.set_memory_frequency(Some(810.0)).unwrap();
        b.set_frequency(Some(900.0)).unwrap();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let rec = b.launch(&k, None).unwrap();
        assert_eq!(
            rec.mem_mhz, 810.0,
            "core-set path must not clobber mem clock"
        );
    }

    #[test]
    fn backends_are_object_safe() {
        let dev = Device::new(DeviceSpec::v100());
        let nvml = gpu_sim::nvml::Nvml::init(vec![dev]);
        let handle = nvml.device_by_index(0).unwrap();
        let boxed: Box<dyn Backend> = Box::new(NvmlBackend::new(handle));
        assert_eq!(boxed.device_name(), "NVIDIA V100");
    }
}
