//! Vendor backend dispatch.
//!
//! SYnergy hides NVML / ROCm-SMI / Level Zero behind one interface; this
//! module does the same over the simulated vendor layers. The essential
//! vendor asymmetry the paper leans on is preserved: NVIDIA devices have a
//! *fixed default clock* while AMD devices default to an *auto* governor, so
//! [`Backend::default_config`] returns a [`DefaultConfig`] rather than a
//! number.

use gpu_sim::device::LaunchRecord;
use gpu_sim::kernel::KernelProfile;
use gpu_sim::level_zero::ZeDevice;
use gpu_sim::nvml::NvmlDevice;
use gpu_sim::rocm::RocmDevice;
use gpu_sim::Vendor;

/// What "default frequency configuration" means on this device — the
/// baseline every speedup/normalized-energy figure in the paper divides by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DefaultConfig {
    /// A fixed default core clock in MHz (NVIDIA application clocks).
    FixedMhz(f64),
    /// The vendor's automatic DVFS governor (AMD performance level "auto").
    Auto,
}

/// A vendor-specific management + execution backend.
pub trait Backend: Send {
    /// Device marketing name.
    fn device_name(&self) -> String;
    /// Device vendor.
    fn vendor(&self) -> Vendor;
    /// All core frequencies the device supports, ascending (MHz).
    fn supported_core_frequencies(&self) -> Vec<f64>;
    /// The device's default configuration.
    fn default_config(&self) -> DefaultConfig;
    /// Cumulative device energy counter (J).
    fn energy_counter_j(&self) -> f64;
    /// Runs a kernel at `freq`; `None` means the default configuration
    /// (fixed default clock or auto governor, per vendor).
    fn launch(&mut self, kernel: &KernelProfile, freq_mhz: Option<f64>) -> LaunchRecord;

    /// Runs `n` back-to-back launches of `kernel` at `freq` (`None` = the
    /// vendor default configuration), reporting each launch's
    /// `(time_s, energy_j)` to `sink` in submission order.
    ///
    /// The default implementation just loops [`Backend::launch`]. The
    /// vendor backends override it to resolve the effective clock once and
    /// delegate to [`gpu_sim::Device::launch_batch`] under a single device
    /// lock, which prices the kernel once for the whole batch; the
    /// observable measurements are bit-identical to `n` separate `launch`
    /// calls either way.
    fn launch_batch(
        &mut self,
        kernel: &KernelProfile,
        freq_mhz: Option<f64>,
        n: u64,
        sink: &mut dyn FnMut(f64, f64),
    ) {
        for _ in 0..n {
            let rec = self.launch(kernel, freq_mhz);
            sink(rec.time_s, rec.energy_j);
        }
    }
}

/// NVML-backed (NVIDIA) implementation.
#[derive(Debug, Clone)]
pub struct NvmlBackend {
    device: NvmlDevice,
}

impl NvmlBackend {
    /// Wraps an NVML device handle.
    pub fn new(device: NvmlDevice) -> Self {
        NvmlBackend { device }
    }
}

impl Backend for NvmlBackend {
    fn device_name(&self) -> String {
        self.device.name()
    }

    fn vendor(&self) -> Vendor {
        Vendor::Nvidia
    }

    fn supported_core_frequencies(&self) -> Vec<f64> {
        let mem = self.device.supported_memory_clocks()[0];
        self.device
            .supported_graphics_clocks(mem)
            .expect("own memory clock is supported")
    }

    fn default_config(&self) -> DefaultConfig {
        let shared = self.device.shared();
        let mhz = shared.lock().spec().default_core_mhz;
        DefaultConfig::FixedMhz(mhz)
    }

    fn energy_counter_j(&self) -> f64 {
        self.device.total_energy_consumption_mj() as f64 * 1e-3
    }

    fn launch(&mut self, kernel: &KernelProfile, freq_mhz: Option<f64>) -> LaunchRecord {
        let shared = self.device.shared();
        let mut dev = shared.lock();
        match freq_mhz {
            Some(f) => dev.launch_at(kernel, f),
            None => {
                let f = dev.spec().default_core_mhz;
                dev.launch_at(kernel, f)
            }
        }
    }

    fn launch_batch(
        &mut self,
        kernel: &KernelProfile,
        freq_mhz: Option<f64>,
        n: u64,
        sink: &mut dyn FnMut(f64, f64),
    ) {
        let mut dev = self.device.lock_device();
        // NVIDIA's default configuration is the fixed application clock.
        let f = freq_mhz.unwrap_or(dev.spec().default_core_mhz);
        dev.launch_batch(kernel, f, n, sink);
    }
}

/// ROCm-SMI-backed (AMD) implementation.
#[derive(Debug, Clone)]
pub struct RocmBackend {
    device: RocmDevice,
}

impl RocmBackend {
    /// Wraps a ROCm-SMI device handle.
    pub fn new(device: RocmDevice) -> Self {
        RocmBackend { device }
    }
}

impl Backend for RocmBackend {
    fn device_name(&self) -> String {
        self.device.name()
    }

    fn vendor(&self) -> Vendor {
        Vendor::Amd
    }

    fn supported_core_frequencies(&self) -> Vec<f64> {
        self.device.supported_core_clocks()
    }

    fn default_config(&self) -> DefaultConfig {
        DefaultConfig::Auto
    }

    fn energy_counter_j(&self) -> f64 {
        self.device.energy_count_uj() as f64 * 1e-6
    }

    fn launch(&mut self, kernel: &KernelProfile, freq_mhz: Option<f64>) -> LaunchRecord {
        match freq_mhz {
            Some(f) => {
                let shared = self.device.shared();
                let mut dev = shared.lock();
                dev.launch_at(kernel, f)
            }
            // Default on AMD = the auto governor decides.
            None => self.device.launch(kernel),
        }
    }

    fn launch_batch(
        &mut self,
        kernel: &KernelProfile,
        freq_mhz: Option<f64>,
        n: u64,
        sink: &mut dyn FnMut(f64, f64),
    ) {
        // `current_clk_freq` resolves the active performance level exactly
        // like `RocmDevice::launch` does (auto governor → default clock,
        // pinned levels → the pinned clock).
        let f = freq_mhz.unwrap_or_else(|| self.device.current_clk_freq());
        let mut dev = self.device.lock_device();
        dev.launch_batch(kernel, f, n, sink);
    }
}

/// Level-Zero-backed (Intel) implementation.
#[derive(Debug, Clone)]
pub struct LevelZeroBackend {
    device: ZeDevice,
}

impl LevelZeroBackend {
    /// Wraps a Level Zero sysman handle.
    pub fn new(device: ZeDevice) -> Self {
        LevelZeroBackend { device }
    }
}

impl Backend for LevelZeroBackend {
    fn device_name(&self) -> String {
        self.device.name()
    }

    fn vendor(&self) -> Vendor {
        Vendor::Intel
    }

    fn supported_core_frequencies(&self) -> Vec<f64> {
        self.device.available_clocks()
    }

    fn default_config(&self) -> DefaultConfig {
        // Intel, like AMD, defaults to a governor (full frequency range).
        DefaultConfig::Auto
    }

    fn energy_counter_j(&self) -> f64 {
        self.device.energy_counter_uj() as f64 * 1e-6
    }

    fn launch(&mut self, kernel: &KernelProfile, freq_mhz: Option<f64>) -> LaunchRecord {
        match freq_mhz {
            // Per-kernel pinning = collapse the range around the request.
            Some(f) => {
                let shared = self.device.shared();
                let mut dev = shared.lock();
                dev.launch_at(kernel, f)
            }
            None => self.device.launch(kernel),
        }
    }

    fn launch_batch(
        &mut self,
        kernel: &KernelProfile,
        freq_mhz: Option<f64>,
        n: u64,
        sink: &mut dyn FnMut(f64, f64),
    ) {
        // The sysman governor runs the clock the range midpoint allows —
        // the same resolution `ZeDevice::launch` applies per launch.
        let f = freq_mhz.unwrap_or_else(|| self.device.governor_frequency());
        let mut dev = self.device.lock_device();
        dev.launch_batch(kernel, f, n, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, DeviceSpec};

    #[test]
    fn nvml_backend_reports_fixed_default() {
        let b = NvmlBackend::new(NvmlDevice::v100());
        assert_eq!(b.vendor(), Vendor::Nvidia);
        match b.default_config() {
            DefaultConfig::FixedMhz(f) => assert!((f - 1312.1).abs() < 1.0),
            other => panic!("expected fixed default, got {other:?}"),
        }
        assert_eq!(b.supported_core_frequencies().len(), 196);
    }

    #[test]
    fn rocm_backend_reports_auto_default() {
        let b = RocmBackend::new(RocmDevice::mi100());
        assert_eq!(b.vendor(), Vendor::Amd);
        assert_eq!(b.default_config(), DefaultConfig::Auto);
    }

    #[test]
    fn level_zero_backend_reports_auto_default() {
        let b = LevelZeroBackend::new(ZeDevice::max1100());
        assert_eq!(b.vendor(), Vendor::Intel);
        assert_eq!(b.default_config(), DefaultConfig::Auto);
        assert_eq!(b.supported_core_frequencies().len(), 26);
    }

    #[test]
    fn level_zero_launch_paths() {
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let mut b = LevelZeroBackend::new(ZeDevice::max1100());
        assert_eq!(b.launch(&k, None).core_mhz, 1450.0);
        let rec = b.launch(&k, Some(600.0));
        assert!((rec.core_mhz - 600.0).abs() < 30.0);
    }

    #[test]
    fn launch_with_explicit_frequency_uses_it() {
        let mut b = NvmlBackend::new(NvmlDevice::v100());
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let rec = b.launch(&k, Some(500.0));
        assert!((rec.core_mhz - 500.0).abs() < 10.0);
    }

    #[test]
    fn launch_default_uses_vendor_baseline() {
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let mut nv = NvmlBackend::new(NvmlDevice::v100());
        assert!((nv.launch(&k, None).core_mhz - 1312.1).abs() < 1.0);
        let mut amd = RocmBackend::new(RocmDevice::mi100());
        assert_eq!(amd.launch(&k, None).core_mhz, 1450.0);
    }

    #[test]
    fn energy_counter_advances() {
        let mut b = RocmBackend::new(RocmDevice::mi100());
        let before = b.energy_counter_j();
        let k = KernelProfile::memory_bound("k", 5_000_000, 32.0);
        b.launch(&k, None);
        assert!(b.energy_counter_j() > before);
    }

    #[test]
    fn backends_are_object_safe() {
        let dev = Device::new(DeviceSpec::v100());
        let nvml = gpu_sim::nvml::Nvml::init(vec![dev]);
        let handle = nvml.device_by_index(0).unwrap();
        let boxed: Box<dyn Backend> = Box::new(NvmlBackend::new(handle));
        assert_eq!(boxed.device_name(), "NVIDIA V100");
    }
}
