//! Property tests of the degradation machinery: wrap-healing must be
//! monotone for *any* counter behaviour, and the retry loop must terminate
//! within its advertised bound for *any* policy and failure pattern.

use gpu_sim::device::LaunchRecord;
use gpu_sim::kernel::KernelProfile;
use gpu_sim::{Device, DeviceSpec, FaultPlan, Schedule, ThrottleWindow, Vendor};
use proptest::prelude::*;
use synergy::backend::{Backend, BackendError, DefaultConfig};
use synergy::metrics::EnergyCounterHealer;
use synergy::queue::{RetryPolicy, SynergyQueue};

/// A backend whose launches always fail — the worst case the retry loop
/// can meet. Counts how many times it was called.
struct AlwaysFailing {
    calls: u64,
}

impl Backend for AlwaysFailing {
    fn device_name(&self) -> String {
        "always-failing".into()
    }
    fn vendor(&self) -> Vendor {
        Vendor::Nvidia
    }
    fn supported_core_frequencies(&self) -> Vec<f64> {
        vec![1000.0]
    }
    fn default_config(&self) -> DefaultConfig {
        DefaultConfig::FixedMhz(1000.0)
    }
    fn energy_counter_j(&self) -> f64 {
        0.0
    }
    fn launch(
        &mut self,
        kernel: &KernelProfile,
        _freq_mhz: Option<f64>,
    ) -> Result<LaunchRecord, BackendError> {
        self.calls += 1;
        Err(BackendError::LaunchFailed {
            kernel: kernel.name.clone(),
        })
    }
    fn set_frequency(&mut self, freq_mhz: Option<f64>) -> Result<f64, BackendError> {
        Ok(freq_mhz.unwrap_or(1000.0))
    }
}

/// One step of an arbitrary device history.
#[derive(Debug, Clone)]
enum Op {
    Launch { freq_index: usize },
    Idle { dt_s: f64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..195).prop_map(|freq_index| Op::Launch { freq_index }),
        (0.0..0.5f64).prop_map(|dt_s| Op::Idle { dt_s }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The healer's output never decreases, whatever the raw counter does.
    #[test]
    fn healer_is_monotone_for_any_raw_sequence(raws in proptest::collection::vec(0.0..1e6f64, 1..40)) {
        let mut h = EnergyCounterHealer::new();
        let mut prev = 0.0;
        for raw in raws {
            let healed = h.observe(raw);
            prop_assert!(healed >= prev, "healed {healed} < previous {prev}");
            prev = healed;
        }
    }

    /// The healed counter of a faulty device stays monotone non-decreasing
    /// across arbitrary launch/idle/fault sequences — counter resets,
    /// throttling, and dropped launches included.
    #[test]
    fn healed_device_counter_monotone_under_faults(
        seed in 0u64..5_000,
        reset_p in 0.0..0.5f64,
        fail_p in 0.0..0.3f64,
        ops in proptest::collection::vec(arb_op(), 1..30),
    ) {
        let plan = FaultPlan::seeded(seed)
            .reset_energy_counter(Schedule::Prob(reset_p))
            .fail_launches(Schedule::Prob(fail_p))
            .throttle(Schedule::Prob(0.2), ThrottleWindow { cap_mhz: 700.0, launches: 2 });
        let spec = DeviceSpec::v100();
        let fs: Vec<f64> = spec.core_freqs.as_slice().to_vec();
        let k = KernelProfile::compute_bound("prop", 1 << 18, 100.0);
        let mut dev = Device::with_faults(spec, plan);
        let mut h = EnergyCounterHealer::new();
        let mut prev = 0.0;
        for op in ops {
            match op {
                Op::Launch { freq_index } => {
                    // Dropped launches are part of the history under test.
                    let _ = dev.launch_at(&k, fs[freq_index]);
                }
                Op::Idle { dt_s } => dev.idle_advance(dt_s),
            }
            let healed = h.observe(dev.energy_counter_j());
            prop_assert!(healed >= prev, "healed counter went backwards: {healed} < {prev}");
            prev = healed;
        }
    }

    /// The queue-level healed counter is monotone across submissions even
    /// when the device keeps resetting its raw counter.
    #[test]
    fn queue_device_energy_monotone_under_resets(
        seed in 0u64..5_000,
        reset_p in 0.0..0.6f64,
        n in 1u64..20,
    ) {
        let plan = FaultPlan::seeded(seed).reset_energy_counter(Schedule::Prob(reset_p));
        let mut q = SynergyQueue::for_device(Device::with_faults(DeviceSpec::v100(), plan));
        let k = KernelProfile::compute_bound("prop", 1 << 18, 100.0);
        let mut prev = 0.0;
        for _ in 0..n {
            q.submit(&k);
            let healed = q.device_energy_j();
            prop_assert!(healed >= prev);
            prev = healed;
        }
    }

    /// Against a permanently failing backend, the retry loop always gives
    /// up within `max_attempts_per_launch` backend calls — it terminates,
    /// and the bound it reports is exact.
    #[test]
    fn retry_policy_terminates_within_bound(
        max_retries in 0u32..5,
        fallback_bit in 0u32..2,
        base in 0.0..1e-3f64,
        factor in 1.0..3.0f64,
        freq_bit in 0u32..2,
    ) {
        let policy = RetryPolicy {
            max_retries,
            backoff_base_s: base,
            backoff_factor: factor,
            fallback_to_default: fallback_bit == 1,
        };
        let mut q = SynergyQueue::new(Box::new(AlwaysFailing { calls: 0 }));
        q.set_retry_policy(policy);
        let k = KernelProfile::compute_bound("doomed", 1 << 10, 10.0);
        let freq = (freq_bit == 1).then_some(1000.0);
        let err = q.try_submit_at(&k, freq).expect_err("backend always fails");
        prop_assert!(err.attempts >= 1);
        prop_assert!(
            err.attempts <= policy.max_attempts_per_launch(),
            "{} attempts exceeds bound {}",
            err.attempts,
            policy.max_attempts_per_launch()
        );
        // The degradation log saw every failure.
        prop_assert_eq!(q.degradation().launch_failures, err.attempts as u64);
    }
}
