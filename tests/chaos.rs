//! Chaos suite: every fault class the simulator can inject, tested for
//! graceful degradation end to end.
//!
//! The fault classes ([`gpu_sim::FaultPlan`]) mirror the failure modes the
//! vendor management APIs exhibit on real machines:
//!
//! * **set-frequency rejection** — `NVML_ERROR_NO_PERMISSION`,
//!   `RSMI_STATUS_BUSY`: the call fails and the device keeps its previous
//!   clock. Healed by the queue's bounded retries, then by falling back to
//!   the default clock.
//! * **power/thermal throttling** — silent: the launch succeeds but runs
//!   below the requested clock, flagged in its [`LaunchRecord`].
//! * **energy-counter wrap/reset** — `rsmi_dev_energy_count_get` style
//!   counter rewinds. Healed into a monotone reading by the queue.
//! * **transient launch failure** — `NVML_ERROR_GPU_IS_LOST` and friends:
//!   the launch does nothing; retries ride it out or the submission is
//!   abandoned with a typed error inside a provable attempt bound.
//!
//! The final tests pin the other half of the contract: a fault-free plan
//! is *invisible* — bit-identical measurements, clean degradation
//! counters — and a faulty characterization sweep degrades gracefully
//! instead of poisoning its output.

use std::sync::Arc;

use cronos::Grid;
use energy_model::{characterize, characterize_with_options, SweepOptions};
use gpu_sim::nvml::NvmlDevice;
use gpu_sim::{Device, DeviceSpec, FaultPlan, KernelProfile, Schedule, ThrottleWindow};
use parking_lot::Mutex;
use synergy::backend::NvmlBackend;
use synergy::{BackendError, RetryPolicy, SynergyQueue};

fn kernel() -> KernelProfile {
    KernelProfile::compute_bound("chaos", 1 << 20, 200.0)
}

fn small_cronos() -> cronos::GpuCronos {
    cronos::GpuCronos::new(Grid::cubic(12, 6, 6), 3)
}

// ---- Fault class: set-frequency rejection ----

#[test]
fn one_rejection_is_healed_by_retry() {
    let plan = FaultPlan::none().reject_set_frequency(Schedule::once(0));
    let mut q = SynergyQueue::nvidia(Device::with_faults(DeviceSpec::v100(), plan));
    let k = kernel();

    let ev = q
        .try_submit_at(&k, Some(900.0))
        .expect("one rejection is within the default retry budget");
    assert!(
        (ev.core_mhz - 900.0).abs() < 15.0,
        "after the retry the requested clock must stick, got {} MHz",
        ev.core_mhz
    );
    assert!(!ev.throttled);

    let d = q.degradation();
    assert_eq!(d.frequency_rejections, 1);
    assert_eq!(d.retries, 1);
    assert_eq!(d.default_clock_fallbacks, 0);
    assert!(d.backoff_ns > 0, "the retry must have backed off");
}

#[test]
fn persistent_rejection_falls_back_to_default_clock() {
    let plan = FaultPlan::seeded(1).reject_set_frequency(Schedule::Prob(1.0));
    let spec = DeviceSpec::v100();
    let default_mhz = spec.default_core_mhz;
    let mut q = SynergyQueue::nvidia(Device::with_faults(spec, plan));
    let policy = RetryPolicy {
        max_retries: 2,
        ..RetryPolicy::default()
    };
    q.set_retry_policy(policy);

    let ev = q
        .try_submit_at(&kernel(), Some(900.0))
        .expect("fallback to the default clock must succeed");
    assert_eq!(
        ev.core_mhz, default_mhz,
        "degraded submission must land on the default clock"
    );

    let d = q.degradation();
    assert_eq!(
        d.frequency_rejections,
        u64::from(policy.max_retries) + 1,
        "every attempt at the requested clock was rejected"
    );
    assert_eq!(d.default_clock_fallbacks, 1);
}

#[test]
fn rejection_without_fallback_is_a_typed_error() {
    let plan = FaultPlan::seeded(2).reject_set_frequency(Schedule::Prob(1.0));
    let mut q = SynergyQueue::nvidia(Device::with_faults(DeviceSpec::v100(), plan));
    let policy = RetryPolicy {
        max_retries: 1,
        fallback_to_default: false,
        ..RetryPolicy::default()
    };
    q.set_retry_policy(policy);

    let err = q
        .try_submit_at(&kernel(), Some(900.0))
        .expect_err("no fallback, every attempt rejected");
    assert!(err.attempts <= policy.max_attempts_per_launch());
    assert!(matches!(
        err.last_error,
        BackendError::FrequencyRejected { .. }
    ));
}

// ---- Fault class: power/thermal throttling ----

#[test]
fn throttle_window_caps_launches_then_clears() {
    let plan = FaultPlan::none().throttle(
        Schedule::once(0),
        ThrottleWindow {
            cap_mhz: 700.0,
            launches: 3,
        },
    );
    let mut dev = Device::with_faults(DeviceSpec::v100(), plan);
    let k = kernel();

    for i in 0..6 {
        let rec = dev
            .launch_at(&k, 1300.0)
            .expect("throttling never fails a launch");
        if i < 3 {
            assert!(rec.throttled, "launch {i} is inside the throttle window");
            assert!(
                rec.core_mhz <= 700.0 + 1e-9,
                "throttled clock {} exceeds the 700 MHz cap",
                rec.core_mhz
            );
        } else {
            assert!(!rec.throttled, "launch {i} is past the window");
            assert!(
                (rec.core_mhz - 1300.0).abs() < 15.0,
                "clock must recover after the window, got {} MHz",
                rec.core_mhz
            );
        }
    }
}

#[test]
fn queue_surfaces_throttled_launch_count() {
    let plan = FaultPlan::none().throttle(
        Schedule::once(0),
        ThrottleWindow {
            cap_mhz: 700.0,
            launches: 2,
        },
    );
    let mut q = SynergyQueue::nvidia(Device::with_faults(DeviceSpec::v100(), plan));
    q.set_policy(synergy::FrequencyPolicy::Fixed(1300.0));
    let k = kernel();
    for _ in 0..4 {
        q.submit(&k);
    }
    assert_eq!(q.degradation().throttled_launches, 2);
}

// ---- Fault class: energy-counter wrap/reset ----

#[test]
fn counter_reset_rewinds_raw_counter_but_healed_reading_is_monotone() {
    let plan = FaultPlan::none().reset_energy_counter(Schedule::once(1));
    let shared = Arc::new(Mutex::new(Device::with_faults(DeviceSpec::v100(), plan)));
    // Second management handle on the same device: reads the *raw* vendor
    // counter the queue's healed view papers over.
    let raw = NvmlDevice::from_shared(Arc::clone(&shared));
    let mut q = SynergyQueue::new(Box::new(NvmlBackend::new(NvmlDevice::from_shared(shared))));
    let k = kernel();

    q.submit(&k);
    let healed_before = q.device_energy_j();
    let raw_before = raw.total_energy_consumption_mj();
    assert!(raw_before > 0);

    q.submit(&k); // the reset fires after this launch completes
    let raw_after = raw.total_energy_consumption_mj();
    assert!(
        raw_after < raw_before,
        "raw counter must rewind ({raw_after} mJ !< {raw_before} mJ)"
    );

    let healed_after = q.device_energy_j();
    assert!(
        healed_after >= healed_before,
        "healed energy went backwards: {healed_after} < {healed_before}"
    );
    assert_eq!(q.degradation().counter_rewinds_healed, 1);
}

// ---- Fault class: transient launch failure ----

#[test]
fn cronos_run_completes_across_transient_launch_failures() {
    // Two failures at fixed attempt indices: fully deterministic.
    let plan = FaultPlan::none().fail_launches(Schedule::at([2, 7]));
    let mut q = SynergyQueue::for_device(Device::with_faults(DeviceSpec::v100(), plan));
    let wl = small_cronos();
    assert!(
        wl.kernel_count() > 8,
        "workload must outlast the fault plan"
    );

    let m = cronos::GpuCronos::run(&wl, &mut q); // must not panic
    assert!(m.time_s > 0.0 && m.energy_j > 0.0);

    let d = q.degradation();
    assert_eq!(d.launch_failures, 2);
    assert_eq!(d.retries, 2);
    assert!(d.backoff_ns > 0);
}

#[test]
fn permanent_launch_failure_is_abandoned_within_the_attempt_bound() {
    let plan = FaultPlan::seeded(9).fail_launches(Schedule::Prob(1.0));
    let mut q = SynergyQueue::nvidia(Device::with_faults(DeviceSpec::v100(), plan));
    let policy = q.retry_policy();

    let err = q
        .try_submit(&kernel())
        .expect_err("every launch attempt fails");
    assert_eq!(err.kernel, "chaos");
    assert!(err.attempts >= 1);
    assert!(err.attempts <= policy.max_attempts_per_launch());
    assert!(matches!(err.last_error, BackendError::LaunchFailed { .. }));
    assert_eq!(q.degradation().launch_failures, u64::from(err.attempts));
    // The queue is still usable: nothing was torn down by the abandonment.
    assert_eq!(q.submission_count(), 0);
}

// ---- Fault-free plans are invisible ----

fn assert_fault_free_plan_invisible(
    spec: DeviceSpec,
    run: &dyn Fn(&mut SynergyQueue) -> (f64, f64),
) {
    let mut plain = SynergyQueue::for_device(Device::new(spec.clone()));
    let expect = run(&mut plain);

    let mut chaos = SynergyQueue::for_device(Device::with_faults(spec, FaultPlan::none()));
    let got = run(&mut chaos);

    assert_eq!(expect, got, "inert fault plan changed a measurement");
    assert!(chaos.degradation().is_clean());
}

#[test]
fn fault_free_plan_is_bit_identical_both_apps_both_vendors() {
    let cronos_run = |q: &mut SynergyQueue| {
        let m = cronos::GpuCronos::run(&small_cronos(), q);
        (m.time_s, m.energy_j)
    };
    let ligen_run = |q: &mut SynergyQueue| {
        let m = ligen::GpuLigen::new(500, 31, 4).run(q);
        (m.time_s, m.energy_j)
    };
    for spec in [DeviceSpec::v100(), DeviceSpec::mi100()] {
        assert_fault_free_plan_invisible(spec.clone(), &cronos_run);
        assert_fault_free_plan_invisible(spec, &ligen_run);
    }
}

// ---- Characterization under chaos ----

#[test]
fn characterize_degrades_gracefully_under_a_live_fault_plan() {
    let spec = DeviceSpec::v100();
    let freqs = [900.0, 1312.1];
    let opts = SweepOptions {
        reps: 2,
        noise_seed: None,
        faults: FaultPlan::seeded(20230521)
            .reject_set_frequency(Schedule::Prob(0.2))
            .fail_launches(Schedule::Prob(0.01))
            .reset_energy_counter(Schedule::Prob(0.02))
            .throttle(
                Schedule::Prob(0.3),
                ThrottleWindow {
                    cap_mhz: 800.0,
                    launches: 10,
                },
            ),
        retry: RetryPolicy::default(),
        remeasure_limit: 2,
        telemetry: None,
    };
    let (c, diag) = characterize_with_options(&spec, &small_cronos(), &freqs, &opts);

    // Graceful degradation: the sweep completes with finite, usable points.
    assert_eq!(c.points.len(), freqs.len());
    assert!(c.baseline_time_s > 0.0 && c.baseline_energy_j > 0.0);
    for p in &c.points {
        assert!(p.time_s.is_finite() && p.time_s > 0.0);
        assert!(p.energy_j.is_finite() && p.energy_j > 0.0);
        assert!(p.speedup.is_finite() && p.speedup > 0.0);
        assert!(p.norm_energy.is_finite() && p.norm_energy > 0.0);
    }

    // ... and the chaos left an audit trail instead of silent corruption.
    assert!(
        !diag.is_clean(),
        "this plan fires on virtually every attempt"
    );
    assert_eq!(diag.points.len(), freqs.len());

    // The same sweep fault-free remains untouched by the machinery.
    let clean = characterize(&spec, &small_cronos(), &freqs, 2, None);
    assert_eq!(clean.points.len(), freqs.len());
}

// ---- Campaign supervision under chaos ----

/// A two-slot campaign over a live fault plan completes, its accepted
/// points stay finite, and the quarantine stage accounts for every sweep
/// point with provenance — nothing is silently dropped or kept.
#[test]
fn campaign_under_chaos_completes_and_quarantine_accounts_for_every_point() {
    use energy_model::{
        quarantine_results, run_campaign, CampaignConfig, DeviceSlot, QuarantinePolicy,
    };

    let spec = DeviceSpec::v100();
    let plan = FaultPlan::seeded(20230521)
        .reject_set_frequency(Schedule::Prob(0.2))
        .fail_launches(Schedule::Prob(0.4))
        .reset_energy_counter(Schedule::Prob(0.05))
        .throttle(
            Schedule::Prob(0.3),
            ThrottleWindow {
                cap_mhz: 800.0,
                launches: 10,
            },
        );
    let slots = vec![
        DeviceSlot::healthy("gpu0"),
        DeviceSlot::with_health("gpu1", plan),
    ];
    let mut cfg = CampaignConfig::new(spec, slots, vec![700.0, 900.0, 1100.0, 1312.1]);
    cfg.reps = 2;
    cfg.noise_seed = Some(7);

    let dir = std::env::temp_dir().join(format!(
        "energy-model-chaos-campaign-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wl = small_cronos();
    let workloads: Vec<&dyn energy_model::characterize::Workload> = vec![&wl];
    let outcome =
        run_campaign(&cfg, &workloads, &dir, false).expect("campaign rides out the chaos");

    assert_eq!(outcome.results.len(), 1);
    let (ch, diag) = &outcome.results[0];
    assert_eq!(ch.points.len(), cfg.freqs.len());
    assert!(ch.baseline_time_s > 0.0 && ch.baseline_energy_j > 0.0);
    for p in &ch.points {
        assert!(p.time_s.is_finite() && p.time_s > 0.0);
        assert!(p.energy_j.is_finite() && p.energy_j > 0.0);
    }
    assert_eq!(diag.points.len(), cfg.freqs.len());

    // Quarantine accounts for every point exactly once, with reasons.
    let (kept, report) = quarantine_results(&outcome.results, &QuarantinePolicy::default());
    let total: usize = outcome.results.iter().map(|(c, _)| c.points.len()).sum();
    assert_eq!(report.kept + report.dropped.len(), total);
    assert_eq!(
        kept.iter().map(|c| c.points.len()).sum::<usize>(),
        report.kept
    );
    for q in &report.dropped {
        assert!(!q.reasons.is_empty(), "quarantine must state its reasons");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
