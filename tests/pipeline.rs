//! End-to-end pipeline integration tests: training phase → prediction
//! phase → Pareto selection, spanning every crate in the workspace.

use energy_repro::energy_model::ds_model::DomainSpecificModel;
use energy_repro::energy_model::features::{CronosInput, LigenInput};
use energy_repro::energy_model::gp_model::GeneralPurposeModel;
use energy_repro::energy_model::workflow::{
    characterize_cronos, characterize_ligen, experiment_frequencies, predicted_pareto_frequencies,
    training_set, true_pareto_frequencies,
};
use energy_repro::gpu_sim::DeviceSpec;
use energy_repro::ml::forest::RandomForestParams;

fn freqs(spec: &DeviceSpec) -> Vec<f64> {
    experiment_frequencies(spec, 8)
}

#[test]
fn figure11_training_phase_builds_complete_dataset() {
    let spec = DeviceSpec::v100();
    let fs = freqs(&spec);
    let configs = [CronosInput::new(20, 8, 8), CronosInput::new(40, 16, 16)];
    let inputs = characterize_cronos(&spec, &configs, &fs, 2, Some(1));
    let samples = training_set(&inputs);
    assert_eq!(samples.len(), configs.len() * fs.len());
    for s in &samples {
        assert_eq!(s.features.len(), 3);
        assert!(s.time_s > 0.0 && s.energy_j > 0.0);
        assert!(fs.contains(&s.freq_mhz));
    }
}

#[test]
fn figure12_prediction_phase_normalizes_at_default() {
    let spec = DeviceSpec::v100();
    let fs = freqs(&spec);
    let configs = CronosInput::paper_configs();
    let inputs = characterize_cronos(&spec, &configs[..3], &fs, 1, None);
    let model = DomainSpecificModel::train(&training_set(&inputs), spec.default_core_mhz, 0);
    let curve = model.predict_curve(&configs[1].features(), &[spec.default_core_mhz]);
    assert!((curve[0].speedup - 1.0).abs() < 1e-9);
    assert!((curve[0].norm_energy - 1.0).abs() < 1e-9);
}

#[test]
fn ds_model_predicts_unseen_ligen_input_accurately() {
    let spec = DeviceSpec::v100();
    // Finer sweep: the energy curve is steepest at the very top bins and
    // the forest's frequency leaves must resolve them.
    let fs = experiment_frequencies(&spec, 4);
    let mut configs = LigenInput::figure13_configs();
    let held = configs.remove(7); // 89x4x4096
    let inputs = characterize_ligen(&spec, &configs, &fs, 1, None);
    let model = DomainSpecificModel::train(&training_set(&inputs), spec.default_core_mhz, 3);

    let truth = characterize_ligen(&spec, &[held], &fs, 1, None).remove(0);
    let curve = model.predict_curve(&truth.features, &fs);
    for (p, t) in curve.iter().zip(&truth.characterization.points) {
        assert!(
            (p.speedup - t.speedup).abs() / t.speedup < 0.05,
            "speedup at {:.0} MHz: {} vs {}",
            p.freq_mhz,
            p.speedup,
            t.speedup
        );
        assert!(
            (p.norm_energy - t.norm_energy).abs() / t.norm_energy < 0.05,
            "energy at {:.0} MHz: {} vs {}",
            p.freq_mhz,
            p.norm_energy,
            t.norm_energy
        );
    }
}

#[test]
fn ds_pareto_set_overlaps_truth_substantially() {
    let spec = DeviceSpec::v100();
    let fs = freqs(&spec);
    let configs = LigenInput::figure13_configs();
    let inputs = characterize_ligen(&spec, &configs, &fs, 1, None);
    // Train on all but the large input; predict its Pareto frequencies.
    let held_idx = configs.len() - 1;
    let train: Vec<_> = inputs
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != held_idx)
        .map(|(_, c)| c.clone())
        .collect();
    let model = DomainSpecificModel::train(&training_set(&train), spec.default_core_mhz, 5);
    let curve = model.predict_curve(&inputs[held_idx].features, &fs);
    let predicted = predicted_pareto_frequencies(&curve);
    let truth = true_pareto_frequencies(&inputs[held_idx].characterization);

    let matches = predicted
        .iter()
        .filter(|p| truth.iter().any(|t| (*t - **p).abs() < 1e-6))
        .count();
    assert!(
        matches as f64 >= 0.5 * predicted.len() as f64,
        "{matches} of {} predicted frequencies are truly Pareto-optimal",
        predicted.len()
    );
}

#[test]
fn gp_model_is_blind_to_input_size_by_construction() {
    let spec = DeviceSpec::v100();
    let fs = freqs(&spec);
    let gp = GeneralPurposeModel::train_with(
        &spec,
        &fs,
        0,
        RandomForestParams {
            n_estimators: 10,
            ..Default::default()
        },
    );
    let small = energy_model::workflow::ligen_static_features(&LigenInput::new(2, 89, 20));
    let large = energy_model::workflow::ligen_static_features(&LigenInput::new(10_000, 89, 20));
    // Same code → same static features → identical predictions, whatever
    // the workload (the limitation the domain-specific models remove).
    for &f in fs.iter().step_by(3) {
        assert_eq!(gp.predict(&small, f), gp.predict(&large, f));
    }
}

#[test]
fn full_loocv_round_trip_is_deterministic() {
    let spec = DeviceSpec::v100();
    let fs = freqs(&spec);
    let configs = CronosInput::paper_configs();
    let run = || {
        let inputs = characterize_cronos(&spec, &configs[..3], &fs, 2, Some(9));
        let model = DomainSpecificModel::train(&training_set(&inputs), spec.default_core_mhz, 9);
        model.predict_curve(&configs[1].features(), &fs)
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (p, q) in a.iter().zip(&b) {
        assert_eq!(p.speedup, q.speedup);
        assert_eq!(p.norm_energy, q.norm_energy);
    }
}
