//! Integration tests exercising the two application substrates through the
//! umbrella crate's public API: real physics and real chemistry, not just
//! kernel descriptors.

use energy_repro::cronos::boundary::BoundaryKind;
use energy_repro::cronos::eos::GAMMA;
use energy_repro::cronos::state::comp;
use energy_repro::cronos::{problems, Grid, Simulation};
use energy_repro::ligen::dock::{dock, DockParams};
use energy_repro::ligen::{virtual_screening, ChemLibrary, Pocket};

#[test]
fn orszag_tang_vortex_develops_turbulent_structure() {
    let g = Grid::new(32, 32, 4, 1.0, 1.0, 0.125);
    let mut sim = Simulation::new(problems::orszag_tang(g), GAMMA, 0.4);
    assert_eq!(sim.boundary, BoundaryKind::Periodic);
    let e0 = sim.state.total(comp::EN);
    sim.run_until(0.1, 10_000);
    // Conservation through the full driver.
    let e1 = sim.state.total(comp::EN);
    assert!(((e1 - e0) / e0).abs() < 1e-11, "energy drift");
    // The vortex stirs density: variance grows from zero.
    let mean = sim.state.total(comp::RHO) / g.n_cells() as f64;
    let var: f64 = g
        .interior_coords()
        .map(|(i, j, k)| {
            let d = sim.state.interior(i, j, k)[comp::RHO] - mean;
            d * d
        })
        .sum::<f64>()
        / g.n_cells() as f64;
    assert!(var > 1e-4, "no structure formed, variance {var}");
    assert!(sim.state.is_physical(GAMMA));
}

#[test]
fn magnetic_field_feeds_back_on_flow() {
    // Run the same blast with and without a field: the magnetized run must
    // evolve differently (the Lorentz coupling is live).
    let g = Grid::cubic(16, 16, 16);
    let mut with_b = Simulation::new(problems::mhd_blast(g), GAMMA, 0.4);
    let mut hydro = {
        let mut p = problems::mhd_blast(g);
        for c in &mut p.state.cells {
            c[comp::BX] = 0.0;
            c[comp::BY] = 0.0;
            c[comp::BZ] = 0.0;
            // Remove the magnetic energy contribution too.
            c[comp::EN] -= 0.25; // b0² / 2 with b0 = 1/√2 per component pair
        }
        Simulation::new(p, GAMMA, 0.4)
    };
    with_b.run_steps(10);
    hydro.run_steps(10);
    let diff: f64 = with_b
        .state
        .cells
        .iter()
        .zip(&hydro.state.cells)
        .map(|(a, b)| (a[comp::MX] - b[comp::MX]).abs())
        .sum();
    assert!(diff > 1e-3, "field must alter the dynamics, diff {diff}");
}

#[test]
fn docking_finds_better_poses_with_more_iterations() {
    let ligand = energy_repro::ligen::library::generate_ligand(5, 24, 4, 77);
    let pocket = Pocket::synthesize(20, 20.0, 5, 31);
    let quick = DockParams {
        num_restart: 2,
        num_iterations: 1,
        max_num_poses: 2,
    };
    let thorough = DockParams {
        num_restart: 8,
        num_iterations: 6,
        max_num_poses: 4,
    };
    let (s_quick, _) = dock(&ligand, &pocket, &quick);
    let (s_thorough, _) = dock(&ligand, &pocket, &thorough);
    assert!(
        s_thorough <= s_quick + 1e-9,
        "more search must not be worse: {s_thorough} vs {s_quick}"
    );
}

#[test]
fn screening_is_a_total_ranking_of_the_library() {
    let lib = ChemLibrary::generate(24, 20, 3, 5);
    let pocket = Pocket::synthesize(16, 20.0, 4, 9);
    let results = virtual_screening(&lib, &pocket, &DockParams::default());
    assert_eq!(results.len(), 24);
    for w in results.windows(2) {
        assert!(w[0].score <= w[1].score);
    }
    assert!(
        results[0].score < results[23].score,
        "the ranking must discriminate"
    );
}

#[test]
fn bigger_ligands_have_larger_extent() {
    let small = ChemLibrary::generate(4, 16, 2, 1);
    let large = ChemLibrary::generate(4, 80, 10, 1);
    let mean_r = |lib: &ChemLibrary| {
        lib.ligands
            .iter()
            .map(|l| l.radius_of_gyration())
            .sum::<f64>()
            / lib.len() as f64
    };
    assert!(mean_r(&large) > 2.0 * mean_r(&small));
}
