//! Governor end-to-end suite: registry round-trips, chaos under model-
//! and device-side fault injection, golden determinism, telemetry
//! inertness, and the closed-loop regression guard.
//!
//! Three contracts from the crate docs, pinned here:
//!
//! * **Typed degradation** — corrupt, version-skewed, or stale artifacts
//!   come back as typed errors; at run time every failure mode converges
//!   to the default-clock baseline instead of wedging the loop.
//! * **Determinism** — the decision stream is a pure function of
//!   `(seed, fault plans, policy)`; armed telemetry changes nothing.
//! * **The headline** — on the pinned seed, `min-energy-under-deadline`
//!   saves ≥ 10% energy versus `default-clock` at no worse a deadline
//!   miss rate (the number `figures govern` records in
//!   `results/governor/summary.json`).
//!
//! The expensive fixtures (trained models, published registry) are built
//! once per test binary behind a lazy lock.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use energy_model::telemetry::Telemetry;
use energy_model::{ArtifactError, ModelArtifact};
use governor::{
    run_governor, train_and_publish, FallbackReason, GovernorConfig, ModelFaults, ModelRegistry,
    Policy, RegistryError,
};
use gpu_sim::{FaultPlan, Schedule};

/// One pinned-config registry shared by every test in this binary:
/// training the two models is by far the dominant cost, so pay it once.
fn shared_registry() -> &'static (ModelRegistry, u64) {
    static SHARED: OnceLock<(ModelRegistry, u64)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let dir = test_dir("shared-registry");
        let registry = ModelRegistry::open(&dir);
        let fingerprint =
            train_and_publish(&GovernorConfig::pinned(Policy::DefaultClock), &registry)
                .expect("train and publish pinned models");
        (registry, fingerprint)
    })
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("governor-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pinned(policy: Policy) -> GovernorConfig {
    GovernorConfig::pinned(policy)
}

/// A faster configuration for the chaos/determinism tests that don't
/// need the pinned stream (they still share the pinned-trained models).
fn quick(policy: Policy) -> GovernorConfig {
    let mut cfg = pinned(policy);
    cfg.n_jobs = 16;
    cfg.freq_stride = 4;
    cfg
}

// ---------------------------------------------------------------------
// Registry round-trip and typed rejection
// ---------------------------------------------------------------------

#[test]
fn registry_round_trip_is_lossless() {
    let (registry, fingerprint) = shared_registry();
    let (model, artifact, version) = registry
        .load_expecting("ligen", None, *fingerprint)
        .expect("load published model");
    assert_eq!(version, 1);
    assert_eq!(artifact.name, "ligen");

    // Lossless: the reloaded model predicts bit-identically to a fresh
    // in-memory round-trip of the same payload.
    let direct = energy_model::DomainSpecificModel::from_json(&model.to_json())
        .expect("round-trip via JSON");
    let features = [4000.0, 20.0, 89.0];
    for freq in [600.0, 1000.0, 1312.5] {
        let a = model.predict_time_energy(&features, freq);
        let b = direct.predict_time_energy(&features, freq);
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.1.to_bits(), b.1.to_bits());
    }
}

#[test]
fn registry_rejects_corruption_version_skew_and_staleness() {
    let (registry, fingerprint) = shared_registry();

    // Stale fingerprint → typed Fingerprint error.
    let err = registry
        .load_expecting("cronos", None, fingerprint ^ 1)
        .expect_err("fingerprint skew must be rejected");
    assert!(matches!(
        err,
        RegistryError::Artifact {
            source: ArtifactError::Fingerprint { .. },
            ..
        }
    ));

    // Corrupted payload → typed Digest error. Copy the artifact into a
    // scratch registry and flip payload bytes.
    let scratch = test_dir("corrupt-registry");
    let cronos_dir = scratch.join("cronos");
    std::fs::create_dir_all(&cronos_dir).expect("scratch registry dir");
    let source = registry.root().join("cronos").join("v0001.json");
    let text = std::fs::read_to_string(&source).expect("read published artifact");
    // Flip payload content (the escaped model JSON) without breaking the
    // envelope's own JSON: the digest check must catch it.
    std::fs::write(
        cronos_dir.join("v0001.json"),
        text.replacen("algorithm", "algoXithm", 1),
    )
    .expect("write corrupted artifact");
    let corrupt = ModelRegistry::open(&scratch);
    let err = corrupt
        .load("cronos", None)
        .expect_err("corruption must be rejected");
    assert!(matches!(
        err,
        RegistryError::Artifact {
            source: ArtifactError::Digest { .. } | ArtifactError::Malformed(_),
            ..
        }
    ));

    // Version skew → typed Version error.
    let skew_dir = test_dir("skew-registry");
    std::fs::create_dir_all(skew_dir.join("cronos")).expect("skew registry dir");
    let artifact = ModelArtifact::load(&source).expect("load artifact envelope");
    let skewed = text.replace(
        &format!("\"schema_version\": {}", artifact.schema_version),
        &format!("\"schema_version\": {}", artifact.schema_version + 1),
    );
    std::fs::write(skew_dir.join("cronos").join("v0001.json"), skewed)
        .expect("write skewed artifact");
    let err = ModelRegistry::open(&skew_dir)
        .load("cronos", None)
        .expect_err("version skew must be rejected");
    assert!(matches!(
        err,
        RegistryError::Artifact {
            source: ArtifactError::Version { .. },
            ..
        }
    ));

    // Missing model / missing version → typed not-found errors.
    assert!(matches!(
        registry.load("nonexistent", None),
        Err(RegistryError::NotFound { .. })
    ));
    assert!(matches!(
        registry.load("cronos", Some(99)),
        Err(RegistryError::VersionNotFound { version: 99, .. })
    ));
}

#[test]
fn publishing_allocates_monotone_versions() {
    let (registry, fingerprint) = shared_registry();
    let (model, _, v1) = registry.load("cronos", None).expect("load v1");
    let scratch = test_dir("versions-registry");
    let fresh = ModelRegistry::open(&scratch);
    assert_eq!(
        fresh.publish("cronos", &model, *fingerprint).expect("v1"),
        1
    );
    assert_eq!(
        fresh.publish("cronos", &model, *fingerprint).expect("v2"),
        2
    );
    assert_eq!(fresh.versions("cronos").expect("versions"), vec![1, 2]);
    assert_eq!(fresh.latest("cronos").expect("latest"), 2);
    assert_eq!(v1, 1);
}

// ---------------------------------------------------------------------
// Golden determinism and telemetry inertness
// ---------------------------------------------------------------------

#[test]
fn inert_runs_are_bit_identical_across_replays() {
    let (registry, _) = shared_registry();
    for policy in Policy::all() {
        let cfg = quick(policy);
        let a = run_governor(&cfg, registry);
        let b = run_governor(&cfg, registry);
        assert_eq!(a, b, "policy {} must replay bit-identically", policy.name());
    }
}

#[test]
fn different_seeds_give_different_streams() {
    let (registry, _) = shared_registry();
    let a = run_governor(&quick(Policy::MinEnergyUnderDeadline), registry);
    let mut cfg = quick(Policy::MinEnergyUnderDeadline);
    cfg.seed ^= 0xABCD;
    let b = run_governor(&cfg, registry);
    assert_ne!(a.decisions, b.decisions);
}

#[test]
fn armed_telemetry_leaves_results_bit_identical() {
    let (registry, _) = shared_registry();
    let inert = run_governor(&quick(Policy::MinEnergyUnderDeadline), registry);

    let telemetry = Telemetry::new();
    let mut cfg = quick(Policy::MinEnergyUnderDeadline);
    cfg.telemetry = Some(Arc::clone(&telemetry));
    let armed = run_governor(&cfg, registry);

    // The report carries no telemetry handle, so PartialEq covers every
    // decision and measurement.
    assert_eq!(inert, armed);

    // And the sink actually observed the run.
    let jobs = telemetry.registry().counter("governor.jobs_total").get();
    assert_eq!(jobs as usize, armed.n_jobs);
    assert_eq!(
        telemetry.registry().gauge("governor.total_energy_j").get(),
        armed.total_energy_j
    );
}

// ---------------------------------------------------------------------
// Chaos: fault injection on the model and device paths
// ---------------------------------------------------------------------

#[test]
fn set_frequency_faults_degrade_without_deadlock() {
    let (registry, _) = shared_registry();
    let mut cfg = quick(Policy::MinEnergyUnderDeadline);
    cfg.device_faults = FaultPlan::seeded(7).reject_set_frequency(Schedule::Prob(0.3));
    let report = run_governor(&cfg, registry);

    // Every job completed and was recorded; nothing wedged.
    assert_eq!(report.n_jobs, cfg.n_jobs);
    assert_eq!(report.decisions.len(), cfg.n_jobs);
    assert!(report.decisions.iter().all(|d| d.completed));

    // Chosen clocks always come from the device's supported table.
    for d in &report.decisions {
        if let Some(freq) = d.requested_mhz {
            assert!(
                cfg.spec.core_freqs.contains(freq),
                "requested {freq} MHz is not a supported clock"
            );
        }
    }

    // The runs replay deterministically even under faults.
    let replay = run_governor(&cfg, registry);
    assert_eq!(report, replay);
}

#[test]
fn rejected_clocks_ride_the_retry_path_to_default() {
    let (registry, _) = shared_registry();
    let mut cfg = quick(Policy::MinEnergyUnderDeadline);
    // Reject every set-frequency call: each governed job's clock request
    // exhausts its retries and falls back to the default clock.
    cfg.device_faults = FaultPlan::seeded(11).reject_set_frequency(Schedule::Prob(1.0));
    let report = run_governor(&cfg, registry);
    assert!(report.decisions.iter().all(|d| d.completed));
    assert!(report.default_clock_fallbacks > 0);
    assert!(report
        .decisions
        .iter()
        .filter(|d| d.requested_mhz.is_some())
        .all(|d| d.fallback == Some(FallbackReason::FrequencyRejected)));
}

#[test]
fn all_model_loads_failing_converges_to_default_clock_baseline() {
    let (registry, _) = shared_registry();

    let baseline = run_governor(&quick(Policy::DefaultClock), registry);

    let mut cfg = quick(Policy::MinEnergyUnderDeadline);
    cfg.model_faults = ModelFaults {
        seed: 3,
        load_failures: Schedule::Prob(1.0),
        stale_fingerprints: Schedule::Never,
    };
    let degraded = run_governor(&cfg, registry);

    // Every job fell back…
    assert_eq!(degraded.fallbacks, cfg.n_jobs);
    assert!(degraded
        .decisions
        .iter()
        .all(|d| d.fallback == Some(FallbackReason::LoadFailed)));
    // …and the measurement side is bit-identical to the baseline policy.
    for (a, b) in baseline.decisions.iter().zip(&degraded.decisions) {
        assert_eq!(a.measured_time_s.to_bits(), b.measured_time_s.to_bits());
        assert_eq!(a.measured_energy_j.to_bits(), b.measured_energy_j.to_bits());
    }
    assert_eq!(
        baseline.total_energy_j.to_bits(),
        degraded.total_energy_j.to_bits()
    );
}

#[test]
fn stale_fingerprint_faults_fall_back_and_recover() {
    let (registry, _) = shared_registry();
    let mut cfg = quick(Policy::MinEnergyUnderDeadline);
    // The first few load attempts see a stale artifact; later attempts
    // succeed, so the governor recovers mid-stream.
    cfg.model_faults = ModelFaults {
        seed: 5,
        load_failures: Schedule::Never,
        stale_fingerprints: Schedule::at([0, 1, 2]),
    };
    let report = run_governor(&cfg, registry);
    let stale = report
        .decisions
        .iter()
        .filter(|d| d.fallback == Some(FallbackReason::StaleArtifact))
        .count();
    assert!(stale > 0, "stale-artifact fallbacks must be recorded");
    assert!(
        report.decisions.iter().any(|d| d.requested_mhz.is_some()),
        "governor must recover once loads succeed"
    );
    assert_eq!(report, run_governor(&cfg, registry));
}

#[test]
fn admission_overflow_sheds_load_visibly() {
    let (registry, _) = shared_registry();
    let mut cfg = quick(Policy::MinEnergyUnderDeadline);
    cfg.queue_capacity = 1; // bursts of 2–3 must overflow
    let report = run_governor(&cfg, registry);
    assert!(report.admission_rejected > 0);
    assert_eq!(
        report
            .decisions
            .iter()
            .filter(|d| d.fallback == Some(FallbackReason::AdmissionRejected))
            .count(),
        report.admission_rejected
    );
    // Shed jobs still ran (at the default clock) and were recorded.
    assert_eq!(report.decisions.len(), cfg.n_jobs);
    assert!(report.decisions.iter().all(|d| d.completed));
}

// ---------------------------------------------------------------------
// The closed-loop headline (the CI regression guard)
// ---------------------------------------------------------------------

#[test]
fn pinned_stream_saves_ten_percent_energy_at_no_worse_miss_rate() {
    let (registry, _) = shared_registry();
    let baseline = run_governor(&pinned(Policy::DefaultClock), registry);
    let governed = run_governor(&pinned(Policy::MinEnergyUnderDeadline), registry);

    assert_eq!(baseline.n_jobs, 40);
    assert_eq!(governed.n_jobs, 40);

    let saved = 1.0 - governed.total_energy_j / baseline.total_energy_j;
    assert!(
        saved >= 0.10,
        "min-energy-under-deadline must save ≥10% energy vs default-clock \
         on the pinned seed; got {:.1}% ({:.1} J vs {:.1} J)",
        100.0 * saved,
        governed.total_energy_j,
        baseline.total_energy_j
    );
    assert!(
        governed.miss_rate <= baseline.miss_rate,
        "governed miss rate {:.3} exceeds baseline {:.3}",
        governed.miss_rate,
        baseline.miss_rate
    );
    // The memo cache earns its keep on the repetitive pinned stream.
    assert!(governed.cache.hits > 0);
}
