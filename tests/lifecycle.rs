//! Adaptive model lifecycle end-to-end suite: drift detection over a
//! live decision stream, quarantine-fed online retraining, canary
//! publish with automatic promote/rollback, crash-at-every-journal-
//! boundary resume, and the differential golden against [`run_governor`].
//!
//! The pinned guards from the lifecycle issue:
//!
//! * Under injected hardware drift mid-stream, the lifecycle detects,
//!   retrains, canaries, and promotes; post-promote MAPE lands within
//!   25% of a from-scratch retrain, and total energy is strictly better
//!   than the no-lifecycle governor on the same drifted stream.
//! * A canary that measures worse than the incumbent rolls back
//!   automatically — zero dropped requests, incumbent untouched.
//! * Killing the publisher after any journal append and resuming
//!   converges to the bit-identical report and journal
//!   (`LIFECYCLE_CHAOS_SEED` picks the chaos stream).

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use energy_model::telemetry::Telemetry;
use governor::{
    efficiency_drift, lifecycle, run_governor, run_lifecycle, train_and_publish, DriftConfig,
    DriftScenario, EngineConfig, ForcedTrip, GovernorConfig, LifecycleConfig, LifecycleEvent,
    ModelRegistry, Policy, PredictionEngine, PredictionRequest, RegistryEvent, ServedChannel,
};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lifecycle-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The chaos test re-runs under any seed via `LIFECYCLE_CHAOS_SEED`;
/// everything else stays pinned.
fn chaos_seed() -> u64 {
    std::env::var("LIFECYCLE_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// Train the pinned models once per binary, then give each test its own
/// writable copy of the published registry (canary publishes mutate it).
fn template_registry() -> &'static PathBuf {
    static TEMPLATE: OnceLock<PathBuf> = OnceLock::new();
    TEMPLATE.get_or_init(|| {
        let dir = test_dir("registry-template");
        let registry = ModelRegistry::open(&dir);
        train_and_publish(&GovernorConfig::pinned(Policy::DefaultClock), &registry)
            .expect("train and publish pinned models");
        dir
    })
}

fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create registry copy dir");
    for entry in std::fs::read_dir(src).expect("read template registry") {
        let entry = entry.expect("registry entry");
        let target = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_tree(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).expect("copy registry file");
        }
    }
}

fn fresh_registry(name: &str) -> ModelRegistry {
    let dir = test_dir(name);
    copy_tree(template_registry(), &dir);
    ModelRegistry::open(&dir)
}

/// The pinned drift scenario: efficiency drift lands a third of the way
/// through the pinned stream.
fn drifted(policy: Policy) -> LifecycleConfig {
    let mut cfg = LifecycleConfig::pinned(policy);
    let at_job = (cfg.governor.n_jobs as u64) / 3;
    cfg.scenario = Some(DriftScenario {
        at_job,
        spec: efficiency_drift(&cfg.governor.spec),
    });
    cfg
}

/// Mean APE over an app's clean post-`cutoff` decisions.
fn mape_after(report: &governor::LifecycleReport, app: &str, cutoff: u64) -> (f64, usize) {
    let apes: Vec<f64> = report
        .decisions
        .iter()
        .filter(|d| d.record.app == app && d.record.job_id > cutoff)
        .filter_map(|d| d.ape)
        .collect();
    let n = apes.len();
    assert!(n > 0, "no clean {app} decisions after job {cutoff}");
    (apes.iter().sum::<f64>() / n as f64, n)
}

// ---------------------------------------------------------------------
// The end-to-end pinned guard: detect → retrain → canary → promote
// ---------------------------------------------------------------------

#[test]
fn drift_is_detected_retrained_canaried_and_promoted() {
    let registry = fresh_registry("e2e");
    let dir = test_dir("e2e-run");
    let cfg = drifted(Policy::MinEnergyUnderDeadline);
    let report = run_lifecycle(&cfg, &registry, &dir, false).expect("lifecycle run");

    // Never an unserved request: every job in the stream got executed.
    assert_eq!(report.n_jobs, cfg.governor.n_jobs);
    assert!(report.decisions.iter().all(|d| d.record.completed));

    // The lifecycle actually cycled: at least one drift trip led to a
    // successful retrain, an open canary, and an automatic promote.
    assert!(report.retrains >= 1, "no retrain fired");
    assert!(report.promotes >= 1, "no canary promoted");
    assert_eq!(report.rollbacks, 0);
    assert!(report.drift.values().any(|s| s.trips > 0));
    assert!(report
        .decisions
        .iter()
        .any(|d| d.channel == ServedChannel::Canary));

    // The promoted app's journal trail is complete and ordered.
    let promoted_app = report
        .events
        .iter()
        .find_map(|e| match e {
            LifecycleEvent::Promoted { app, .. } => Some(app.clone()),
            _ => None,
        })
        .expect("a Promoted event");
    let trail: Vec<&str> = report
        .events
        .iter()
        .filter_map(|e| match e {
            LifecycleEvent::DriftTripped { app, .. } if *app == promoted_app => {
                Some("drift-tripped")
            }
            LifecycleEvent::PublishIntent { app, .. } if *app == promoted_app => {
                Some("publish-intent")
            }
            LifecycleEvent::ArtifactWritten { app, .. } if *app == promoted_app => {
                Some("artifact-written")
            }
            LifecycleEvent::CanaryOpened { app, .. } if *app == promoted_app => {
                Some("canary-opened")
            }
            LifecycleEvent::PromoteIntent { app, .. } if *app == promoted_app => {
                Some("promote-intent")
            }
            LifecycleEvent::Promoted { app, .. } if *app == promoted_app => Some("promoted"),
            _ => None,
        })
        .collect();
    assert_eq!(
        trail,
        [
            "drift-tripped",
            "publish-intent",
            "artifact-written",
            "canary-opened",
            "promote-intent",
            "promoted",
        ]
    );

    // The registry advanced atomically: the promoted version is the
    // stable latest and the canary pointer is gone.
    let promoted_version = report
        .events
        .iter()
        .find_map(|e| match e {
            LifecycleEvent::Promoted { app, version } if *app == promoted_app => Some(*version),
            _ => None,
        })
        .expect("promoted version");
    assert_eq!(
        registry
            .stable_latest(&promoted_app)
            .expect("stable latest"),
        promoted_version
    );
    assert_eq!(
        registry.canary(&promoted_app).expect("canary pointer").0,
        None
    );

    // Energy guard: against the no-lifecycle governor on the same
    // drifted stream, adapting must pay off strictly.
    let mut stale = cfg.clone();
    stale.drift = DriftConfig::disabled();
    let stale_report = run_lifecycle(
        &stale,
        &registry_for_baseline(),
        &test_dir("e2e-stale"),
        false,
    )
    .expect("stale baseline run");
    assert_eq!(stale_report.retrains, 0);
    assert!(
        report.total_energy_j < stale_report.total_energy_j,
        "lifecycle energy {} not better than stale {}",
        report.total_energy_j,
        stale_report.total_energy_j
    );

    // MAPE guard: after the promote, the promoted app's model error is
    // within 25% of a from-scratch retrain on the drifted hardware.
    let promote_at = report
        .events
        .iter()
        .find_map(|e| match e {
            LifecycleEvent::PromoteIntent { app, at_job, .. } if *app == promoted_app => {
                Some(*at_job)
            }
            _ => None,
        })
        .expect("promote at_job");
    let (post_mape, post_n) = mape_after(&report, &promoted_app, promote_at);

    let scratch_dir = test_dir("e2e-scratch-registry");
    let scratch_registry = ModelRegistry::open(&scratch_dir);
    let mut scratch = LifecycleConfig::pinned(Policy::MinEnergyUnderDeadline);
    scratch.governor.spec = efficiency_drift(&scratch.governor.spec);
    scratch.drift = DriftConfig::disabled();
    train_and_publish(&scratch.governor, &scratch_registry).expect("from-scratch retrain");
    let scratch_report = run_lifecycle(
        &scratch,
        &scratch_registry,
        &test_dir("e2e-scratch-run"),
        false,
    )
    .expect("from-scratch run");
    let (scratch_mape, scratch_n) = mape_after(&scratch_report, &promoted_app, promote_at);
    assert!(
        post_mape <= scratch_mape.max(1e-9) * 1.25,
        "post-promote MAPE {post_mape:.5} (n={post_n}) not within 25% of \
         from-scratch {scratch_mape:.5} (n={scratch_n})"
    );
}

/// The stale-baseline registry: a second pristine copy so the e2e run's
/// canary publishes can't leak into the baseline.
fn registry_for_baseline() -> ModelRegistry {
    fresh_registry("e2e-baseline")
}

// ---------------------------------------------------------------------
// Automatic rollback
// ---------------------------------------------------------------------

#[test]
fn worse_canary_rolls_back_automatically_with_zero_dropped_requests() {
    let registry = fresh_registry("rollback");
    let dir = test_dir("rollback-run");
    let mut cfg = LifecycleConfig::pinned(Policy::MinEnergyUnderDeadline);
    // No hardware drift: the incumbent is correct. Force a trip and
    // sabotage the retrain to characterize wildly wrong hardware — the
    // canary must measure worse and roll back on its own.
    cfg.force_trip = Some(ForcedTrip {
        at_job: 5,
        app: "ligen".to_string(),
    });
    let sab = efficiency_drift(&efficiency_drift(&efficiency_drift(&cfg.governor.spec)));
    cfg.retrain_spec = Some(sab);

    let incumbent_before = registry.stable_latest("ligen").expect("incumbent");
    let report = run_lifecycle(&cfg, &registry, &dir, false).expect("rollback run");

    assert_eq!(report.retrains, 1);
    assert_eq!(report.promotes, 0);
    assert_eq!(report.rollbacks, 1);
    assert!(report.degradation.lifecycle_fallbacks >= 1);

    // Zero dropped requests: the whole stream executed to completion.
    assert_eq!(report.n_jobs, cfg.governor.n_jobs);
    assert!(report.decisions.iter().all(|d| d.record.completed));

    // The verdict was measured, not assumed: the canary slice was
    // genuinely worse.
    let (canary_mape, incumbent_mape) = report
        .events
        .iter()
        .find_map(|e| match e {
            LifecycleEvent::RollbackIntent {
                canary_mape_bits,
                incumbent_mape_bits,
                ..
            } => Some((
                f64::from_bits(*canary_mape_bits),
                f64::from_bits(*incumbent_mape_bits),
            )),
            _ => None,
        })
        .expect("RollbackIntent event");
    assert!(
        canary_mape > incumbent_mape,
        "rollback fired but canary MAPE {canary_mape} was not worse than {incumbent_mape}"
    );
    assert!(report
        .events
        .iter()
        .any(|e| matches!(e, LifecycleEvent::RolledBack { app, .. } if app == "ligen")));

    // Incumbent untouched; the rolled-back version is retired, not
    // deleted, and its number is never reused.
    assert_eq!(
        registry.stable_latest("ligen").expect("incumbent after"),
        incumbent_before
    );
    assert_eq!(registry.versions("ligen").expect("active"), vec![1]);
    assert_eq!(
        registry.retired_versions("ligen").expect("retired"),
        vec![2]
    );
    assert_eq!(registry.canary("ligen").expect("canary").0, None);
    assert_eq!(registry.next_version("ligen").expect("next"), 3);
}

// ---------------------------------------------------------------------
// Differential golden: an inert lifecycle IS the governor
// ---------------------------------------------------------------------

#[test]
fn inert_lifecycle_is_bit_identical_to_the_governor() {
    let registry = ModelRegistry::open(template_registry());
    for policy in Policy::all() {
        let mut cfg = LifecycleConfig::pinned(policy);
        cfg.drift = DriftConfig::disabled();
        let dir = test_dir(&format!("inert-{}", policy.name()));
        let life = run_lifecycle(&cfg, &registry, &dir, false).expect("inert lifecycle");
        let gov = run_governor(&cfg.governor, &registry);

        assert_eq!(life.n_jobs, gov.n_jobs);
        assert_eq!(life.decisions.len(), gov.decisions.len());
        for (l, g) in life.decisions.iter().zip(gov.decisions.iter()) {
            assert_eq!(&l.record, g);
            assert_eq!(l.channel, ServedChannel::Stable);
        }
        assert_eq!(life.total_time_s.to_bits(), gov.total_time_s.to_bits());
        assert_eq!(life.total_energy_j.to_bits(), gov.total_energy_j.to_bits());
        assert_eq!(life.deadline_misses, gov.deadline_misses);
        assert_eq!(life.fallbacks, gov.fallbacks);
        assert_eq!(life.admission_rejected, gov.admission_rejected);
        assert_eq!(life.cache, gov.cache);
        assert!(life.events.is_empty());
        assert_eq!(life.retrains, 0);
        assert_eq!(life.promotes, 0);
        assert_eq!(life.rollbacks, 0);
        assert_eq!(life.degradation.lifecycle_fallbacks, 0);
    }
}

// ---------------------------------------------------------------------
// Telemetry inertness
// ---------------------------------------------------------------------

#[test]
fn armed_telemetry_leaves_the_lifecycle_bit_identical() {
    let quiet = run_lifecycle(
        &drifted(Policy::MinEnergyUnderDeadline),
        &fresh_registry("telemetry-quiet"),
        &test_dir("telemetry-quiet-run"),
        false,
    )
    .expect("quiet run");

    let telemetry = Telemetry::new();
    let mut cfg = drifted(Policy::MinEnergyUnderDeadline);
    cfg.governor.telemetry = Some(Arc::clone(&telemetry));
    let armed = run_lifecycle(
        &cfg,
        &fresh_registry("telemetry-armed"),
        &test_dir("telemetry-armed-run"),
        false,
    )
    .expect("armed run");

    // The report carries no telemetry handle, so PartialEq covers every
    // measured and derived field.
    assert_eq!(quiet, armed);

    // And the drift/lifecycle instruments actually recorded.
    let r = telemetry.registry();
    assert!(r.counter("governor.drift.observations").get() > 0);
    assert!(r.counter("governor.drift.trips").get() > 0);
    assert_eq!(
        r.counter("governor.lifecycle.retrains").get(),
        u64::from(armed.retrains)
    );
    assert_eq!(
        r.counter("governor.lifecycle.promotes").get(),
        u64::from(armed.promotes)
    );
}

// ---------------------------------------------------------------------
// Crash-at-every-journal-boundary chaos
// ---------------------------------------------------------------------

#[test]
fn publisher_crash_at_every_journal_boundary_resumes_bit_identically() {
    let seed = chaos_seed();
    let mut cfg = drifted(Policy::MinEnergyUnderDeadline);
    cfg.governor.seed = seed;

    // Training fingerprints bind the stream seed, so the chaos seed gets
    // its own trained template registry (copied fresh per crash point).
    let template = test_dir(&format!("chaos-template-{seed}"));
    train_and_publish(&cfg.governor, &ModelRegistry::open(&template))
        .expect("train chaos-seed models");
    let chaos_registry = |name: &str| {
        let dir = test_dir(name);
        copy_tree(&template, &dir);
        ModelRegistry::open(&dir)
    };

    let ref_dir = test_dir(&format!("chaos-ref-{seed}"));
    let reference = run_lifecycle(
        &cfg,
        &chaos_registry(&format!("chaos-ref-reg-{seed}")),
        &ref_dir,
        false,
    )
    .expect("uninterrupted reference run");
    let ref_journal =
        std::fs::read_to_string(lifecycle::journal_path(&ref_dir)).expect("reference journal");
    // Header + every event is one append.
    let total_appends = reference.events.len() as u64 + 1;
    assert!(total_appends >= 5, "chaos run produced too few boundaries");

    for k in 1..=total_appends {
        let registry = chaos_registry(&format!("chaos-reg-{seed}-{k}"));
        let dir = test_dir(&format!("chaos-run-{seed}-{k}"));

        let mut crashing = cfg.clone();
        crashing.crash_after_appends = Some(k);
        let err = run_lifecycle(&crashing, &registry, &dir, false)
            .expect_err("injected crash must abort the run");
        assert!(
            matches!(err, governor::LifecycleError::InjectedCrash { .. }),
            "crash {k}: unexpected error {err:?}"
        );

        let resumed = run_lifecycle(&cfg, &registry, &dir, true)
            .unwrap_or_else(|e| panic!("resume after crash {k} failed: {e:?}"));
        assert_eq!(
            resumed, reference,
            "resume after crash at append {k} diverged from the uninterrupted run"
        );
        let journal =
            std::fs::read_to_string(lifecycle::journal_path(&dir)).expect("resumed journal");
        assert_eq!(
            journal, ref_journal,
            "journal after crash at append {k} diverged"
        );
    }
}

// ---------------------------------------------------------------------
// Serving-cache invalidation across every shard
// ---------------------------------------------------------------------

#[test]
fn promote_and_rollback_invalidate_the_memo_cache_in_every_shard() {
    let registry = ModelRegistry::open(template_registry());
    let (ligen, _, _) = registry.load("ligen", None).expect("ligen model");
    let (cronos, _, _) = registry.load("cronos", None).expect("cronos model");

    let freqs: Vec<f64> = (0..8).map(|i| 900.0 + 100.0 * i as f64).collect();
    let mut engine = PredictionEngine::new(EngineConfig {
        freqs,
        queue_capacity: 64,
        max_batch: 16,
    });
    engine.install_model("ligen", ligen.clone());
    engine.install_model("ligen#canary", ligen.clone());
    engine.install_model("cronos", cronos);

    // Warm the cache with enough distinct feature vectors that every one
    // of the 16 shards holds entries for each key.
    let mut warm = |app: &str, width: usize| {
        for i in 0..512u64 {
            let features: Vec<f64> = (0..width)
                .map(|j| 10.0 + (i * 31 + j as u64 * 7) as f64)
                .collect();
            engine
                .try_enqueue(PredictionRequest {
                    job_id: i,
                    app: app.to_string(),
                    features,
                })
                .expect("enqueue");
            while engine.queue_len() > 0 {
                for (_, served) in engine.drain_batch() {
                    served.expect("serve");
                }
            }
        }
    };
    let ligen_width = 3;
    let cronos_width = 3;
    warm("ligen", ligen_width);
    warm("ligen#canary", ligen_width);
    warm("cronos", cronos_width);

    fn all_shards_populated(engine: &PredictionEngine, app: &str) -> bool {
        let per_shard = engine.cached_entries_per_shard(app);
        assert_eq!(per_shard.len(), 16);
        per_shard.iter().all(|&n| n > 0)
    }
    assert!(all_shards_populated(&engine, "ligen"));
    assert!(all_shards_populated(&engine, "ligen#canary"));
    assert!(all_shards_populated(&engine, "cronos"));

    // Promote: the canary model replaces the stable key — every shard's
    // entries for the stale incumbent must go; the canary channel closes.
    engine.install_model("ligen", ligen);
    assert!(engine
        .cached_entries_per_shard("ligen")
        .iter()
        .all(|&n| n == 0));
    engine.remove_model("ligen#canary");
    assert!(engine
        .cached_entries_per_shard("ligen#canary")
        .iter()
        .all(|&n| n == 0));

    // Rollback on the other app's canary: removal clears every shard and
    // leaves unrelated apps untouched.
    let before = engine.cached_entries_per_shard("cronos");
    engine.remove_model("ligen");
    assert!(engine
        .cached_entries_per_shard("ligen")
        .iter()
        .all(|&n| n == 0));
    assert_eq!(engine.cached_entries_per_shard("cronos"), before);
    assert!(all_shards_populated(&engine, "cronos"));
}

// ---------------------------------------------------------------------
// Registry hardening: corrupt non-latest versions are skipped and logged
// ---------------------------------------------------------------------

#[test]
fn corrupt_versions_are_skipped_with_a_typed_event() {
    let registry = fresh_registry("corrupt-skip");
    let (model, artifact, v1) = registry.load("ligen", None).expect("ligen v1");
    assert_eq!(v1, 1);
    let fingerprint = artifact.training_fingerprint;
    let v2 = registry
        .publish("ligen", &model, fingerprint)
        .expect("publish v2");
    assert_eq!(v2, 2);

    // Flip a payload byte in the newest version: checksum mismatch.
    let path = registry.root().join("ligen").join("v0002.json");
    let text = std::fs::read_to_string(&path).expect("read v2");
    std::fs::write(&path, text.replacen("algorithm", "algoXithm", 1)).expect("corrupt v2");

    let (_, healthy_artifact, version, events) = registry
        .load_latest_healthy("ligen", Some(fingerprint))
        .expect("healthy load");
    assert_eq!(version, 1);
    assert_eq!(healthy_artifact.training_fingerprint, fingerprint);
    assert_eq!(events.len(), 1);
    assert!(
        matches!(
            &events[0],
            RegistryEvent::CorruptSkipped { name, version: 2, .. } if name == "ligen"
        ),
        "unexpected events {events:?}"
    );

    // A dangling canary pointer (crash between retire and pointer
    // removal) heals to "no canary" with its own typed event.
    std::fs::write(
        registry.root().join("ligen").join("canary.json"),
        "{\"version\": 99}",
    )
    .expect("write dangling pointer");
    let (canary, event) = registry.canary("ligen").expect("canary read");
    assert_eq!(canary, None);
    assert_eq!(
        event,
        Some(RegistryEvent::DanglingCanary {
            name: "ligen".to_string(),
            version: 99,
        })
    );
}
