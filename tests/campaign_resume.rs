//! Crash/resume suite for campaign supervision.
//!
//! The campaign contract under test: kill the process at **any** journal
//! record boundary (or mid-append, leaving a torn line), re-run with
//! `resume = true`, and the completed campaign is **bit-identical** to an
//! uninterrupted run — including its fleet metrics. On top of that, the
//! breaker/eviction path must finish a campaign on the surviving devices
//! when one device is permanently lost, and every unrecoverable condition
//! (foreign journal, config drift, fully-evicted fleet) must surface as a
//! typed [`CampaignError`], never a panic and never silent data loss.
//!
//! The CI chaos-resume job re-runs this file under a matrix of fault
//! seeds via `CAMPAIGN_CHAOS_SEED` (see `.github/workflows/ci.yml`).

use std::fs;
use std::path::PathBuf;

use cronos::Grid;
use energy_model::campaign::{journal_path, snapshot_path, FailureKind, JournalRecord};
use energy_model::persist::read_journal;
use energy_model::{
    characterize_with_options, run_campaign, BreakerConfig, CampaignConfig, CampaignError,
    CampaignOutcome, DeviceSlot, SweepOptions, Workload,
};
use gpu_sim::{DeviceSpec, FaultPlan, Schedule, ThrottleWindow};

/// Fault seed for the chaos matrix: CI re-runs the whole file under
/// several seeds; locally it defaults to the one the golden values in
/// no test depend on numerically (every assertion is self-relative).
fn chaos_seed() -> u64 {
    std::env::var("CAMPAIGN_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20230521)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "energy-model-campaign-{}-{}-{}",
        std::process::id(),
        name,
        chaos_seed()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_cronos() -> cronos::GpuCronos {
    cronos::GpuCronos::new(Grid::cubic(10, 5, 5), 2)
}

fn small_ligen() -> ligen::GpuLigen {
    ligen::GpuLigen::new(2, 89, 8)
}

/// A plan that misbehaves without ever producing a *permanent* error:
/// rejected clock requests, throttling, counter resets. The queue rides
/// all of these out, so a campaign over it matches the plain sweep.
fn nonfatal_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .reject_set_frequency(Schedule::Prob(0.25))
        .reset_energy_counter(Schedule::Prob(0.15))
        .throttle(
            Schedule::Prob(0.2),
            ThrottleWindow {
                cap_mhz: 700.0,
                launches: 2,
            },
        )
}

/// A plan that also drops launches hard enough to exhaust the retry
/// budget now and then: produces permanent `SubmitError`s, breaker trips
/// and re-scheduling — the interesting journal shapes for resume.
fn flaky_plan(seed: u64) -> FaultPlan {
    nonfatal_plan(seed).fail_launches(Schedule::Prob(0.6))
}

fn base_config(spec: DeviceSpec, slots: Vec<DeviceSlot>) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(spec, slots, vec![600.0, 900.0, 1200.0]);
    cfg.reps = 2;
    cfg.noise_seed = Some(chaos_seed());
    cfg.breaker = BreakerConfig {
        failure_threshold: 2,
        cooldown_ticks: 2,
        max_trips: 2,
    };
    cfg
}

fn run_fresh(cfg: &CampaignConfig, workloads: &[&dyn Workload], name: &str) -> CampaignOutcome {
    run_campaign(cfg, workloads, &scratch(name), false).expect("campaign must complete")
}

// ---- Golden equivalence with the plain sweep ----

#[test]
fn healthy_single_slot_campaign_matches_the_plain_sweep_bit_for_bit() {
    for spec in [DeviceSpec::v100(), DeviceSpec::mi100()] {
        let cronos = small_cronos();
        let cfg = base_config(spec.clone(), vec![DeviceSlot::healthy("gpu0")]);
        let outcome = run_fresh(&cfg, &[&cronos], &format!("plain-{}", spec.name));

        let opts = SweepOptions {
            reps: cfg.reps,
            noise_seed: cfg.noise_seed,
            faults: FaultPlan::none(),
            retry: cfg.retry,
            remeasure_limit: cfg.remeasure_limit,
            telemetry: None,
        };
        let plain = characterize_with_options(&spec, &cronos, &cfg.freqs, &opts);
        assert_eq!(outcome.results.len(), 1);
        assert_eq!(
            outcome.results[0], plain,
            "campaign must not perturb the sweep"
        );
        assert_eq!(outcome.metrics.items_rescheduled, 0);
        assert_eq!(outcome.metrics.devices_evicted, 0);
        assert!(outcome.metrics.degradation.is_clean());
    }
}

#[test]
fn nonfatal_faults_single_slot_campaign_matches_the_plain_sweep() {
    let spec = DeviceSpec::mi100();
    let plan = nonfatal_plan(chaos_seed());
    let ligen = small_ligen();
    let cfg = base_config(
        spec.clone(),
        vec![DeviceSlot::with_health("gpu0", plan.clone())],
    );
    let outcome = run_fresh(&cfg, &[&ligen], "nonfatal");

    let opts = SweepOptions {
        reps: cfg.reps,
        noise_seed: cfg.noise_seed,
        faults: plan,
        retry: cfg.retry,
        remeasure_limit: cfg.remeasure_limit,
        telemetry: None,
    };
    let plain = characterize_with_options(&spec, &ligen, &cfg.freqs, &opts);
    assert_eq!(outcome.results[0], plain);
    assert_eq!(
        outcome.metrics.items_rescheduled, 0,
        "nothing was permanent"
    );
}

// ---- The tentpole: kill anywhere, resume, get identical bits ----

#[test]
fn resume_from_every_journal_record_boundary_is_bit_identical() {
    let spec = DeviceSpec::v100();
    let cronos = small_cronos();
    let ligen = small_ligen();
    let workloads: Vec<&dyn Workload> = vec![&cronos, &ligen];
    let cfg = base_config(
        spec,
        vec![
            DeviceSlot::healthy("gpu0"),
            DeviceSlot::with_health("gpu1", flaky_plan(chaos_seed())),
        ],
    );

    let golden_dir = scratch("boundary-golden");
    let golden = run_campaign(&cfg, &workloads, &golden_dir, false).expect("golden run");
    let journal = fs::read_to_string(journal_path(&golden_dir)).unwrap();
    let lines: Vec<&str> = journal.lines().collect();
    // Header + one Done per item is the fault-free minimum; the flaky
    // slot must have added Failed records beyond that.
    let min_lines = 1 + workloads.len() * (1 + cfg.freqs.len());
    assert!(
        lines.len() > min_lines,
        "the flaky slot should have added Failed records to the journal"
    );

    for cut in 0..=lines.len() {
        let dir = scratch(&format!("boundary-{cut}"));
        if cut > 0 {
            let prefix: String = lines[..cut].iter().map(|l| format!("{l}\n")).collect();
            fs::write(journal_path(&dir), prefix).unwrap();
        }
        let resumed = run_campaign(&cfg, &workloads, &dir, true)
            .unwrap_or_else(|e| panic!("resume from {cut}/{} records: {e}", lines.len()));
        assert_eq!(
            resumed,
            golden,
            "resume from {cut}/{} records must be bit-identical",
            lines.len()
        );
    }
}

#[test]
fn resume_from_a_torn_mid_append_crash_is_bit_identical() {
    let spec = DeviceSpec::mi100();
    let cronos = small_cronos();
    let workloads: Vec<&dyn Workload> = vec![&cronos];
    let cfg = base_config(
        spec,
        vec![
            DeviceSlot::healthy("gpu0"),
            DeviceSlot::with_health("gpu1", flaky_plan(chaos_seed() ^ 0xbeef)),
        ],
    );

    let golden_dir = scratch("torn-golden");
    let golden = run_campaign(&cfg, &workloads, &golden_dir, false).expect("golden run");
    let journal = fs::read(journal_path(&golden_dir)).unwrap();

    // Cut the journal mid-line at several byte offsets: the torn tail is
    // an append that never committed, so resume redoes that item. The
    // nastiest offset is `nl` itself — the record's JSON is complete but
    // its committing newline is not, so the tail *parses* yet must still
    // be healed away, or the next append would extend the same line and
    // corrupt the journal for every later resume.
    let newlines: Vec<usize> = journal
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| (b == b'\n').then_some(i))
        .collect();
    for (k, &nl) in newlines.iter().enumerate().skip(1) {
        let mid_line = newlines[k - 1] + 1 + (nl - newlines[k - 1]) / 2;
        for torn_at in [mid_line, nl] {
            let dir = scratch(&format!("torn-{k}-{torn_at}"));
            fs::write(journal_path(&dir), &journal[..torn_at]).unwrap();
            let resumed = run_campaign(&cfg, &workloads, &dir, true)
                .unwrap_or_else(|e| panic!("resume from torn byte {torn_at}: {e}"));
            assert_eq!(resumed, golden, "torn-tail resume at byte {torn_at}");
            // The healed journal must stay resumable: a second resume of
            // the same directory reads it back cleanly.
            let again = run_campaign(&cfg, &workloads, &dir, true)
                .unwrap_or_else(|e| panic!("re-resume after torn byte {torn_at}: {e}"));
            assert_eq!(again, golden, "re-resume after torn byte {torn_at}");
        }
    }
}

#[test]
fn repeated_injected_crashes_with_compaction_converge_to_the_golden_run() {
    let spec = DeviceSpec::v100();
    let cronos = small_cronos();
    let workloads: Vec<&dyn Workload> = vec![&cronos];
    let mut cfg = base_config(
        spec,
        vec![
            DeviceSlot::healthy("gpu0"),
            DeviceSlot::with_health("gpu1", flaky_plan(chaos_seed().rotate_left(7))),
        ],
    );

    let golden = run_fresh(&cfg, &workloads, "crash-golden");

    // Crash every 3 appends, compacting every 2: exercises the snapshot
    // write, the journal swap, and resume-from-snapshot-plus-tail.
    cfg.snapshot_every = 2;
    cfg.crash_after_appends = Some(3);
    let dir = scratch("crash-loop");
    let mut resumed = false;
    let outcome = loop {
        match run_campaign(&cfg, &workloads, &dir, resumed) {
            Ok(outcome) => break outcome,
            Err(CampaignError::InjectedCrash { appends }) => {
                assert_eq!(appends, 3);
                resumed = true;
            }
            Err(e) => panic!("only injected crashes are expected: {e}"),
        }
    };
    assert!(resumed, "the crash hook must have fired at least once");
    assert!(
        snapshot_path(&dir).exists(),
        "compaction must have written a snapshot"
    );
    assert_eq!(
        outcome, golden,
        "crash-riddled run must match the golden run"
    );

    // Resuming a finished campaign re-derives the same outcome without
    // measuring anything new.
    let again = run_campaign(&cfg, &workloads, &dir, true).expect("no-op resume");
    assert_eq!(again, golden);
}

// ---- Eviction: losing a device must not lose the campaign ----

#[test]
fn a_permanently_lost_device_is_evicted_and_survivors_finish_the_work() {
    let spec = DeviceSpec::v100();
    let cronos = small_cronos();
    let workloads: Vec<&dyn Workload> = vec![&cronos];
    let dead = FaultPlan::seeded(chaos_seed()).fail_launches(Schedule::Prob(1.0));
    let mut cfg = base_config(
        spec.clone(),
        vec![
            DeviceSlot::healthy("gpu0"),
            DeviceSlot::with_health("gpu1", dead),
        ],
    );
    // Enough items that the dead slot's cooldown elapses and its failed
    // half-open probe reaches the eviction threshold mid-campaign.
    cfg.freqs = vec![550.0, 650.0, 750.0, 850.0, 950.0, 1050.0];
    let outcome = run_fresh(&cfg, &workloads, "evict");

    assert_eq!(outcome.metrics.devices_evicted, 1);
    assert_eq!(outcome.metrics.evicted_slots, vec!["gpu1".to_string()]);
    assert!(outcome.metrics.items_rescheduled > 0);
    assert!(outcome.metrics.backend_failures > 0);
    // The eviction is recorded in the merged degradation audit too.
    assert_eq!(outcome.metrics.degradation.devices_evicted, 1);
    assert_eq!(
        outcome.metrics.degradation.items_rescheduled,
        outcome.metrics.items_rescheduled
    );

    // The healthy survivor is fault-inert, so every accepted measurement
    // is exactly what a plain single-device sweep produces — failures on
    // the dead device must not contaminate the data.
    let opts = SweepOptions {
        reps: cfg.reps,
        noise_seed: cfg.noise_seed,
        faults: FaultPlan::none(),
        retry: cfg.retry,
        remeasure_limit: cfg.remeasure_limit,
        telemetry: None,
    };
    let plain = characterize_with_options(&spec, &cronos, &cfg.freqs, &opts);
    assert_eq!(outcome.results[0].0, plain.0);
}

#[test]
fn an_all_dead_fleet_fails_typed_with_the_journal_intact() {
    let cronos = small_cronos();
    let workloads: Vec<&dyn Workload> = vec![&cronos];
    let dead = FaultPlan::seeded(chaos_seed()).fail_launches(Schedule::Prob(1.0));
    let cfg = base_config(
        DeviceSpec::v100(),
        vec![DeviceSlot::with_health("gpu0", dead)],
    );
    let dir = scratch("all-dead");
    match run_campaign(&cfg, &workloads, &dir, false) {
        Err(CampaignError::AllDevicesLost { pending, completed }) => {
            assert!(pending > 0);
            assert_eq!(completed, 0);
        }
        other => panic!("expected AllDevicesLost, got {other:?}"),
    }
    // Every failed attempt is journaled: the work is not lost, a repaired
    // fleet could resume it.
    let recs = read_journal::<JournalRecord>(&journal_path(&dir)).unwrap();
    assert!(recs
        .records
        .iter()
        .any(|r| matches!(r, JournalRecord::Failed { evicted: true, .. })));
}

#[test]
fn watchdog_deadline_misses_trip_the_breaker() {
    let cronos = small_cronos();
    let workloads: Vec<&dyn Workload> = vec![&cronos];
    let mut cfg = base_config(DeviceSpec::v100(), vec![DeviceSlot::healthy("gpu0")]);
    // Impossibly tight deadline: every measurement misses it, the breaker
    // trips, and the (single-device) fleet dies — deterministically.
    cfg.watchdog_deadline_s = Some(1e-9);
    let dir = scratch("watchdog");
    match run_campaign(&cfg, &workloads, &dir, false) {
        Err(CampaignError::AllDevicesLost { .. }) => {}
        other => panic!("expected AllDevicesLost, got {other:?}"),
    }
    let recs = read_journal::<JournalRecord>(&journal_path(&dir)).unwrap();
    assert!(recs.records.iter().any(|r| matches!(
        r,
        JournalRecord::Failed {
            kind: FailureKind::Watchdog,
            ..
        }
    )));
}

// ---- Guard rails ----

#[test]
fn a_fresh_run_refuses_an_existing_journal() {
    let cronos = small_cronos();
    let workloads: Vec<&dyn Workload> = vec![&cronos];
    let cfg = base_config(DeviceSpec::v100(), vec![DeviceSlot::healthy("gpu0")]);
    let dir = scratch("exists");
    run_campaign(&cfg, &workloads, &dir, false).expect("first run");
    match run_campaign(&cfg, &workloads, &dir, false) {
        Err(CampaignError::JournalExists { path }) => {
            assert_eq!(path, journal_path(&dir));
        }
        other => panic!("expected JournalExists, got {other:?}"),
    }
}

#[test]
fn resume_under_a_different_configuration_is_rejected() {
    let cronos = small_cronos();
    let workloads: Vec<&dyn Workload> = vec![&cronos];
    let mut cfg = base_config(DeviceSpec::v100(), vec![DeviceSlot::healthy("gpu0")]);
    let dir = scratch("mismatch");
    run_campaign(&cfg, &workloads, &dir, false).expect("first run");
    cfg.freqs.push(1500.0); // silently different data — must be refused
    match run_campaign(&cfg, &workloads, &dir, true) {
        Err(CampaignError::ConfigMismatch { expected, found }) => {
            assert_ne!(expected, found);
        }
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

#[test]
fn resume_with_a_changed_workload_input_is_rejected() {
    let cronos = small_cronos();
    let workloads: Vec<&dyn Workload> = vec![&cronos];
    let cfg = base_config(DeviceSpec::v100(), vec![DeviceSlot::healthy("gpu0")]);
    let dir = scratch("input-drift");
    run_campaign(&cfg, &workloads, &dir, false).expect("first run");
    // Same workload *name*, different input: the recorded trace differs,
    // so the fingerprint must refuse to merge the measurements.
    let bigger = cronos::GpuCronos::new(Grid::cubic(12, 5, 5), 2);
    let drifted: Vec<&dyn Workload> = vec![&bigger];
    match run_campaign(&cfg, &drifted, &dir, true) {
        Err(CampaignError::ConfigMismatch { expected, found }) => {
            assert_ne!(expected, found);
        }
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

#[test]
fn a_corrupted_mid_journal_record_is_rejected_not_skipped() {
    let cronos = small_cronos();
    let workloads: Vec<&dyn Workload> = vec![&cronos];
    let cfg = base_config(DeviceSpec::v100(), vec![DeviceSlot::healthy("gpu0")]);
    let dir = scratch("corrupt");
    run_campaign(&cfg, &workloads, &dir, false).expect("first run");
    let journal = fs::read_to_string(journal_path(&dir)).unwrap();
    let lines: Vec<&str> = journal.lines().collect();
    let mut damaged: Vec<String> = lines.iter().map(|l| (*l).to_string()).collect();
    damaged[2] = "{\"Done\":garbage".to_string();
    fs::write(
        journal_path(&dir),
        damaged.iter().map(|l| format!("{l}\n")).collect::<String>(),
    )
    .unwrap();
    match run_campaign(&cfg, &workloads, &dir, true) {
        Err(CampaignError::Persist(_)) | Err(CampaignError::Corrupt { .. }) => {}
        other => panic!("expected corruption error, got {other:?}"),
    }
}
