//! Fleet end-to-end suite: the differential golden test against the
//! single-device governor, the heterogeneous pinned-seed regression
//! guard, and breaker-driven chaos.
//!
//! Three contracts from `governor::fleet`'s docs, pinned here:
//!
//! * **Differential** — a fleet of exactly one V100 with stealing
//!   disabled is bit-identical (energy, misses, per-job clock decisions)
//!   to `governor::sim::run_governor` on the same seed, for every policy.
//! * **The fleet headline** — on the pinned seed, min-energy placement
//!   over 2×V100 + 2×MI100 beats both round-robin-at-default-clock and
//!   the single-device min-energy governor on total energy, at a
//!   deadline-miss rate no worse than either.
//! * **Eviction drains, never drops** — with 1..N-1 devices evicted
//!   mid-run by deterministic fault plans, the survivors complete the
//!   full job set, and `devices_evicted` / `items_rescheduled` reconcile
//!   exactly with the journal.
//!
//! The expensive fixture (per-class trained models) is built once per
//! test binary behind a lazy lock. `FLEET_CHAOS_SEED` reruns the chaos
//! tests under a different fault seed (the CI matrix sets it).

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use energy_model::telemetry::Telemetry;
use energy_model::BreakerConfig;
use governor::{
    run_fleet, run_governor, train_and_publish, train_and_publish_fleet, FleetConfig, FleetDevice,
    FleetEvent, GovernorConfig, ModelRegistry, Policy, StealPolicy,
};
use gpu_sim::{DeviceSpec, FaultPlan, Schedule};

/// One shared registry holding the pinned single-device artifacts
/// (`cronos`, `ligen`) *and* the per-class fleet artifacts
/// (`cronos--nvidia-v100`, `ligen--amd-mi100`, …): training dominates the
/// suite's cost, so pay it once.
fn shared_registry() -> &'static ModelRegistry {
    static SHARED: OnceLock<ModelRegistry> = OnceLock::new();
    SHARED.get_or_init(|| {
        let dir = test_dir("shared-registry");
        let registry = ModelRegistry::open(&dir);
        train_and_publish(&GovernorConfig::pinned(Policy::DefaultClock), &registry)
            .expect("train and publish single-device models");
        train_and_publish_fleet(&FleetConfig::pinned(), &registry)
            .expect("train and publish per-class fleet models");
        registry
    })
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleet-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Fault seed for the chaos tests; CI sweeps it through a small matrix.
fn chaos_seed() -> u64 {
    std::env::var("FLEET_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// A faster single-device fleet for the per-policy differentials.
fn quick_single(policy: Policy) -> FleetConfig {
    let mut cfg = FleetConfig::single(DeviceSpec::v100(), policy);
    cfg.n_jobs = 16;
    cfg.freq_stride = 4;
    cfg
}

/// Asserts a fleet report is bit-identical to its single-device
/// counterpart: same decision trail, same measurements, same totals,
/// same cache behaviour.
fn assert_differential(fleet_cfg: &FleetConfig, registry: &ModelRegistry) {
    let fleet = run_fleet(fleet_cfg, registry);
    let gov = run_governor(&fleet_cfg.governor_equivalent(DeviceSpec::v100()), registry);

    assert_eq!(fleet.n_jobs, gov.n_jobs);
    assert_eq!(fleet.decisions.len(), gov.decisions.len());
    for (f, g) in fleet.decisions.iter().zip(&gov.decisions) {
        // Derived PartialEq covers ids, labels, clocks, fallbacks and
        // flags; the explicit bit checks make float identity strict.
        assert_eq!(&f.record, g, "job {} decision diverged", g.job_id);
        assert_eq!(
            f.record.measured_time_s.to_bits(),
            g.measured_time_s.to_bits()
        );
        assert_eq!(
            f.record.measured_energy_j.to_bits(),
            g.measured_energy_j.to_bits()
        );
        assert_eq!(
            f.record.requested_mhz.map(f64::to_bits),
            g.requested_mhz.map(f64::to_bits)
        );
        assert_eq!(
            f.record.predicted_time_s.map(f64::to_bits),
            g.predicted_time_s.map(f64::to_bits)
        );
        assert_eq!(f.device_index, 0);
        assert!(!f.stolen);
    }
    assert_eq!(fleet.total_energy_j.to_bits(), gov.total_energy_j.to_bits());
    assert_eq!(fleet.total_time_s.to_bits(), gov.total_time_s.to_bits());
    assert_eq!(fleet.deadline_misses, gov.deadline_misses);
    assert_eq!(fleet.miss_rate.to_bits(), gov.miss_rate.to_bits());
    assert_eq!(fleet.fallbacks, gov.fallbacks);
    assert_eq!(fleet.admission_rejected, gov.admission_rejected);
    assert_eq!(fleet.cache, gov.cache);
    assert_eq!(fleet.jobs_stolen, 0);
    assert_eq!(fleet.items_rescheduled, 0);
    assert_eq!(fleet.devices_evicted, 0);
    assert_eq!(fleet.affinity_fallbacks, 0);
}

// ---------------------------------------------------------------------
// Differential golden tests: one-device fleet ≡ single-device governor
// ---------------------------------------------------------------------

#[test]
fn single_v100_fleet_is_bit_identical_to_governor_for_every_policy() {
    let registry = shared_registry();
    for policy in Policy::all() {
        assert_differential(&quick_single(policy), registry);
    }
}

#[test]
fn single_v100_fleet_matches_governor_on_the_full_pinned_stream() {
    let registry = shared_registry();
    assert_differential(
        &FleetConfig::single(DeviceSpec::v100(), Policy::MinEnergyUnderDeadline),
        registry,
    );
}

#[test]
fn single_v100_differential_holds_under_device_faults() {
    let registry = shared_registry();
    let mut cfg = quick_single(Policy::MinEnergyUnderDeadline);
    // Purpose-0 splitting keeps device 0 on the parent seed, so the
    // single-device fleet replays the un-split plan bit-for-bit.
    cfg.device_faults = FaultPlan::seeded(chaos_seed()).reject_set_frequency(Schedule::Prob(0.3));
    assert_differential(&cfg, registry);
}

// ---------------------------------------------------------------------
// Determinism and telemetry inertness
// ---------------------------------------------------------------------

#[test]
fn fleet_runs_replay_bit_identically() {
    let registry = shared_registry();
    let cfg = FleetConfig::pinned();
    let a = run_fleet(&cfg, registry);
    let b = run_fleet(&cfg, registry);
    assert_eq!(a, b);
    let rr = FleetConfig::pinned_round_robin();
    assert_eq!(run_fleet(&rr, registry), run_fleet(&rr, registry));
}

#[test]
fn armed_telemetry_leaves_fleet_results_bit_identical() {
    let registry = shared_registry();
    let inert = run_fleet(&FleetConfig::pinned(), registry);

    let telemetry = Telemetry::new();
    let mut cfg = FleetConfig::pinned();
    cfg.telemetry = Some(Arc::clone(&telemetry));
    let armed = run_fleet(&cfg, registry);

    assert_eq!(inert, armed);
    let jobs = telemetry.registry().counter("fleet.jobs_total").get();
    assert_eq!(jobs as usize, armed.n_jobs);
    assert_eq!(
        telemetry.registry().gauge("fleet.total_energy_j").get(),
        armed.total_energy_j
    );
}

// ---------------------------------------------------------------------
// The fleet headline (the CI regression guard)
// ---------------------------------------------------------------------

#[test]
fn pinned_fleet_beats_round_robin_and_single_device_min_energy() {
    let registry = shared_registry();
    let fleet = run_fleet(&FleetConfig::pinned(), registry);
    let round_robin = run_fleet(&FleetConfig::pinned_round_robin(), registry);
    let single = run_governor(
        &GovernorConfig::pinned(Policy::MinEnergyUnderDeadline),
        registry,
    );

    assert_eq!(fleet.n_jobs, 40);
    assert_eq!(round_robin.n_jobs, 40);
    assert_eq!(single.n_jobs, 40);

    assert!(
        fleet.total_energy_j <= round_robin.total_energy_j,
        "fleet min-energy ({:.1} J) must not exceed round-robin default-clock ({:.1} J)",
        fleet.total_energy_j,
        round_robin.total_energy_j
    );
    assert!(
        fleet.total_energy_j <= single.total_energy_j,
        "fleet min-energy ({:.1} J) must not exceed single-device min-energy ({:.1} J)",
        fleet.total_energy_j,
        single.total_energy_j
    );
    assert!(
        fleet.miss_rate <= round_robin.miss_rate,
        "fleet miss rate {:.3} exceeds round-robin {:.3}",
        fleet.miss_rate,
        round_robin.miss_rate
    );
    assert!(
        fleet.miss_rate <= single.miss_rate,
        "fleet miss rate {:.3} exceeds single-device {:.3}",
        fleet.miss_rate,
        single.miss_rate
    );

    // The heterogeneous fleet actually uses its heterogeneity: both
    // classes run work, and placement is energy-driven, not accidental.
    let classes_used: std::collections::BTreeSet<&str> =
        fleet.decisions.iter().map(|d| d.class.as_str()).collect();
    assert!(classes_used.len() > 1, "only one class ever ran a job");
    assert!(fleet.cache.hits > 0);
    assert_eq!(fleet.devices_evicted, 0);
    assert_eq!(fleet.affinity_fallbacks, 0);
}

// ---------------------------------------------------------------------
// Chaos: breaker-driven eviction with survivors completing the set
// ---------------------------------------------------------------------

/// Evicts `n_faulty` of the pinned fleet's four devices via per-device
/// fault overrides and checks the survivors complete every job.
fn run_eviction_chaos(n_faulty: usize, steal: StealPolicy) {
    let registry = shared_registry();
    let mut cfg = FleetConfig::pinned();
    cfg.steal = steal;
    // One failure trips; one trip evicts: the n_faulty always-failing
    // devices evict on their first dispatched job.
    cfg.breaker = BreakerConfig {
        failure_threshold: 1,
        cooldown_ticks: 1,
        max_trips: 1,
    };
    for device in cfg.devices.iter_mut().take(n_faulty) {
        device.faults = Some(FaultPlan::seeded(chaos_seed()).fail_launches(Schedule::Prob(1.0)));
    }

    let report = run_fleet(&cfg, registry);

    // Conservation: every job recorded exactly once, and — since at
    // least one clean device survives — every job completed in deadline
    // terms that still reconcile.
    assert_eq!(report.decisions.len(), cfg.n_jobs);
    let mut ids: Vec<u64> = report.decisions.iter().map(|d| d.record.job_id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..cfg.n_jobs as u64).collect::<Vec<_>>());
    assert!(
        report.decisions.iter().all(|d| d.record.completed),
        "a job failed permanently despite clean survivors"
    );

    // The faulty devices — and only they — were evicted.
    assert_eq!(report.devices_evicted, n_faulty as u64);
    for (i, d) in report.devices.iter().enumerate() {
        assert_eq!(d.evicted, i < n_faulty, "device {i} eviction state wrong");
        if i < n_faulty {
            assert_eq!(d.trips, 1);
        }
    }

    // Metrics reconcile with the journal, event by event.
    let evictions = report
        .journal
        .iter()
        .filter(|e| matches!(e, FleetEvent::Tripped { evicted: true, .. }))
        .count();
    assert_eq!(evictions as u64, report.devices_evicted);
    let rescheduled = report
        .journal
        .iter()
        .filter(|e| matches!(e, FleetEvent::Rescheduled { .. }))
        .count();
    assert_eq!(rescheduled as u64, report.items_rescheduled);
    assert_eq!(rescheduled as u64, report.degradation.items_rescheduled);
    let stolen = report
        .journal
        .iter()
        .filter(|e| matches!(e, FleetEvent::Stolen { .. }))
        .count();
    assert_eq!(stolen as u64, report.jobs_stolen);
    let degraded = report
        .journal
        .iter()
        .filter(|e| matches!(e, FleetEvent::AffinityDegraded { .. }))
        .count();
    assert_eq!(degraded as u64, report.affinity_fallbacks);
    assert!(
        report.items_rescheduled > 0,
        "evicting {n_faulty} devices must reschedule something"
    );

    // Evicted devices ran nothing to completion.
    for d in report.decisions.iter() {
        assert!(
            d.device_index >= n_faulty,
            "job {} completed on evicted device {}",
            d.record.job_id,
            d.device_index
        );
    }

    // And chaos replays deterministically.
    assert_eq!(report, run_fleet(&cfg, registry));
}

#[test]
fn one_eviction_survivors_complete_the_set() {
    run_eviction_chaos(1, StealPolicy::WithinClass);
}

#[test]
fn two_evictions_survivors_complete_the_set() {
    run_eviction_chaos(2, StealPolicy::Anywhere);
}

#[test]
fn three_evictions_last_survivor_completes_the_set() {
    run_eviction_chaos(3, StealPolicy::Anywhere);
}

#[test]
fn all_devices_evicted_fails_jobs_without_wedging() {
    let registry = shared_registry();
    let mut cfg = FleetConfig::pinned();
    cfg.n_jobs = 12;
    cfg.breaker = BreakerConfig {
        failure_threshold: 1,
        cooldown_ticks: 1,
        max_trips: 1,
    };
    for device in cfg.devices.iter_mut() {
        device.faults = Some(FaultPlan::seeded(chaos_seed()).fail_launches(Schedule::Prob(1.0)));
    }
    let report = run_fleet(&cfg, registry);

    // Nothing wedged; every job is recorded (as failed), all four
    // devices are gone, and the run still replays bit-identically.
    assert_eq!(report.decisions.len(), cfg.n_jobs);
    assert!(report.decisions.iter().all(|d| !d.record.completed));
    assert_eq!(report.devices_evicted, cfg.devices.len() as u64);
    assert_eq!(report.miss_rate, 1.0);
    assert_eq!(report, run_fleet(&cfg, registry));
}

// ---------------------------------------------------------------------
// Work stealing keeps devices busy without breaking anything
// ---------------------------------------------------------------------

#[test]
fn cooling_device_queue_is_stolen_by_idle_peers() {
    let registry = shared_registry();
    let mut cfg = FleetConfig::pinned();
    // Two V100s only; device 0 fails every launch but its breaker never
    // evicts — it trips, cools for a long window, probes, and trips
    // again. Jobs queued behind it would stall for the whole cooldown,
    // so the idle peer must steal them.
    cfg.devices = vec![
        FleetDevice::new("flaky-0", DeviceSpec::v100()),
        FleetDevice::new("steady-1", DeviceSpec::v100()),
    ];
    cfg.devices[0].faults =
        Some(FaultPlan::seeded(chaos_seed()).fail_launches(Schedule::Prob(1.0)));
    cfg.breaker = BreakerConfig {
        failure_threshold: 1,
        cooldown_ticks: 50,
        max_trips: u32::MAX,
    };
    let report = run_fleet(&cfg, registry);

    // Every job completed — all on the steady device — and the steal
    // path did real work.
    assert_eq!(report.decisions.len(), cfg.n_jobs);
    assert!(report.decisions.iter().all(|d| d.record.completed));
    assert!(report.decisions.iter().all(|d| d.device == "steady-1"));
    assert!(
        report.jobs_stolen > 0,
        "idle peer never stole from the cooling device's queue"
    );
    assert!(report.decisions.iter().any(|d| d.stolen));
    assert_eq!(report.devices_evicted, 0);
    assert!(!report.devices[0].evicted);
    assert!(report.devices[0].trips >= 1);
    assert_eq!(report, run_fleet(&cfg, registry));
}

#[test]
fn within_class_stealing_moves_work_and_preserves_the_job_set() {
    let registry = shared_registry();
    let cfg = FleetConfig::pinned();
    let report = run_fleet(&cfg, registry);

    let mut ids: Vec<u64> = report.decisions.iter().map(|d| d.record.job_id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..cfg.n_jobs as u64).collect::<Vec<_>>());

    // Stolen jobs under within-class stealing stay on the class that
    // priced them, so none needs an affinity fallback.
    assert_eq!(report.affinity_fallbacks, 0);
    for d in report.decisions.iter().filter(|d| d.stolen) {
        assert!(d.record.completed);
    }
    // Journal reconciliation for steals.
    let stolen_events = report
        .journal
        .iter()
        .filter(|e| matches!(e, FleetEvent::Stolen { .. }))
        .count();
    assert_eq!(stolen_events as u64, report.jobs_stolen);
    let stolen_in: u64 = report.devices.iter().map(|d| d.stolen_in).sum();
    assert_eq!(stolen_in, report.jobs_stolen);
}
