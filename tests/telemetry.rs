//! End-to-end contract of the observability layer.
//!
//! Two guarantees under test, at the workspace boundary rather than the
//! unit level:
//!
//! 1. **Inertness** — arming a telemetry sink on a sweep or a full
//!    journaled campaign changes *nothing* about the results: every f64,
//!    every diagnostic, every fleet metric is bit-identical to the
//!    disarmed run. Same discipline as the inert `FaultPlan`.
//! 2. **Exporter validity** — `Telemetry::export` writes a Prometheus
//!    text exposition that a scraper would accept and a Chrome
//!    `chrome://tracing` JSON array that parses, with balanced
//!    begin/end span pairs.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use cronos::Grid;
use energy_model::{
    characterize_with_options, run_campaign, CampaignConfig, DeviceSlot, SpanLevel, SweepOptions,
    Telemetry,
};
use gpu_sim::{DeviceSpec, FaultPlan, Schedule, ThrottleWindow};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "energy-model-telemetry-{}-{}",
        std::process::id(),
        name
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_cronos() -> cronos::GpuCronos {
    cronos::GpuCronos::new(Grid::cubic(10, 5, 5), 2)
}

fn small_ligen() -> ligen::GpuLigen {
    ligen::GpuLigen::new(2, 89, 8)
}

/// Faults that degrade measurements without permanent errors — the
/// campaign rides them out, and telemetry must observe without touching.
fn nonfatal_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .reject_set_frequency(Schedule::Prob(0.2))
        .throttle(
            Schedule::Prob(0.1),
            ThrottleWindow {
                cap_mhz: 900.0,
                launches: 3,
            },
        )
        .reset_energy_counter(Schedule::Prob(0.05))
}

fn campaign_config(telemetry: Option<Arc<Telemetry>>) -> CampaignConfig {
    let spec = DeviceSpec::v100();
    let slots = vec![
        DeviceSlot::healthy("gpu0"),
        DeviceSlot::with_health("gpu1", nonfatal_plan(11)),
    ];
    let mut cfg = CampaignConfig::new(spec, slots, vec![500.0, 900.0, 1312.1]);
    cfg.reps = 2;
    cfg.noise_seed = Some(77);
    cfg.telemetry = telemetry;
    cfg
}

#[test]
fn armed_campaign_is_bit_identical_to_disarmed() {
    let cronos = small_cronos();
    let ligen = small_ligen();
    let workloads: Vec<&dyn energy_model::Workload> = vec![&cronos, &ligen];

    let plain = run_campaign(&campaign_config(None), &workloads, &scratch("plain"), false).unwrap();

    let tel = Telemetry::new();
    let armed = run_campaign(
        &campaign_config(Some(Arc::clone(&tel))),
        &workloads,
        &scratch("armed"),
        false,
    )
    .unwrap();

    // Results, diagnostics, and fleet metrics: exact equality, every f64.
    assert_eq!(plain.results, armed.results);
    assert_eq!(plain.metrics, armed.metrics);

    // The sink saw every assignment: 2 workloads × (1 baseline + 3 freqs).
    let snap = tel.registry().snapshot();
    let counter = |name: &str| {
        snap.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| match v {
                energy_model::telemetry::MetricValue::Counter(c) => *c,
                other => panic!("{name} is not a counter: {other:?}"),
            })
    };
    assert_eq!(counter("campaign.items_done"), Some(8));
    assert_eq!(counter("campaign.assignments"), Some(8));
    assert_eq!(
        counter("campaign.items_failed"),
        None,
        "no permanent errors"
    );
    // gpu1's non-fatal faults must be visible through the mirrored
    // queue.* counters (the plan rejects 20 % of clock requests).
    assert!(counter("queue.retries").unwrap_or(0) > 0);
}

#[test]
fn armed_sweep_matches_campaign_and_exports_valid_artifacts() {
    let spec = DeviceSpec::v100();
    let cronos = small_cronos();
    let freqs = [500.0, 900.0, 1312.1];

    let tel = Telemetry::with_trace_level(SpanLevel::Launch);
    let opts = SweepOptions {
        reps: 2,
        noise_seed: Some(77),
        telemetry: Some(Arc::clone(&tel)),
        ..SweepOptions::default()
    };
    let (armed, _) = characterize_with_options(&spec, &cronos, &freqs, &opts);
    let disarmed_opts = SweepOptions {
        telemetry: None,
        ..opts.clone()
    };
    let (plain, _) = characterize_with_options(&spec, &cronos, &freqs, &disarmed_opts);
    assert_eq!(plain, armed);

    let dir = scratch("export");
    tel.export(&dir).unwrap();

    // metrics.prom: every line is a comment or `name value`, with names a
    // scraper accepts ([a-zA-Z_:][a-zA-Z0-9_:]*, optional {labels}).
    let prom = fs::read_to_string(dir.join("metrics.prom")).unwrap();
    assert!(prom.contains("# TYPE sweep_points_priced counter"));
    assert!(prom.contains("sweep_point_time_s_bucket{le=\"+Inf\"}"));
    for line in prom.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap();
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "illegal prometheus metric name: {name}"
        );
        assert!(
            !name.starts_with(|c: char| c.is_ascii_digit()),
            "metric name starts with a digit: {name}"
        );
        value.parse::<f64>().unwrap();
    }

    // metrics.json: parses, and agrees with the live registry.
    let json = fs::read_to_string(dir.join("metrics.json")).unwrap();
    let v: serde::Value = serde_json::from_str(&json).unwrap();
    let priced = v
        .get("sweep.points_priced")
        .and_then(|m| m.get("value"))
        .cloned();
    assert_eq!(priced, Some(serde::Value::U64(1 + freqs.len() as u64)));

    // trace.jsonl: a Chrome-trace JSON array of events with the required
    // keys, balanced begin/end pairs, and non-decreasing timestamps.
    let trace = fs::read_to_string(dir.join("trace.jsonl")).unwrap();
    let parsed: serde::Value = serde_json::from_str(&trace).unwrap();
    let serde::Value::Seq(events) = parsed else {
        panic!("chrome trace must be a JSON array");
    };
    assert!(!events.is_empty());
    let mut depth = 0i64;
    let mut last_ts = f64::NEG_INFINITY;
    for ev in &events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(ev.get(key).is_some(), "event missing `{key}`: {ev:?}");
        }
        let ts = match ev.get("ts").unwrap() {
            serde::Value::F64(x) => *x,
            serde::Value::U64(x) => *x as f64,
            other => panic!("ts must be numeric, got {other:?}"),
        };
        assert!(ts >= last_ts, "timestamps must be non-decreasing");
        last_ts = ts;
        match ev.get("ph").unwrap() {
            serde::Value::Str(s) if s == "B" => depth += 1,
            serde::Value::Str(s) if s == "E" => depth -= 1,
            serde::Value::Str(s) if s == "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
        assert!(depth >= 0, "end before begin");
    }
    assert_eq!(depth, 0, "unbalanced begin/end spans");
    // Launch-level tracing was on: one replay instant per rep per point.
    let replays = events
        .iter()
        .filter(|e| e.get("name") == Some(&serde::Value::Str("replay".into())))
        .count();
    assert_eq!(replays, (1 + freqs.len()) * 2);
}
