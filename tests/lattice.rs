//! Configuration-lattice integration suite.
//!
//! Two contracts, pinned end to end through the umbrella crate:
//!
//! * **Golden bit-identity** — a lattice whose memory and power-cap axes
//!   are degenerate (default memory clock, uncapped) is the plain
//!   frequency sweep wearing a bigger type: every measured number must
//!   match [`energy_model::characterize`] *byte for byte* after JSON
//!   serialization, not merely within a tolerance. This is what makes the
//!   lattice a safe drop-in: enabling the new axes cannot move any
//!   number that existed before them.
//! * **Chaos** — a device that rejects memory-clock requests degrades
//!   gracefully: the sweep completes, every point is measured, the
//!   fallback to the default memory clock is audited in
//!   [`DegradationMetrics::mem_clock_fallbacks`], and the affected points
//!   are flagged rather than silently kept.

use energy_model::{characterize, characterize_lattice, LatticeAxes, SweepOptions};
use gpu_sim::{DeviceSpec, FaultPlan, Schedule};
use serde::Serialize;

const SEED: u64 = 20231112;

fn small_cronos() -> cronos::GpuCronos {
    cronos::GpuCronos::new(cronos::Grid::cubic(16, 8, 8), 3)
}

fn small_ligen() -> ligen::GpuLigen {
    ligen::GpuLigen::new(256, 63, 8)
}

/// The measured numbers of one operating point, in a shape both the
/// frequency sweep and the lattice can be projected onto. Serialized to
/// JSON for the byte-level comparison: two f64 values serialize to the
/// same bytes iff they are bit-identical (modulo -0.0, which never
/// occurs in a measurement).
#[derive(Serialize)]
struct GoldenPoint {
    freq_mhz: f64,
    time_s: f64,
    energy_j: f64,
    speedup: f64,
    norm_energy: f64,
}

#[derive(Serialize)]
struct Golden {
    baseline_time_s: f64,
    baseline_energy_j: f64,
    points: Vec<GoldenPoint>,
}

fn golden_json(g: &Golden) -> String {
    serde_json::to_string(g).expect("golden serialization")
}

fn assert_degenerate_lattice_matches_sweep(axes: &LatticeAxes, label: &str) {
    let spec = DeviceSpec::v100();
    let freqs = axes.core_mhz.clone();
    let opts = SweepOptions {
        reps: 3,
        noise_seed: Some(SEED),
        ..SweepOptions::default()
    };
    for (name, w) in [
        ("cronos", &small_cronos() as &dyn energy_model::Workload),
        ("ligen", &small_ligen() as &dyn energy_model::Workload),
    ] {
        let sweep = characterize(&spec, w, &freqs, opts.reps, opts.noise_seed);
        let (lat, diag) = characterize_lattice(&spec, w, axes, &opts);

        let from_sweep = Golden {
            baseline_time_s: sweep.baseline_time_s,
            baseline_energy_j: sweep.baseline_energy_j,
            points: sweep
                .points
                .iter()
                .map(|p| GoldenPoint {
                    freq_mhz: p.freq_mhz,
                    time_s: p.time_s,
                    energy_j: p.energy_j,
                    speedup: p.speedup,
                    norm_energy: p.norm_energy,
                })
                .collect(),
        };
        let from_lattice = Golden {
            baseline_time_s: lat.baseline_time_s,
            baseline_energy_j: lat.baseline_energy_j,
            points: lat
                .points
                .iter()
                .map(|p| {
                    assert_eq!(p.mem_mhz, spec.mem_freqs.max());
                    assert_eq!(p.cap_w, None);
                    GoldenPoint {
                        freq_mhz: p.core_mhz,
                        time_s: p.time_s,
                        energy_j: p.energy_j,
                        speedup: p.speedup,
                        norm_energy: p.norm_energy,
                    }
                })
                .collect(),
        };
        assert_eq!(
            golden_json(&from_sweep),
            golden_json(&from_lattice),
            "degenerate lattice ({label}) diverged from the frequency sweep on {name}"
        );
        assert!(diag.is_clean(), "fault-free lattice must be clean ({name})");
    }
}

#[test]
fn degenerate_lattice_json_is_byte_identical_to_the_frequency_sweep() {
    // Empty memory/cap axes: the sweep never issues a memory-clock or
    // power-cap management call at all.
    let freqs = vec![405.0, 810.0, 1140.0, 1312.1, 1597.0];
    assert_degenerate_lattice_matches_sweep(&LatticeAxes::core_only(freqs), "implicit axes");
}

#[test]
fn explicit_default_configuration_axes_are_still_bit_identical() {
    // The *explicit* spelling of the default configuration — one memory
    // point on the device's top clock, one uncapped cap point — must take
    // the same skip paths as the empty axes: requesting the configuration
    // the device is already in is not a new configuration.
    let spec = DeviceSpec::v100();
    let axes = LatticeAxes {
        core_mhz: vec![405.0, 810.0, 1140.0, 1312.1, 1597.0],
        mem_mhz: vec![spec.mem_freqs.max()],
        power_caps_w: vec![None],
    };
    assert_degenerate_lattice_matches_sweep(&axes, "explicit default axes");
}

#[test]
fn lattice_survives_memory_clock_rejection_and_audits_the_fallback() {
    // Every memory-clock request is rejected (NVML_ERROR_NO_PERMISSION
    // style). The queue retries, then falls back to the default memory
    // clock; the lattice must complete with every point measured, record
    // the fallback in the degradation counters, and flag the affected
    // points — a measurement taken at the wrong configuration is never
    // silently presented as the requested one.
    let spec = DeviceSpec::v100();
    let axes = LatticeAxes::full(vec![900.0, 1312.1], vec![703.0, 810.0], &[250.0]);
    let opts = SweepOptions {
        reps: 2,
        noise_seed: Some(SEED),
        faults: FaultPlan::seeded(11).reject_set_frequency(Schedule::Prob(1.0)),
        remeasure_limit: 1,
        ..SweepOptions::default()
    };
    let (lat, diag) = characterize_lattice(&spec, &small_cronos(), &axes, &opts);

    // Graceful degradation: the full lattice came back, every point
    // physically measured.
    assert_eq!(lat.points.len(), axes.len());
    for p in &lat.points {
        assert!(p.time_s > 0.0 && p.time_s.is_finite());
        assert!(p.energy_j > 0.0 && p.energy_j.is_finite());
    }

    // The audit trail: requested configurations preserved, fallbacks
    // counted, dirty points flagged, the sweep as a whole not clean.
    assert_eq!(diag.points.len(), axes.len());
    for (p, d) in lat.points.iter().zip(&diag.points) {
        assert_eq!(p.core_mhz, d.core_mhz);
        assert_eq!(
            p.mem_mhz, d.mem_mhz,
            "diagnostics keep the requested config"
        );
        assert_eq!(p.cap_w, d.cap_w);
    }
    let total = diag.total_degradation();
    assert!(
        total.mem_clock_fallbacks > 0,
        "memory-clock fallback must be audited: {total:?}"
    );
    assert!(!diag.is_clean());
    assert!(
        !diag.flagged_points().is_empty(),
        "points measured at the wrong memory clock must be flagged"
    );
}

#[test]
fn healthy_full_lattice_is_clean_and_its_surface_is_coherent() {
    // The closed-loop sanity check the governor relies on: a healthy
    // device sweeping a genuine (core × mem × cap) lattice reports a
    // clean audit, a non-trivial Pareto surface, and a min-energy point
    // that actually minimizes energy.
    let spec = DeviceSpec::v100();
    let axes = LatticeAxes::full(
        vec![810.0, 1140.0, 1312.1],
        vec![810.0, spec.mem_freqs.max()],
        &[250.0],
    );
    let opts = SweepOptions {
        reps: 2,
        noise_seed: Some(SEED),
        ..SweepOptions::default()
    };
    let (lat, diag) = characterize_lattice(&spec, &small_ligen(), &axes, &opts);
    assert!(diag.is_clean(), "healthy lattice must audit clean");
    assert_eq!(lat.points.len(), axes.len());

    let best = lat.min_energy();
    assert!(lat.points.iter().all(|p| p.energy_j >= best.energy_j));
    let surface = lat.pareto_surface();
    assert!(!surface.is_empty() && surface.len() <= lat.points.len());
    // The surface contains the min-energy point by construction.
    assert!(surface
        .iter()
        .any(|p| p.energy_j.to_bits() == best.energy_j.to_bits()));
}
