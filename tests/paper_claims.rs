//! Cross-crate integration tests asserting the paper's qualitative claims
//! end-to-end through the public API (§2–3 of the paper).

use energy_repro::cronos::{GpuCronos, Grid};
use energy_repro::energy_model::characterize::characterize;
use energy_repro::energy_model::pareto::pareto_front_indices;
use energy_repro::energy_model::workflow::experiment_frequencies;
use energy_repro::gpu_sim::DeviceSpec;
use energy_repro::ligen::GpuLigen;
use energy_repro::synergy::{FrequencyPolicy, SynergyQueue};

fn freqs(spec: &DeviceSpec) -> Vec<f64> {
    experiment_frequencies(spec, 8)
}

/// §2.2: "For compute-bound applications, we can have performance
/// improvement at the cost of higher energy consumption by increasing the
/// core frequency."
#[test]
fn ligen_gains_speed_from_overclock_at_energy_cost() {
    let spec = DeviceSpec::v100();
    let ch = characterize(
        &spec,
        &GpuLigen::new(10_000, 89, 20),
        &freqs(&spec),
        1,
        None,
    );
    let top = ch.at_freq(spec.max_core_mhz());
    assert!(top.speedup > 1.10, "speedup {}", top.speedup);
    assert!(top.norm_energy > 1.35, "energy {}", top.norm_energy);
}

/// §2.2: "memory-bound applications may benefit from core down-scaling to
/// reduce energy consumption with small performance degradation."
#[test]
fn cronos_saves_energy_from_downclock_with_tiny_slowdown() {
    let spec = DeviceSpec::v100();
    let ch = characterize(
        &spec,
        &GpuCronos::new(Grid::cubic(160, 64, 64), 5),
        &freqs(&spec),
        1,
        None,
    );
    let low = ch.at_freq(900.0);
    assert!(low.speedup > 0.95, "speedup {}", low.speedup);
    assert!(low.norm_energy < 0.85, "energy {}", low.norm_energy);
}

/// §2.3: the energy-optimal frequency depends on the workload size — the
/// paper's central observation.
#[test]
fn energy_optimal_frequency_moves_with_input_size() {
    let spec = DeviceSpec::v100();
    let fs = freqs(&spec);
    let small = characterize(&spec, &GpuLigen::new(2, 89, 8), &fs, 1, None);
    let large = characterize(&spec, &GpuLigen::new(10_000, 89, 20), &fs, 1, None);
    let opt = |ch: &energy_repro::energy_model::characterize::Characterization| {
        ch.points
            .iter()
            .min_by(|a, b| a.norm_energy.partial_cmp(&b.norm_energy).unwrap())
            .unwrap()
            .freq_mhz
    };
    let f_small = opt(&small);
    let f_large = opt(&large);
    assert!(
        (f_small - f_large).abs() > 50.0,
        "optimal frequencies should differ: small {f_small} vs large {f_large}"
    );
}

/// §3.1: on AMD the auto performance level sits "very close to the higher
/// achievable speedup", and energy can be saved by lowering the frequency.
#[test]
fn mi100_auto_is_near_max_speedup_with_energy_headroom() {
    let spec = DeviceSpec::mi100();
    let ch = characterize(
        &spec,
        &GpuCronos::new(Grid::cubic(160, 64, 64), 5),
        &freqs(&spec),
        1,
        None,
    );
    let max_speedup = ch.points.iter().map(|p| p.speedup).fold(0.0f64, f64::max);
    assert!(max_speedup < 1.05, "auto must be near the best speedup");
    let min_energy = ch
        .points
        .iter()
        .map(|p| p.norm_energy)
        .fold(f64::INFINITY, f64::min);
    assert!(min_energy < 0.85, "down-clocking must save energy on MI100");
}

/// §2.1: the Pareto front is non-trivial — multiple distinct trade-off
/// points, including both a speed-optimal and an energy-optimal one.
#[test]
fn pareto_front_offers_real_tradeoffs() {
    let spec = DeviceSpec::v100();
    let ch = characterize(&spec, &GpuLigen::new(4096, 63, 8), &freqs(&spec), 1, None);
    let pts = ch.objective_points();
    let front = pareto_front_indices(&pts);
    assert!(front.len() >= 3, "front of {} points", front.len());
    let speeds: Vec<f64> = front.iter().map(|&i| pts[i].0).collect();
    let energies: Vec<f64> = front.iter().map(|&i| pts[i].1).collect();
    let s_range = speeds.iter().cloned().fold(0.0f64, f64::max)
        - speeds.iter().cloned().fold(f64::INFINITY, f64::min);
    let e_range = energies.iter().cloned().fold(0.0f64, f64::max)
        - energies.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(s_range > 0.1, "speedup spread {s_range}");
    assert!(e_range > 0.1, "energy spread {e_range}");
}

/// LiGen's workload grows with each Table-2 feature (the complexity
/// analysis of §3.2), measured through the full SYnergy stack.
#[test]
fn ligen_workload_scales_with_each_input_feature() {
    let spec = DeviceSpec::v100();
    let run = |l, a, f| {
        let mut q = SynergyQueue::for_spec(spec.clone());
        GpuLigen::new(l, a, f).run(&mut q).time_s
    };
    let base = run(1024, 31, 4);
    assert!(run(8192, 31, 4) > 2.0 * base, "ligand count");
    assert!(run(1024, 89, 4) > 1.3 * base, "atom count");
    assert!(run(1024, 31, 16) > 2.0 * base, "fragment count");
}

/// Per-kernel frequency policies flow end-to-end: pinning only the stencil
/// kernel low must save energy vs the all-default run.
#[test]
fn per_kernel_policy_saves_energy_on_stencil() {
    let spec = DeviceSpec::v100();
    let workload = GpuCronos::new(Grid::cubic(160, 64, 64), 3);

    let mut q_def = SynergyQueue::for_spec(spec.clone());
    let base = workload.run(&mut q_def);

    let mut q = SynergyQueue::for_spec(spec);
    q.set_policy(FrequencyPolicy::per_kernel(
        [("cronos::compute_changes", 900.0)],
        None,
    ));
    let tuned = workload.run(&mut q);
    assert!(tuned.energy_j < base.energy_j * 0.95);
    assert!(tuned.time_s < base.time_s * 1.05);
}
