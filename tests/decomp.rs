//! Distributed-decomposition chaos suite: the interconnect fault classes
//! end to end.
//!
//! * **link degradation** — lane retrain / width downgrade: transfers
//!   still complete at a fraction of the bandwidth. The run finishes with
//!   the slowdown priced in and the degradation audited; never a panic.
//! * **link loss** — a dead peer-to-peer port: non-transient, so no retry
//!   loop. [`DistributedGpuCronos::run_resilient`] degrades to the
//!   single-device stream, keeps the partially-spent distributed work on
//!   the books, and audits the fallback in both the run report and the
//!   absorbing queue's [`DegradationMetrics`].
//! * **inert plans** — a fault-free plan on every gang member changes
//!   nothing: bit-identical reports, clean counters.

use cronos::{DistributedGpuCronos, GpuCronos, Grid};
use gpu_sim::{Device, DeviceSpec, FaultPlan, Schedule};
use synergy::SynergyQueue;

fn gang(n: usize, faulty: Option<(usize, FaultPlan)>) -> Vec<SynergyQueue> {
    (0..n)
        .map(|i| {
            let spec = DeviceSpec::v100();
            let dev = match &faulty {
                Some((idx, plan)) if *idx == i => Device::with_faults(spec, plan.clone()),
                _ => Device::new(spec),
            };
            SynergyQueue::nvidia(dev)
        })
        .collect()
}

fn wl() -> DistributedGpuCronos {
    DistributedGpuCronos::new(Grid::cubic(24, 8, 8), 3)
}

#[test]
fn degraded_link_completes_slower_with_audit() {
    let mut clean = gang(3, None);
    let clean_report = wl().run(&mut clean);

    // Every transfer on device 1 runs at a quarter of the link bandwidth.
    let plan = FaultPlan::seeded(11).degrade_link(Schedule::Prob(1.0), 0.25);
    let mut degraded = gang(3, Some((1, plan)));
    let report = wl()
        .try_run(&mut degraded)
        .expect("a degraded link still completes");

    assert_eq!(report.devices_used, 3);
    assert_eq!(report.link_fallbacks, 0);
    assert!(
        report.total.time_s > clean_report.total.time_s,
        "quarter-bandwidth halos must stretch the makespan: {} !> {}",
        report.total.time_s,
        clean_report.total.time_s
    );
    let audited: u64 = degraded
        .iter()
        .map(|q| q.degradation().link_degradations)
        .sum();
    assert_eq!(
        audited,
        degraded[1].transfer_count(),
        "every transfer on the degraded device must be audited"
    );
    assert!(audited > 0);
}

#[test]
fn lost_link_mid_run_degrades_to_single_device() {
    // The link on device 1 dies on its third transfer — mid-run, after
    // real distributed work was spent.
    let plan = FaultPlan::none().fail_link(Schedule::once(2));
    let mut queues = gang(3, Some((1, plan)));
    let report = wl().run_resilient(&mut queues); // must not panic

    assert_eq!(report.devices_used, 1, "the gang must shrink to one device");
    assert_eq!(report.link_fallbacks, 1);
    assert_eq!(
        queues[0].degradation().link_fallbacks,
        1,
        "the absorbing queue must audit the fallback"
    );
    assert!(report.total.time_s.is_finite() && report.total.time_s > 0.0);
    assert!(report.total.energy_j.is_finite() && report.total.energy_j > 0.0);

    // The answer is not silently wrong: the monolithic fallback redid the
    // whole job, so the degraded run costs at least a clean single-device
    // run — the partial distributed work stays on the books.
    let mut solo = [SynergyQueue::nvidia(Device::new(DeviceSpec::v100()))];
    let m = GpuCronos::new(Grid::cubic(24, 8, 8), 3).run(&mut solo[0]);
    assert!(report.total.time_s >= m.time_s);
    assert!(report.total.energy_j > m.energy_j);
}

#[test]
fn lost_link_without_resilience_is_a_typed_error_not_a_panic() {
    let plan = FaultPlan::none().fail_link(Schedule::once(0));
    let mut queues = gang(2, Some((0, plan)));
    let err = wl()
        .try_run(&mut queues)
        .expect_err("the first transfer kills the link");
    assert_eq!(err.kernel, "link::transfer");
    assert!(matches!(err.last_error, synergy::BackendError::LinkLost));
}

#[test]
fn fault_free_plans_are_invisible_to_the_distributed_run() {
    let mut plain = gang(4, None);
    let expect = wl().run(&mut plain);

    let mut chaos: Vec<SynergyQueue> = (0..4)
        .map(|_| SynergyQueue::nvidia(Device::with_faults(DeviceSpec::v100(), FaultPlan::none())))
        .collect();
    let got = wl().run(&mut chaos);

    assert_eq!(expect, got, "inert fault plans changed a distributed run");
    for q in &chaos {
        assert!(q.degradation().is_clean());
    }
}

#[test]
fn run_resilient_on_a_healthy_gang_matches_try_run_bitwise() {
    let mut a = gang(3, None);
    let ra = wl().run_resilient(&mut a);
    let mut b = gang(3, None);
    let rb = wl().try_run(&mut b).expect("healthy gang");
    assert_eq!(ra, rb);
    assert_eq!(ra.link_fallbacks, 0);
    assert_eq!(ra.devices_used, 3);
}
