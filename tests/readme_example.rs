//! Keeps the README's "Minimal API example" honest: this is the same code,
//! at test-friendly sweep resolution.

use energy_repro::energy_model::characterize::characterize;
use energy_repro::energy_model::ds_model::DomainSpecificModel;
use energy_repro::energy_model::features::CronosInput;
use energy_repro::energy_model::pareto::pareto_front_indices;
use energy_repro::energy_model::workflow::{characterize_cronos, training_set};
use energy_repro::gpu_sim::DeviceSpec;
use energy_repro::ligen::GpuLigen;

#[test]
fn readme_minimal_api_example() {
    let spec = DeviceSpec::v100();
    let freqs = energy_repro::energy_model::workflow::experiment_frequencies(&spec, 12);

    // Training phase (paper Fig. 11): run the app per (input, frequency).
    let inputs = characterize_cronos(&spec, &CronosInput::paper_configs(), &freqs, 5, Some(7));
    let model = DomainSpecificModel::train(&training_set(&inputs), spec.default_core_mhz, 7);

    // Prediction phase (Fig. 12): speedup & normalized energy for a new input.
    let curve = model.predict_curve(&CronosInput::new(60, 24, 24).features(), &freqs);
    assert_eq!(curve.len(), freqs.len());
    for p in &curve {
        assert!(p.speedup > 0.3 && p.speedup < 1.2);
        assert!(p.norm_energy > 0.5 && p.norm_energy < 2.0);
    }
}

#[test]
fn readme_quickstart_flow() {
    let spec = DeviceSpec::v100();
    let workload = GpuLigen::new(4096, 63, 8);
    let freqs = spec.core_freqs.strided(24);
    let ch = characterize(&spec, &workload, &freqs, 5, Some(42));
    assert!(ch.baseline_time_s > 0.0 && ch.baseline_energy_j > 0.0);
    let front = pareto_front_indices(&ch.objective_points());
    assert!(!front.is_empty());
}

#[test]
fn readme_lattice_quickstart() {
    // The "Configuration lattice" quickstart, at test-friendly resolution
    // (coarser core axis, fewer reps — same code shape).
    use energy_repro::energy_model::{characterize_lattice, LatticeAxes, SweepOptions};

    let spec = DeviceSpec::v100();
    let axes = LatticeAxes::full(
        spec.core_freqs.strided(48),
        spec.mem_freqs.as_slice().to_vec(),
        &[250.0, 200.0],
    );
    let workload =
        energy_repro::cronos::GpuCronos::new(energy_repro::cronos::Grid::cubic(16, 8, 8), 3);
    let opts = SweepOptions {
        reps: 2,
        noise_seed: Some(20231112),
        ..Default::default()
    };
    let (lattice, audit) = characterize_lattice(&spec, &workload, &axes, &opts);
    assert_eq!(lattice.points.len(), axes.len());
    let surface = lattice.pareto_surface();
    assert!(!surface.is_empty() && surface.len() <= lattice.points.len());
    assert!(audit.is_clean());
}
